"""Unit tests for the simulated clock and the disk model."""

import pytest

from repro.params import PAPER_PARAMS
from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel


class TestClock:
    def test_categories_sum_to_now(self):
        c = SimClock()
        c.charge_compute(50.0)
        c.charge_hit(0.243)
        c.charge_driver(0.58)
        c.charge_demand_fetch(15.0)
        c.charge_stall(3.0)
        total = (
            c.compute_time + c.hit_time + c.driver_time
            + c.demand_fetch_time + c.stall_time
        )
        assert c.now == pytest.approx(total)
        assert c.now == pytest.approx(68.823)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge_compute(-1.0)

    def test_starts_at_zero(self):
        c = SimClock()
        assert c.now == 0.0
        assert c.stall_time == 0.0


class TestDisk:
    def test_demand_read_completion(self):
        d = DiskModel(PAPER_PARAMS)
        assert d.demand_read(100.0) == pytest.approx(115.0)
        assert d.demand_reads == 1

    def test_prefetch_read_arrival(self):
        d = DiskModel(PAPER_PARAMS)
        assert d.prefetch_read(10.0) == pytest.approx(25.0)
        assert d.prefetch_reads == 1

    def test_traffic_totals(self):
        d = DiskModel(PAPER_PARAMS)
        d.demand_read(0.0)
        d.prefetch_read(0.0)
        d.prefetch_read(0.0)
        assert d.total_reads == 3

    def test_unlimited_parallelism(self):
        """Many in-flight reads never queue: each takes exactly T_disk."""
        d = DiskModel(PAPER_PARAMS)
        arrivals = [d.prefetch_read(5.0) for _ in range(100)]
        assert all(a == pytest.approx(20.0) for a in arrivals)
