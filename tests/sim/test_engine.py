"""Integration tests for the simulation engine with hand-computed scenarios."""

import pytest

from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator, simulate

P = PAPER_PARAMS


def run(policy_name, trace, cache_size, params=P, **kwargs):
    return simulate(params, make_policy(policy_name), trace, cache_size, **kwargs)


class TestNoPrefetchBaseline:
    def test_textbook_lru_miss_count(self):
        """no-prefetch must equal a plain LRU simulation."""
        trace = [1, 2, 3, 1, 2, 3, 4, 1]
        # LRU capacity 3: misses 1,2,3 cold; 1,2,3 hit; 4 miss evicts 1; 1 miss.
        stats = run("no-prefetch", trace, 3)
        assert stats.misses == 5
        assert stats.demand_hits == 3
        assert stats.prefetch_hits == 0
        assert stats.prefetches_issued == 0

    def test_all_cold_misses(self):
        stats = run("no-prefetch", list(range(10)), 4)
        assert stats.misses == 10
        assert stats.miss_rate == 100.0

    def test_all_hits_after_first(self):
        stats = run("no-prefetch", [7] * 10, 4)
        assert stats.misses == 1
        assert stats.demand_hits == 9

    def test_exact_timing(self):
        """Figure 3(a): each period is T_cpu + T_hit (+ T_driver + T_disk on miss)."""
        trace = [1, 1, 1]
        stats = run("no-prefetch", trace, 2)
        expected = (
            1 * (P.t_driver + P.t_disk)  # one demand fetch
            + 3 * (P.t_hit + P.t_cpu)
        )
        assert stats.elapsed_time == pytest.approx(expected)
        assert stats.stall_time == 0.0

    def test_conservation_checked(self):
        stats = run("no-prefetch", [1, 2, 1, 3, 1], 2)
        stats.check_conservation()
        assert stats.accesses == 5


class TestTreePolicyEndToEnd:
    def test_learns_repeating_pattern(self):
        """A cyclic working set larger than the cache defeats LRU entirely
        (sequential flooding) but is fully predictable by the tree."""
        pattern = list(range(10, 310, 10))  # 30 blocks > 16 buffers
        trace = pattern * 40
        base = run("no-prefetch", trace, 16)
        assert base.miss_rate == pytest.approx(100.0)  # classic LRU thrash
        stats = run("tree", trace, 16)
        assert stats.prefetch_hits > 500
        assert stats.miss_rate < 50.0

    def test_working_set_within_cache_needs_no_prefetch(self):
        """Everything resident: the cost-benefit loop should go idle
        (all candidates already cached) rather than waste fetches."""
        pattern = [10, 20, 30, 40, 50]
        trace = pattern * 40
        stats = run("tree", trace, 16)
        assert stats.misses == 5  # cold misses only
        assert stats.prefetches_issued == 0
        assert stats.candidates_already_cached_rate == pytest.approx(100.0)

    def test_prefetch_hit_timing_no_stall_at_paper_constants(self):
        """T_disk (15ms) < per-period compute (~50.8ms): prefetches arrive
        before the next access, so prefetch hits never stall."""
        pattern = list(range(10, 310, 10))
        stats = run("tree", pattern * 40, 16)
        assert stats.prefetch_hits > 0
        assert stats.stall_time == 0.0

    def test_prefetch_stall_with_tiny_tcpu(self):
        """With T_cpu ~ 0 the disk cannot be hidden; stalls must appear."""
        params = SystemParams(t_cpu=0.1)
        pattern = list(range(10, 310, 10))
        stats = simulate(params, make_policy("tree"), pattern * 40, 16)
        if stats.prefetch_hits > 0:
            assert stats.stall_time > 0.0

    def test_driver_time_charged_per_prefetch(self):
        pattern = [1, 2, 3]
        stats = run("tree", pattern * 30, 8)
        total_fetches = stats.misses + stats.prefetches_issued
        assert stats.driver_time == pytest.approx(total_fetches * P.t_driver)

    def test_random_trace_mostly_unpredictable(self):
        import random

        rng = random.Random(3)
        trace = [rng.randrange(50_000) for _ in range(2000)]
        stats = run("tree", trace, 64)
        assert stats.prediction_accuracy < 10.0

    def test_max_prefetches_per_period(self):
        pattern = list(range(50))
        stats = run("tree", pattern * 20, 128, max_prefetches_per_period=1)
        # Engine-level cap: never more than one prefetch per access.
        assert stats.prefetches_issued <= stats.accesses


class TestNextLimit:
    def test_sequential_run_interior_rescued(self):
        """One long sequential scan: all but a few accesses become hits."""
        trace = list(range(100, 200))
        stats = run("next-limit", trace, 32)
        assert stats.misses < 15  # head + occasional re-arm, not 100
        assert stats.prefetch_hits > 80

    def test_partition_cap_respected(self):
        sim = Simulator(P, make_policy("next-limit"), 100)
        sim.run(list(range(500)))
        assert sim.cache.prefetch.capacity == 10  # 10% of 100

    def test_no_benefit_on_random(self):
        import random

        rng = random.Random(5)
        trace = [rng.randrange(10_000) * 7 for _ in range(1500)]
        nl = run("next-limit", trace, 64)
        base = run("no-prefetch", trace, 64)
        assert nl.misses >= base.misses * 0.95

    def test_rearm_on_prefetch_hit(self):
        """The whole run must be covered, not every other block."""
        trace = list(range(50))
        stats = run("next-limit", trace, 16)
        assert stats.prefetch_hits >= 45


class TestPerfectSelector:
    def test_only_prefetches_predictable(self):
        pattern = [1, 2, 3, 4]
        stats = run("perfect-selector", pattern * 50, 16)
        # The oracle prefetches the next access; every prefetch must be used
        # unless it was evicted (cache 16 never forces that here).
        assert stats.prefetch_hits == stats.prefetches_issued

    def test_beats_tree(self):
        pattern = [1, 2, 3, 4, 5, 6, 7, 8]
        trace = pattern * 30
        perfect = run("perfect-selector", trace, 8)
        tree = run("tree", trace, 8)
        assert perfect.miss_rate <= tree.miss_rate + 1e-9

    def test_skips_unpredictable(self):
        import random

        rng = random.Random(11)
        trace = [rng.randrange(5000) for _ in range(800)]
        stats = run("perfect-selector", trace, 64)
        assert stats.extra["oracle_skipped_unpredictable"] > 0


class TestEngineGuards:
    def test_policy_single_use(self):
        policy = make_policy("tree")
        Simulator(P, policy, 8)
        with pytest.raises(RuntimeError):
            Simulator(P, policy, 8)

    def test_cache_size_validation(self):
        with pytest.raises(ValueError):
            Simulator(P, make_policy("tree"), 0)
        with pytest.raises(ValueError):
            Simulator(P, make_policy("tree"), 8, max_prefetches_per_period=0)

    def test_extra_metadata(self):
        stats = run("tree", [1, 2, 3] * 10, 8)
        assert stats.extra["policy"] == "tree"
        assert stats.extra["cache_size"] == 8
        assert "tree_nodes" in stats.extra

    def test_stats_conservation_full_matrix(self):
        import random

        rng = random.Random(17)
        trace = [rng.randrange(60) for _ in range(600)]
        for name in ("no-prefetch", "next-limit", "tree", "tree-next-limit",
                     "tree-lvc", "perfect-selector"):
            stats = run(name, trace, 16)
            stats.check_conservation()
            assert (
                stats.prefetch_hits + stats.prefetched_evicted_unreferenced
                <= stats.prefetches_issued
            )
