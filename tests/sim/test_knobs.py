"""Tests for the engine's ablation knobs (refetch distance, marginal band)."""

import pytest

from repro.cache.prefetch_cache import PrefetchCache, PrefetchEntry
from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator


def entry(block, p=0.5, depth=3, period=0):
    return PrefetchEntry(block=block, probability=p, depth=depth,
                         issue_period=period, arrival_time=0.0)


class TestRefetchDistanceKnob:
    def test_fixed_distance_changes_cost(self):
        default = PrefetchCache(PAPER_PARAMS, 8)
        pinned = PrefetchCache(PAPER_PARAMS, 8, refetch_distance=0)
        e = entry(1, p=0.5, depth=3)
        # Default x = min(2, horizon=1) = 1 -> stall 0, bufferage 2.
        # Pinned x = 0 -> full demand stall, bufferage 3.
        c_default = default.eviction_cost(e, 0, 1.0)
        c_pinned = pinned.eviction_cost(e, 0, 1.0)
        assert c_default == pytest.approx(0.5 * 0.58 / 2)
        assert c_pinned == pytest.approx(0.5 * (0.58 + 15.0) / 3)

    def test_min_cost_scan_respects_knob(self):
        pc = PrefetchCache(PAPER_PARAMS, 8, refetch_distance=0)
        pc.insert(entry(1, p=0.5, depth=3))
        pc.insert(entry(2, p=0.1, depth=1))
        best, cost = pc.min_cost_entry(0, 1.0)
        brute = min((pc.eviction_cost(e, 0, 1.0), e.block) for e in pc)
        assert cost == pytest.approx(brute[0])
        assert best.block == brute[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchCache(PAPER_PARAMS, 8, refetch_distance=-1)

    def test_simulator_pass_through(self):
        sim = Simulator(PAPER_PARAMS, make_policy("tree"), 32,
                        refetch_distance=2)
        assert sim.cache.prefetch.refetch_distance == 2
        sim.run([1, 2, 3] * 50)  # smoke: knob does not break the run


class TestMarginalBandKnob:
    def test_simulator_pass_through(self):
        sim = Simulator(PAPER_PARAMS, make_policy("tree"), 32,
                        marginal_band=1)
        assert sim.cache._marginal_band == 1
        stats = sim.run(list(range(40)) * 5)
        stats.check_conservation()

    def test_band_changes_demand_cost(self):
        from repro.cache.buffer_cache import BufferCache

        narrow = BufferCache(PAPER_PARAMS, 4, marginal_band=1)
        wide = BufferCache(PAPER_PARAMS, 4, marginal_band=8)
        for cache in (narrow, wide):
            for _ in range(30):
                for b in (1, 2, 3):
                    cache.profiler.record(b)
            cache.insert_demand(1)
            cache.insert_demand(2)
            cache.insert_demand(3)
        # With hits concentrated at distance 3, a narrow band at n=3 sees a
        # high marginal rate; averaging over 8 positions dilutes it.
        assert narrow.demand_eviction_cost() > wide.demand_eviction_cost()
