"""Unit tests for the simulation statistics container."""

import pytest

from repro.sim.stats import SimulationStats


class TestRates:
    def test_miss_rate(self):
        s = SimulationStats(accesses=100, misses=25, demand_hits=70,
                            prefetch_hits=5)
        assert s.miss_rate == pytest.approx(25.0)
        assert s.hit_rate == pytest.approx(75.0)
        assert s.hits == 75

    def test_empty_run_all_zero(self):
        s = SimulationStats()
        assert s.miss_rate == 0.0
        assert s.prefetch_cache_hit_rate == 0.0
        assert s.prediction_accuracy == 0.0
        assert s.mean_access_time == 0.0
        assert s.traffic_increase == 0.0

    def test_prefetch_cache_hit_rate_over_resolved(self):
        s = SimulationStats(
            prefetches_issued=10, prefetch_hits=3,
            prefetched_evicted_unreferenced=1,
        )
        # 3 hits / (3 + 1) resolved; 6 still resident are excluded.
        assert s.prefetch_cache_hit_rate == pytest.approx(75.0)

    def test_prefetches_per_period(self):
        s = SimulationStats(accesses=50, prefetches_issued=25)
        assert s.prefetches_per_period == pytest.approx(0.5)

    def test_mean_prefetched_probability(self):
        s = SimulationStats(prefetches_issued=4, prefetch_probability_sum=2.0)
        assert s.mean_prefetched_probability == pytest.approx(0.5)

    def test_candidates_already_cached_rate(self):
        s = SimulationStats(prefetches_issued=3, candidates_already_cached=7)
        assert s.candidates_already_cached_rate == pytest.approx(70.0)

    def test_traffic(self):
        s = SimulationStats(accesses=10, misses=4, prefetches_issued=8)
        assert s.disk_fetches == 12
        assert s.traffic_increase == pytest.approx(200.0)

    def test_lvc_rates(self):
        s = SimulationStats(
            lvc_opportunities=10, lvc_repeats=4,
            lvc_opportunities_nonroot=5, lvc_repeats_nonroot=4,
            lvc_cached=8,
        )
        assert s.lvc_repeat_rate == pytest.approx(40.0)
        assert s.lvc_repeat_rate_nonroot == pytest.approx(80.0)
        assert s.lvc_cached_rate == pytest.approx(80.0)

    def test_predictable_uncached_rate(self):
        s = SimulationStats(predictable_accesses=20, predictable_uncached=3)
        assert s.predictable_uncached_rate == pytest.approx(15.0)


class TestConservation:
    def test_valid_passes(self):
        s = SimulationStats(accesses=10, misses=2, demand_hits=7,
                            prefetch_hits=1, prefetches_issued=3,
                            prefetch_probability_sum=1.0)
        s.check_conservation()

    def test_hit_miss_mismatch_fails(self):
        s = SimulationStats(accesses=10, misses=5, demand_hits=7)
        with pytest.raises(AssertionError):
            s.check_conservation()

    def test_resolved_exceeding_issued_fails(self):
        s = SimulationStats(accesses=1, demand_hits=0, prefetch_hits=1,
                            prefetches_issued=0)
        with pytest.raises(AssertionError):
            s.check_conservation()


class TestExport:
    def test_as_dict_roundtrip_keys(self):
        d = SimulationStats(accesses=5, misses=5).as_dict()
        assert d["accesses"] == 5
        assert d["miss_rate"] == pytest.approx(100.0)
        assert isinstance(d["extra"], dict)

    def test_extra_is_copied(self):
        s = SimulationStats()
        s.extra["k"] = 1
        d = s.as_dict()
        d["extra"]["k"] = 2
        assert s.extra["k"] == 1
