"""Tests for the finite-disk (queued) model and its engine integration."""

import pytest

from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.sim.disk import DiskModel, QueuedDiskModel
from repro.sim.engine import Simulator


class TestQueuedDiskModel:
    def test_no_queue_when_idle(self):
        d = QueuedDiskModel(PAPER_PARAMS, num_disks=2)
        assert d.demand_read(100.0) == pytest.approx(115.0)
        assert d.queued_requests == 0

    def test_single_disk_serialises(self):
        d = QueuedDiskModel(PAPER_PARAMS, num_disks=1)
        first = d.prefetch_read(0.0)
        second = d.prefetch_read(0.0)
        assert first == pytest.approx(15.0)
        assert second == pytest.approx(30.0)
        assert d.queued_requests == 1
        assert d.queue_delay_total == pytest.approx(15.0)

    def test_two_disks_parallel_pair(self):
        d = QueuedDiskModel(PAPER_PARAMS, num_disks=2)
        a = d.prefetch_read(0.0)
        b = d.prefetch_read(0.0)
        c = d.prefetch_read(0.0)
        assert a == pytest.approx(15.0)
        assert b == pytest.approx(15.0)
        assert c == pytest.approx(30.0)

    def test_idle_gap_resets_queue(self):
        d = QueuedDiskModel(PAPER_PARAMS, num_disks=1)
        d.prefetch_read(0.0)
        assert d.prefetch_read(100.0) == pytest.approx(115.0)

    def test_utilisation(self):
        d = QueuedDiskModel(PAPER_PARAMS, num_disks=2)
        d.prefetch_read(0.0)
        d.prefetch_read(0.0)
        assert d.utilisation(15.0) == pytest.approx(1.0)
        assert d.utilisation(60.0) == pytest.approx(0.25)
        assert d.utilisation(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueuedDiskModel(PAPER_PARAMS, num_disks=0)

    def test_busy_time(self):
        d = DiskModel(PAPER_PARAMS)
        d.demand_read(0.0)
        d.prefetch_read(0.0)
        assert d.busy_time == pytest.approx(30.0)


class TestEngineIntegration:
    def test_default_is_infinite(self):
        sim = Simulator(PAPER_PARAMS, make_policy("tree"), 32)
        assert type(sim.disk) is DiskModel

    def test_num_disks_selects_queued_model(self):
        sim = Simulator(PAPER_PARAMS, make_policy("tree"), 32, num_disks=2)
        assert isinstance(sim.disk, QueuedDiskModel)
        stats = sim.run([1, 2, 3] * 50)
        assert stats.extra["num_disks"] == 2
        assert "disk_utilisation" in stats.extra

    def test_congestion_increases_elapsed_time(self):
        """At tiny T_cpu the request rate exceeds one drive's service rate;
        a single disk must be slower end-to-end than the infinite model."""
        params = SystemParams(t_cpu=0.5)
        trace = list(range(400)) * 2
        infinite = Simulator(
            params, make_policy("next-limit"), 64
        ).run(trace)
        congested = Simulator(
            params, make_policy("next-limit"), 64, num_disks=1
        ).run(trace)
        assert congested.elapsed_time > infinite.elapsed_time
        assert congested.extra["disk_queued_requests"] > 0

    def test_many_disks_recover_paper_model(self):
        params = SystemParams(t_cpu=0.5)
        trace = list(range(300))
        infinite = Simulator(params, make_policy("next-limit"), 64).run(trace)
        wide = Simulator(
            params, make_policy("next-limit"), 64, num_disks=64
        ).run(trace)
        assert wide.elapsed_time == pytest.approx(
            infinite.elapsed_time, rel=0.01
        )
        assert wide.misses == infinite.misses
