"""Smoke tests: every example script runs end-to-end.

Examples are part of the public surface; they must keep working.  Each is
run in-process (import-free scripts are executed via ``runpy``) with small
sizes so the whole module stays fast.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script, argv):
    monkeypatch.setattr(sys, "argv", [script] + argv)
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        # quickstart has no CLI; shrink its workload via a patched generator.
        import repro

        original = repro.make_trace
        monkeypatch.setattr(
            "repro.make_trace",
            lambda name, num_references=0, **kw: original(
                name, num_references=4000, **kw
            ),
        )
        out = run_example(monkeypatch, capsys, "quickstart.py", [])
        assert "miss rate" in out
        assert "prefetch" in out.lower()

    def test_compare_policies(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "compare_policies.py",
            ["--refs", "3000", "--sizes", "64", "128"],
        )
        assert "perfect-selector" in out
        assert "tree-next-limit" in out

    def test_file_server_readahead(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "file_server_readahead.py",
            ["--refs", "3000", "--cache", "128"],
        )
        assert "additive" in out

    def test_cad_object_prefetching(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "cad_object_prefetching.py",
            ["--refs", "4000", "--cache", "128"],
        )
        assert "tree budget" in out
        assert "unbounded" in out

    def test_service_readahead(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "service_readahead.py",
            ["--refs", "3000", "--cache", "128"],
        )
        assert "daemon listening" in out
        assert "prefetch" in out
        assert "advice issued" in out

    def test_custom_workload(self, monkeypatch, capsys, tmp_path):
        out = run_example(
            monkeypatch, capsys, "custom_workload.py",
            ["--refs", "3000", "--cache", "128",
             "--out", str(tmp_path / "t.trace")],
        )
        assert "buildserver" in out
        assert (tmp_path / "t.trace").exists()

    def test_predictor_shootout(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "predictor_shootout.py",
            ["--refs", "3000", "--cache", "128"],
        )
        assert "cb-ppm" in out
        assert "informed" in out
