"""Coverage for smaller surfaces: report generation, engine context API,
chart labels, predictor-policy stats."""

from pathlib import Path

import pytest

from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.sim.engine import IssueStatus, PrefetchContext, Simulator


class TestReportGenerate:
    def test_generate_direct(self, tmp_path, monkeypatch, capsys):
        import repro.analysis.experiments as ex
        import repro.analysis.report as report_mod
        from repro.analysis.runner import ExperimentContext

        monkeypatch.setattr(
            report_mod, "ALL_EXPERIMENTS", (ex.run_table1,)
        )
        ctx = ExperimentContext(num_references=800, cache_sizes=(32,))
        out = tmp_path / "EXP.md"
        body = report_mod.generate(ctx, out, echo=False)
        assert out.read_text() == body
        assert "table1" in body
        assert "Known deviations" in body

    def test_assemble_orders_known_ids_first(self, tmp_path):
        from repro.analysis.report import assemble_from_results

        results = tmp_path / "results"
        results.mkdir()
        (results / "zzz_custom.txt").write_text(
            "== zzz_custom: Custom ==\npaper: none\n\nbody\n"
        )
        (results / "fig6.txt").write_text(
            "== fig6: Main ==\npaper: claims\n\nseries\n"
        )
        body = assemble_from_results(results, tmp_path / "out.md")
        assert body.index("## fig6") < body.index("## zzz_custom")

    def test_assemble_skips_missing(self, tmp_path):
        from repro.analysis.report import assemble_from_results

        results = tmp_path / "results"
        results.mkdir()
        body = assemble_from_results(results, tmp_path / "out.md")
        assert "EXPERIMENTS" in body  # header only, no sections


class TestPrefetchContextApi:
    def test_properties_and_is_cached(self):
        sim = Simulator(PAPER_PARAMS, make_policy("no-prefetch"), 16)
        ctx = PrefetchContext(sim)
        assert ctx.params is PAPER_PARAMS
        assert ctx.s == sim.s
        assert ctx.prefetch_horizon >= 1
        assert not ctx.is_cached(5)
        sim.cache.insert_demand(5)
        assert ctx.is_cached(5)

    def test_engine_period_cap_status(self):
        sim = Simulator(PAPER_PARAMS, make_policy("tree"), 16,
                        max_prefetches_per_period=1)
        ctx = PrefetchContext(sim)
        assert ctx.try_issue(1, 0.9, 1.0, 1) is IssueStatus.ISSUED
        assert ctx.try_issue(2, 0.9, 1.0, 1) is IssueStatus.NO_CAPACITY

    def test_already_cached_status(self):
        sim = Simulator(PAPER_PARAMS, make_policy("tree"), 16)
        sim.cache.insert_demand(3)
        ctx = PrefetchContext(sim)
        assert ctx.try_issue(3, 0.9, 1.0, 1) is IssueStatus.ALREADY_CACHED

    def test_rejected_cost_status(self):
        sim = Simulator(PAPER_PARAMS, make_policy("tree"), 16)
        ctx = PrefetchContext(sim)
        # Probability below the profitability floor: net benefit <= 0.
        assert ctx.try_issue(9, 0.001, 1.0, 1) is IssueStatus.REJECTED_COST


class TestChartLabels:
    def test_y_label_rendered(self):
        from repro.analysis.ascii_chart import render_chart

        chart = render_chart(
            [1, 2, 3], {"s": [1.0, 2.0, 3.0]}, y_label="miss", height=8
        )
        assert "miss" in chart


class TestPredictorPolicyStats:
    def test_predictable_uncached_tracked(self):
        from repro.sim.engine import simulate

        trace = [1, 2, 3] * 100
        stats = simulate(PAPER_PARAMS, make_policy("cb-markov"), trace, 2)
        # Cache of 2 can't hold the 3-cycle: predictable blocks often missing.
        assert stats.predictable_accesses > 0
        assert 0.0 <= stats.predictable_uncached_rate <= 100.0


class TestTraceHeadMetadata:
    def test_head_keeps_extents(self):
        from repro.traces.synthetic import make_trace

        t = make_trace("sitar", num_references=1000)
        assert "extents" in t.params
        assert "extents" in t.head(100).params
