"""Import hypothesis while the stack is shallow.

The hypothesis pytest plugin defers ``import hypothesis`` until its
``pytest_terminal_summary`` hook.  When bytecode caching is off
(``PYTHONDONTWRITEBYTECODE=1``) pytest assertion-rewrites the whole
hypothesis package at that point — dozens of ``ast.parse`` calls at the
bottom of a deep hook stack, where CPython 3.11's parser can fail with
``SystemError: AST constructor recursion depth mismatch``.  Test runs
that happen to collect a hypothesis-using module never see it (the
import lands early, at shallow depth); subset runs do.  Importing here
makes every run look like the former.
"""

import hypothesis  # noqa: F401
