"""Tests for the pluggable predictors and the generic cost-benefit policy."""

import random

import pytest

from repro.params import PAPER_PARAMS
from repro.policies.predictor import PredictorPolicy
from repro.policies.registry import make_policy
from repro.predictors import PREDICTORS, make_predictor
from repro.predictors.graph import ProbabilityGraphPredictor
from repro.predictors.lz import LZPredictor
from repro.predictors.markov import LastSuccessorPredictor, MarkovPredictor
from repro.predictors.ppm import PPMPredictor
from repro.sim.engine import simulate

CYCLE = [1, 7, 3, 9, 5]


def feed(predictor, blocks):
    return [predictor.update(b) for b in blocks]


class TestFactory:
    def test_all_names(self):
        assert set(PREDICTORS) == {
            "lz", "ppm", "prob-graph", "markov", "last-successor",
        }

    def test_make_predictor(self):
        assert isinstance(make_predictor("ppm"), PPMPredictor)
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("crystal-ball")

    def test_kwargs(self):
        p = make_predictor("ppm", max_order=2)
        assert p.max_order == 2


@pytest.mark.parametrize("name", sorted(PREDICTORS))
class TestPredictorContract:
    def test_learns_a_cycle(self, name):
        p = make_predictor(name)
        feed(p, CYCLE * 30)
        outcomes = feed(p, CYCLE * 5)
        assert sum(outcomes) / len(outcomes) > 0.8

    def test_predictions_valid(self, name):
        p = make_predictor(name)
        feed(p, CYCLE * 20)
        preds = p.predictions()
        assert preds, name
        probs = [prob for _, prob in preds]
        assert all(0.0 < prob <= 1.0 + 1e-9 for prob in probs)
        assert probs == sorted(probs, reverse=True)

    def test_cycle_successor_is_top_prediction(self, name):
        p = make_predictor(name)
        feed(p, CYCLE * 30)
        # Last update was CYCLE[-1]; the cycle successor is CYCLE[0].
        top_block, _ = p.predictions()[0]
        assert top_block == CYCLE[0]

    def test_empty_model_predicts_nothing(self, name):
        assert make_predictor(name).predictions() == []

    def test_memory_items_grows(self, name):
        p = make_predictor(name)
        feed(p, list(range(200)))
        assert p.memory_items() > 0


class TestPPM:
    def test_higher_order_disambiguates(self):
        """Order >= 2 separates 'A after X' from 'A after Y'."""
        p = PPMPredictor(max_order=2, min_probability=1e-4)
        # X A P ... Y A Q: after (X, A) expect P; after (Y, A) expect Q.
        feed(p, ["x", "a", "p", "y", "a", "q"] * 40)
        feed(p, ["x", "a"])
        top, _ = p.predictions()[0]
        assert top == "p"
        feed(p, ["p", "y", "a"])
        top, _ = p.predictions()[0]
        assert top == "q"

    def test_context_cap(self):
        p = PPMPredictor(max_order=2, max_contexts_per_order=16)
        feed(p, [random.Random(0).randrange(1000) for _ in range(2000)])
        assert all(len(t) <= 16 for t in p._tables)

    def test_validation(self):
        with pytest.raises(ValueError):
            PPMPredictor(max_order=0)
        with pytest.raises(ValueError):
            PPMPredictor(min_probability=0.0)


class TestProbabilityGraph:
    def test_window_catches_interleaved_pairs(self):
        """a->b holds even when one junk access sits in between."""
        p = ProbabilityGraphPredictor(lookahead=2, min_probability=1e-4)
        stream = []
        for i in range(100):
            stream.extend(["a", 1000 + i, "b", 2000 + i])
        feed(p, stream)
        feed(p, ["a"])
        assert "b" in dict(p.predictions())

    def test_markov_equivalence_at_window_one(self):
        rng = random.Random(4)
        stream = [rng.randrange(8) for _ in range(800)]
        g = ProbabilityGraphPredictor(lookahead=1, min_probability=1e-6,
                                      max_successors=64)
        m = MarkovPredictor(min_probability=1e-6, max_successors=64)
        feed(g, stream)
        feed(m, stream)
        assert dict(g.predictions()) == pytest.approx(dict(m.predictions()))

    def test_node_cap(self):
        p = ProbabilityGraphPredictor(max_nodes=32)
        feed(p, list(range(500)))
        assert len(p._nodes) <= 32

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilityGraphPredictor(lookahead=0)
        with pytest.raises(ValueError):
            ProbabilityGraphPredictor(max_successors=0)


class TestLastSuccessor:
    def test_tracks_repeat_rate(self):
        p = LastSuccessorPredictor()
        feed(p, [1, 2] * 10)
        block, prob = p.predictions()[0]
        # After ...2, current=2; last successor of 2 is 1.
        assert prob > 0.8

    def test_switches_successor(self):
        p = LastSuccessorPredictor()
        feed(p, [1, 2, 1, 3])
        feed(p, [1])
        block, _ = p.predictions()[0]
        assert block == 3  # most recent successor wins


class TestLZAdapter:
    def test_matches_tree_predictability(self):
        from repro.core.tree import PrefetchTree

        stream = CYCLE * 40
        adapter = LZPredictor()
        outcomes = feed(adapter, stream)
        tree = PrefetchTree()
        tree.record_all(stream)
        assert sum(outcomes) == tree.stats.predictable


class TestPredictorPolicy:
    def test_name_derived(self):
        policy = PredictorPolicy(PPMPredictor())
        assert policy.name == "cb-ppm"

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictorPolicy(PPMPredictor(), max_candidates=0)

    def test_registry_names(self):
        for name in ("cb-lz", "cb-ppm", "cb-prob-graph", "cb-markov",
                     "cb-last-successor"):
            assert make_policy(name).name == name

    def test_registry_kwargs_forwarded(self):
        policy = make_policy("cb-ppm", max_order=2, max_candidates=4)
        assert policy.predictor.max_order == 2
        assert policy.max_candidates == 4

    def test_end_to_end_conservation(self):
        trace = CYCLE * 60
        for name in ("cb-ppm", "cb-prob-graph", "cb-markov"):
            stats = simulate(PAPER_PARAMS, make_policy(name), trace, 3)
            stats.check_conservation()
            assert stats.prefetch_hits > 0  # cycle of 5 > cache of 3

    def test_markov_beats_lz_on_sticky_walks(self):
        """The known LZ78 weakness: context fragmentation on Markovian
        streams; conditioning on the current block predicts better."""
        from repro.traces.synthetic import make_trace

        trace = make_trace("cad", num_references=10_000).as_list()
        lz = simulate(PAPER_PARAMS, make_policy("cb-lz"), trace, 256)
        markov = simulate(PAPER_PARAMS, make_policy("cb-markov"), trace, 256)
        assert markov.miss_rate < lz.miss_rate
