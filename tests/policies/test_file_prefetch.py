"""Tests for the whole-file prefetching policy and the extent map."""

import pytest

from repro.params import PAPER_PARAMS
from repro.policies.file_prefetch import ExtentMap, FilePrefetchPolicy
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator, simulate


class TestExtentMap:
    def test_find(self):
        m = ExtentMap([[0, 4], [10, 2], [100, 5]])
        assert m.find(0) == (0, 4)
        assert m.find(3) == (0, 4)
        assert m.find(4) is None
        assert m.find(11) == (10, 2)
        assert m.find(104) == (100, 5)
        assert m.find(105) is None
        assert m.find(-1) is None

    def test_unsorted_input_accepted(self):
        m = ExtentMap([[100, 5], [0, 4]])
        assert m.find(2) == (0, 4)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            ExtentMap([[0, 10], [5, 3]])

    def test_empty_and_bad_length(self):
        assert ExtentMap([]).find(3) is None
        with pytest.raises(ValueError):
            ExtentMap([[0, 0]])

    def test_len(self):
        assert len(ExtentMap([[0, 1], [5, 2]])) == 2


class TestFilePrefetchPolicy:
    def test_registered(self):
        assert isinstance(make_policy("file-prefetch"), FilePrefetchPolicy)

    def test_validation(self):
        with pytest.raises(ValueError):
            FilePrefetchPolicy(max_file_blocks=0)

    def test_no_extents_degenerates_to_no_prefetch(self):
        trace = list(range(100))
        stats = simulate(PAPER_PARAMS, make_policy("file-prefetch"), trace, 32)
        assert stats.prefetches_issued == 0
        assert stats.extra["extent_count"] == 0

    def test_whole_file_fetched_after_head_miss(self):
        """One 20-block file read twice: the second read's head miss pulls
        the whole body; a first read is all compulsory + prefetch hits."""
        policy = FilePrefetchPolicy(extents=[[100, 20]])
        trace = list(range(100, 120))
        # Cache 128 -> prefetch partition 32 >= the 19-block file body.
        stats = simulate(PAPER_PARAMS, policy, trace, 128)
        # Head miss triggers the rest of the file.
        assert stats.misses == 1
        assert stats.prefetch_hits == 19
        assert stats.extra["files_triggered"] == 1

    def test_partition_cap_limits_burst(self):
        """A 25%-of-cache partition truncates a large file body; the tail
        misses re-trigger (next-limit-style degradation, not a crash)."""
        policy = FilePrefetchPolicy(extents=[[100, 20]])
        trace = list(range(100, 120))
        stats = simulate(PAPER_PARAMS, policy, trace, 64)  # partition 16
        assert stats.misses > 1
        assert stats.extra["files_triggered"] == stats.misses

    def test_non_file_blocks_ignored(self):
        policy = FilePrefetchPolicy(extents=[[1000, 8]])
        trace = [1, 2, 3, 4]  # outside any extent
        stats = simulate(PAPER_PARAMS, policy, trace, 32)
        assert stats.prefetches_issued == 0

    def test_max_file_blocks_cap(self):
        policy = FilePrefetchPolicy(extents=[[0, 200]], max_file_blocks=8)
        trace = list(range(0, 50))
        stats = simulate(PAPER_PARAMS, policy, trace, 64)
        # Each trigger fetches at most 8 blocks ahead.
        assert stats.prefetches_issued <= stats.extra["files_triggered"] * 8

    def test_partition_cap(self):
        sim = Simulator(PAPER_PARAMS, make_policy("file-prefetch"), 100)
        assert sim.cache.prefetch.capacity == 25

    def test_beats_next_limit_on_refetch_latency(self):
        """Re-reading whole files after eviction: file-prefetch converts a
        head miss into the whole body at once; next-limit needs a miss or
        hit per block.  Both end with low miss rates; file-prefetch must
        match next-limit within a few points on this ideal workload."""
        extents = [[i * 40, 32] for i in range(30)]
        trace = []
        for rep in range(3):
            for start, length in extents:
                trace.extend(range(start, start + length))
        fp = FilePrefetchPolicy(extents=extents)
        fp_stats = simulate(PAPER_PARAMS, fp, trace, 128)
        nl_stats = simulate(PAPER_PARAMS, make_policy("next-limit"), trace, 128)
        assert fp_stats.miss_rate <= nl_stats.miss_rate + 3.0

    def test_runner_auto_attaches_extents(self):
        from repro.analysis.runner import ExperimentContext

        ctx = ExperimentContext(num_references=2000)
        stats = ctx.run("sitar", "file-prefetch", 128)
        assert stats.extra["extent_count"] > 0
        assert stats.prefetches_issued > 0
