"""Tests for the tree-filtered extension policy (Section 9.2.2 direction)."""

import random

import pytest

from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.policies.tree_filtered import TreeFilteredPolicy
from repro.sim.engine import simulate


def run(trace, cache, **kwargs):
    return simulate(
        PAPER_PARAMS, make_policy("tree-filtered", **kwargs), trace, cache
    )


class TestConstruction:
    def test_registered(self):
        assert isinstance(make_policy("tree-filtered"), TreeFilteredPolicy)

    def test_validation(self):
        with pytest.raises(ValueError):
            TreeFilteredPolicy(grace_periods=0)
        with pytest.raises(ValueError):
            TreeFilteredPolicy(score_alpha=0.0)
        with pytest.raises(ValueError):
            TreeFilteredPolicy(suppress_below=1.5)
        with pytest.raises(ValueError):
            TreeFilteredPolicy(min_outcomes=0)

    def test_tree_kwargs_forwarded(self):
        p = TreeFilteredPolicy(max_tree_nodes=64)
        assert p.tree.max_nodes == 64


class TestFeedback:
    def test_success_raises_score(self):
        p = TreeFilteredPolicy(score_alpha=0.5)
        p._record_outcome(1, success=False)
        low, _ = p._scores[1]
        p._record_outcome(1, success=True)
        high, count = p._scores[1]
        assert high > low
        assert count == 2

    def test_suppression_requires_min_outcomes(self):
        p = TreeFilteredPolicy(score_alpha=1.0, suppress_below=0.5,
                               min_outcomes=3)
        p._record_outcome(1, success=False)
        assert not p._is_suppressed(1)
        p._record_outcome(1, success=False)
        p._record_outcome(1, success=False)
        assert p._is_suppressed(1)

    def test_score_recovers(self):
        p = TreeFilteredPolicy(score_alpha=1.0, suppress_below=0.5,
                               min_outcomes=1)
        p._record_outcome(1, success=False)
        assert p._is_suppressed(1)
        p._record_outcome(1, success=True)
        assert not p._is_suppressed(1)

    def test_expiry_counts_failure(self):
        p = TreeFilteredPolicy(grace_periods=4, score_alpha=1.0,
                               min_outcomes=1, suppress_below=0.5)
        p._pending.append((10, 7))
        p._pending_blocks[7] = 10
        p._expire_pending(10)
        assert 7 not in p._pending_blocks
        assert p._is_suppressed(7)


class TestEndToEnd:
    def test_stats_extras_present(self):
        trace = [1, 2, 3, 4] * 100
        stats = run(trace, 16)
        assert "filter_suppressed" in stats.extra
        assert "filter_tracked_blocks" in stats.extra
        stats.check_conservation()

    def test_never_hurts_much_on_predictable_pattern(self):
        pattern = list(range(10, 310, 10))
        trace = pattern * 40
        tree = simulate(PAPER_PARAMS, make_policy("tree"), trace, 16)
        filt = run(trace, 16)
        assert filt.miss_rate <= tree.miss_rate + 5.0

    def test_suppresses_deceptive_pattern(self):
        """A stale edge (1 -> 2 learned during warmup) keeps proposing a
        block that never arrives anymore; the filter must shut it off."""
        trace = [1, 2] * 30  # teach a strong 1 -> 2 edge
        cold = 10_000
        for _ in range(100):  # the pattern changes: 2 never follows 1 again
            trace.append(1)
            for _ in range(5):
                trace.append(cold)
                cold += 7
        stats = run(trace, 16, grace_periods=3, min_outcomes=2,
                    suppress_below=0.6)
        assert stats.extra["filter_suppressed"] > 10
        # The unfiltered tree keeps re-prefetching the dead edge.
        tree = simulate(PAPER_PARAMS, make_policy("tree"), trace, 16)
        assert stats.prefetches_issued < tree.prefetches_issued

    def test_improves_or_matches_prefetch_precision(self):
        """The filter should not lower the prefetch-cache hit rate."""
        from repro.traces.synthetic import make_trace

        trace = make_trace("snake", num_references=12_000).as_list()
        tree = simulate(PAPER_PARAMS, make_policy("tree"), trace, 512)
        filt = run(trace, 512)
        assert (
            filt.prefetch_cache_hit_rate >= tree.prefetch_cache_hit_rate - 2.0
        )
