"""Unit/behavioural tests for the individual prefetching policies."""

import random

import pytest

from repro.params import PAPER_PARAMS
from repro.policies.next_limit import NL_TAG, partition_cap
from repro.policies.registry import make_policy, policy_names
from repro.sim.engine import Simulator, simulate

P = PAPER_PARAMS


def run(policy_name, trace, cache_size, **policy_kwargs):
    return simulate(P, make_policy(policy_name, **policy_kwargs), trace, cache_size)


class TestRegistry:
    def test_all_paper_policies_present(self):
        names = set(policy_names())
        assert {
            "no-prefetch", "next-limit", "tree", "tree-next-limit",
            "tree-threshold", "tree-children", "tree-lvc", "perfect-selector",
        } <= names

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nope")

    def test_kwargs_forwarded(self):
        p = make_policy("tree-threshold", threshold=0.1)
        assert p.threshold == 0.1
        p = make_policy("tree", max_tree_nodes=128)
        assert p.tree.max_nodes == 128

    def test_fresh_instances(self):
        assert make_policy("tree") is not make_policy("tree")


class TestPartitionCaps:
    def test_partition_cap_function(self):
        assert partition_cap(100) == 10
        assert partition_cap(5) == 1  # at least one buffer

    def test_no_prefetch_partition_zero(self):
        sim = Simulator(P, make_policy("no-prefetch"), 50)
        assert sim.cache.prefetch.capacity == 0

    def test_tree_shares_whole_pool(self):
        sim = Simulator(P, make_policy("tree"), 50)
        assert sim.cache.prefetch.capacity == 50

    def test_tree_next_limit_caps_nl_tag_only(self):
        """The 10% rule binds one-block-lookahead blocks, not tree blocks."""
        sim = Simulator(P, make_policy("tree-next-limit"), 40)
        assert sim.cache.prefetch.capacity == 40  # pool shared...
        sim.run(list(range(400)))
        # ...but lookahead residents never exceed 10% of the cache.
        assert sim.cache.prefetch.tag_count(NL_TAG) <= partition_cap(40)


class TestTreeThreshold:
    def test_high_threshold_prefetches_little(self):
        rng = random.Random(2)
        trace = [rng.randrange(50) for _ in range(1000)]
        lo = run("tree-threshold", trace, 32, threshold=0.01)
        hi = run("tree-threshold", trace, 32, threshold=0.9)
        assert hi.prefetches_issued <= lo.prefetches_issued

    def test_respects_threshold(self):
        pattern = [1, 2, 3, 4] * 100
        stats = run("tree-threshold", pattern, 16, threshold=0.5)
        # mean probability of issued prefetches can't sit below the threshold
        if stats.prefetches_issued:
            assert stats.mean_prefetched_probability >= 0.5

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            make_policy("tree-threshold", threshold=0.0)
        with pytest.raises(ValueError):
            make_policy("tree-threshold", threshold=1.5)

    def test_extra_records_threshold(self):
        stats = run("tree-threshold", [1, 2] * 50, 16, threshold=0.05)
        assert stats.extra["threshold"] == 0.05


class TestTreeChildren:
    def test_child_count_bounds_prefetching(self):
        rng = random.Random(4)
        trace = [rng.randrange(30) for _ in range(1500)]
        one = run("tree-children", trace, 64, num_children=1)
        five = run("tree-children", trace, 64, num_children=5)
        assert one.prefetches_issued <= five.prefetches_issued
        # k=1 can never issue more than one prefetch per access.
        assert one.prefetches_issued <= one.accesses

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            make_policy("tree-children", num_children=0)

    def test_extra_records_count(self):
        stats = run("tree-children", [1, 2] * 50, 16, num_children=3)
        assert stats.extra["num_children"] == 3


class TestTreeLvc:
    def test_tracks_lvc_issues(self):
        pattern = list(range(40))
        stats = run("tree-lvc", pattern * 20, 16)
        assert "lvc_issued" in stats.extra
        assert "lvc_already_cached_at_issue" in stats.extra

    def test_close_to_tree_when_lvc_cached(self):
        """Section 9.6: when the working set fits, LVCs are cached and
        tree-lvc degenerates to tree."""
        pattern = [1, 2, 3, 4, 5]
        trace = pattern * 60
        tree = run("tree", trace, 32)
        lvc = run("tree-lvc", trace, 32)
        assert lvc.miss_rate == pytest.approx(tree.miss_rate, abs=1.0)


class TestNextLimitObserve:
    def test_no_rearm_after_demand_hit(self):
        """A demand-cache hit must not trigger lookahead (data was resident)."""
        trace = [1, 1, 1, 1]
        stats = run("next-limit", trace, 8)
        # Only the initial miss arms the lookahead: one prefetch of block 2.
        assert stats.prefetches_issued == 1

    def test_non_integer_blocks_ignored(self):
        stats = run("next-limit", ["x", "y", "x"], 8)
        assert stats.prefetches_issued == 0


class TestObserveStats:
    def test_fig14_instrumentation(self):
        """predictable_uncached must count predictable misses only."""
        pattern = [1, 2, 3, 4, 5]
        stats = run("tree", pattern * 50, 32)
        # Working set fits: after warmup predictable accesses are all cached.
        assert stats.predictable_uncached_rate < 10.0

    def test_fig16_instrumentation(self):
        pattern = [1, 2, 3, 4, 5]
        stats = run("tree", pattern * 50, 32)
        assert stats.lvc_cached_rate > 80.0
