"""Tests for the informed-prefetching (TIP) reference policy."""

import pytest

from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.informed import InformedPolicy
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator, simulate


def run(trace, cache, params=PAPER_PARAMS, **kwargs):
    return simulate(params, make_policy("informed", **kwargs), trace, cache)


class TestConstruction:
    def test_registered(self):
        assert isinstance(make_policy("informed"), InformedPolicy)

    def test_validation(self):
        with pytest.raises(ValueError):
            InformedPolicy(lookahead_slack=-1)

    def test_self_hints_from_trace(self):
        trace = [1, 2, 3, 4]
        sim = Simulator(PAPER_PARAMS, make_policy("informed"), 8)
        sim.run(trace)
        assert sim.policy.hints == trace

    def test_explicit_hints_kept(self):
        policy = InformedPolicy(hints=[9, 8, 7])
        sim = Simulator(PAPER_PARAMS, policy, 8)
        sim.run([9, 8, 7])
        assert policy.hints == [9, 8, 7]


class TestUpperBound:
    def test_near_zero_misses_on_any_stream(self):
        """With perfect hints and no disk congestion, only the first access
        can miss (everything else is prefetched exactly in time)."""
        import random

        rng = random.Random(1)
        trace = [rng.randrange(100_000) for _ in range(2000)]
        stats = run(trace, 64)
        assert stats.misses <= 5
        assert stats.extra["hint_mismatches"] == 0
        assert stats.extra["hints_consumed"] == len(trace)

    def test_dominates_every_other_policy(self):
        from repro.traces.synthetic import make_trace

        trace = make_trace("snake", num_references=8000).as_list()
        informed = run(trace, 256)
        for other in ("no-prefetch", "next-limit", "tree", "perfect-selector"):
            stats = simulate(PAPER_PARAMS, make_policy(other), trace, 256)
            assert informed.miss_rate <= stats.miss_rate + 1e-9, other

    def test_prefetches_are_used(self):
        trace = list(range(500))
        stats = run(trace, 64)
        # Deterministic hints: essentially every prefetch is consumed.
        assert stats.prefetch_cache_hit_rate > 95.0

    def test_stalls_with_tiny_tcpu(self):
        """When compute cannot hide T_disk, even TIP stalls (Eq. 6 floor)."""
        params = SystemParams(t_cpu=0.01)
        trace = list(range(1000))
        stats = run(trace, 64, params=params)
        assert stats.stall_time > 0.0

    def test_deeper_lookahead_reduces_stall_at_tiny_tcpu(self):
        params = SystemParams(t_cpu=0.01)
        trace = list(range(1000))
        shallow = run(trace, 64, params=params, lookahead_slack=0)
        deep = run(trace, 64, params=params, lookahead_slack=12)
        assert deep.stall_time <= shallow.stall_time + 1e-6


class TestHintMismatch:
    def test_resync_on_imperfect_hints(self):
        # Hints miss one access that actually happens.
        actual = [1, 2, 99, 3, 4, 5, 6]
        policy = InformedPolicy(hints=[1, 2, 3, 4, 5, 6])
        stats = simulate(PAPER_PARAMS, policy, actual, 8)
        stats.check_conservation()
        # 99 is a mismatch but the stream re-syncs at 3.
        assert stats.extra["hints_consumed"] == 6

    def test_mismatch_counter(self):
        policy = InformedPolicy(hints=[1, 2, 3])
        stats = simulate(PAPER_PARAMS, policy, [500, 600, 700], 8)
        assert stats.extra["hint_mismatches"] == 3


class TestMaxLookahead:
    def test_validation(self):
        with pytest.raises(ValueError):
            InformedPolicy(max_lookahead=0)

    def test_caps_pipeline_depth(self):
        """With depth capped at 1 and an I/O-bound CPU, every prefetch
        arrives late: stall per prefetched block ~ T_disk - T_cpu-ish."""
        params = SystemParams(t_cpu=1.0)
        trace = list(range(2000))
        capped = run(trace, 64, params=params, max_lookahead=1)
        free = run(trace, 64, params=params, lookahead_slack=8)
        assert capped.stall_time > free.stall_time
        per_hit = capped.stall_time / max(capped.prefetch_hits, 1)
        assert per_hit > 10.0  # most of T_disk = 15 ms is exposed
