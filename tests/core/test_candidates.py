"""Unit tests for prefetch-candidate enumeration."""

import pytest

from repro.core.candidates import Candidate, best_candidates, iter_candidates
from repro.core.tree import PrefetchTree


def figure1_tree():
    tree = PrefetchTree()
    tree.record_all(["a", "a", "c", "a", "b", "a", "b", "a", "a", "b", "b", "b"])
    assert tree.current is tree.root
    return tree


class TestIterCandidates:
    def test_depth1_probabilities(self):
        tree = figure1_tree()
        cands = {c.block: c for c in iter_candidates(tree, max_depth=1)}
        assert cands["a"].probability == pytest.approx(5 / 6)
        assert cands["b"].probability == pytest.approx(1 / 6)
        assert all(c.depth == 1 for c in cands.values())
        assert all(c.parent_probability == 1.0 for c in cands.values())

    def test_depth2_path_products(self):
        tree = figure1_tree()
        cands = list(iter_candidates(tree, max_depth=2, min_probability=1e-6))
        # Figure 1's d_c = 2 candidate: P(a then c) = 5/6 * 1/5 = 1/6.
        c = next(
            x for x in cands
            if x.block == "c" and x.depth == 2
        )
        assert c.probability == pytest.approx(1 / 6)
        assert c.parent_probability == pytest.approx(5 / 6)
        assert c.parent_block == "a"

    def test_best_first_order(self):
        tree = figure1_tree()
        probs = [c.probability for c in iter_candidates(tree, max_depth=3,
                                                        min_probability=1e-6)]
        assert probs == sorted(probs, reverse=True)

    def test_min_probability_prunes(self):
        tree = figure1_tree()
        cands = list(iter_candidates(tree, max_depth=3, min_probability=0.5))
        assert all(c.probability >= 0.5 for c in cands)

    def test_empty_tree_yields_nothing(self):
        tree = PrefetchTree()
        assert list(iter_candidates(tree)) == []

    def test_start_node_override(self):
        tree = figure1_tree()
        a = tree.root.children["a"]
        cands = {c.block for c in iter_candidates(tree, max_depth=1, start=a)}
        assert cands == {"b", "c"}

    def test_invalid_args(self):
        tree = figure1_tree()
        with pytest.raises(ValueError):
            list(iter_candidates(tree, max_depth=0))
        with pytest.raises(ValueError):
            list(iter_candidates(tree, min_probability=0.0))


class TestBestCandidates:
    def test_dedup_keeps_best(self):
        tree = PrefetchTree()
        # Block 2 reachable at depth 1 (p=2/3... exact values unimportant)
        tree.record_all([1, 1, 2, 2, 1, 2])
        cands = best_candidates(tree, max_depth=3, min_probability=1e-6)
        blocks = [c.block for c in cands]
        assert len(blocks) == len(set(blocks))

    def test_max_candidates_cap(self):
        tree = PrefetchTree()
        tree.record_all(list(range(40)))
        cands = best_candidates(tree, max_candidates=5, min_probability=1e-6)
        assert len(cands) <= 5

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            best_candidates(figure1_tree(), max_candidates=0)


class TestCandidateValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            Candidate(block=1, probability=1.5, depth=1,
                      parent_probability=1.0, parent_block=None)

    def test_depth_bounds(self):
        with pytest.raises(ValueError):
            Candidate(block=1, probability=0.5, depth=0,
                      parent_probability=1.0, parent_block=None)

    def test_parent_probability_dominates(self):
        with pytest.raises(ValueError):
            Candidate(block=1, probability=0.9, depth=2,
                      parent_probability=0.5, parent_block=2)
