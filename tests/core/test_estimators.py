"""Unit tests for the online estimators (s, h, windowed rates)."""

import pytest

from repro.core.estimators import (
    EwmaRate,
    PrefetchHitRatioEstimator,
    PrefetchRateEstimator,
    WindowedRate,
)


class TestEwmaRate:
    def test_initial_value(self):
        e = EwmaRate(alpha=0.1, initial=2.0)
        assert e.value == 2.0

    def test_first_observation_snaps(self):
        e = EwmaRate(alpha=0.1, initial=5.0)
        e.observe(1.0)
        assert e.value == 1.0

    def test_smoothing(self):
        e = EwmaRate(alpha=0.5)
        e.observe(0.0)
        e.observe(4.0)
        assert e.value == pytest.approx(2.0)

    def test_converges_to_constant(self):
        e = EwmaRate(alpha=0.2)
        for _ in range(200):
            e.observe(3.0)
        assert e.value == pytest.approx(3.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaRate(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaRate(alpha=1.5)


class TestPrefetchRateEstimator:
    def test_lifetime_mean(self):
        est = PrefetchRateEstimator()
        for n in (2, 0, 4):
            est.end_period(n)
        assert est.lifetime_mean == pytest.approx(2.0)
        assert est.periods == 3

    def test_s_tracks_recent(self):
        est = PrefetchRateEstimator(alpha=0.5)
        for _ in range(50):
            est.end_period(2)
        assert est.s == pytest.approx(2.0, abs=1e-6)

    def test_negative_rejected(self):
        est = PrefetchRateEstimator()
        with pytest.raises(ValueError):
            est.end_period(-1)

    def test_empty(self):
        est = PrefetchRateEstimator(initial=1.0)
        assert est.lifetime_mean == 0.0
        assert est.s == 1.0


class TestPrefetchHitRatioEstimator:
    def test_ratio(self):
        est = PrefetchHitRatioEstimator()
        for _ in range(3):
            est.record_hit()
        est.record_miss()
        assert est.h == pytest.approx(0.75)
        assert est.resolved == 4

    def test_empty(self):
        assert PrefetchHitRatioEstimator().h == 0.0


class TestWindowedRate:
    def test_basic_rate(self):
        w = WindowedRate(window=10)
        for flag in [True, False, True, True]:
            w.observe(flag)
        assert w.rate == pytest.approx(0.75)
        assert len(w) == 4

    def test_window_rolls(self):
        w = WindowedRate(window=4)
        for _ in range(4):
            w.observe(True)
        for _ in range(4):
            w.observe(False)
        assert w.rate == 0.0

    def test_partial_roll(self):
        w = WindowedRate(window=4)
        for flag in [True, True, True, True, False]:
            w.observe(flag)
        assert w.rate == pytest.approx(0.75)

    def test_empty(self):
        assert WindowedRate().rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedRate(window=0)
