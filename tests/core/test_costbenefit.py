"""Unit tests for the cost-benefit equations (Sections 5-7)."""

import math

import pytest

from repro.core import costbenefit as cb
from repro.params import PAPER_PARAMS, SystemParams

P = PAPER_PARAMS  # t_hit=0.243, t_driver=0.58, t_disk=15, t_cpu=50


class TestStall:
    def test_depth_zero_is_demand_fetch(self):
        """T_stall(0) = T_disk and dT_pf(., 0) = 0 by definition."""
        assert cb.t_stall(P, 0, 1.0) == P.t_disk
        assert cb.delta_t_pf(P, 0, 1.0) == 0.0

    def test_fully_overlapped_at_paper_constants(self):
        # T_disk/1 = 15 < T_cpu + T_hit + s*T_driver = 50.8 -> no stall.
        assert cb.t_stall(P, 1, 1.0) == 0.0
        assert cb.delta_t_pf(P, 1, 1.0) == P.t_disk

    def test_partial_overlap_small_tcpu(self):
        params = SystemParams(t_cpu=5.0)
        # per-period compute = 5 + 0.243 + 0.58 = 5.823; stall = 15 - 5.823
        expected = 15.0 - (5.0 + 0.243 + 0.58)
        assert cb.t_stall(params, 1, 1.0) == pytest.approx(expected)

    def test_stall_decreases_with_depth(self):
        params = SystemParams(t_cpu=2.0)
        stalls = [cb.t_stall(params, d, 1.0) for d in range(1, 10)]
        assert all(a >= b for a, b in zip(stalls, stalls[1:]))

    def test_stall_decreases_with_s(self):
        params = SystemParams(t_cpu=2.0)
        assert cb.t_stall(params, 1, 0.0) >= cb.t_stall(params, 1, 5.0)

    def test_stall_matches_eq6(self):
        """Eq. 6: max(T_disk/d - (T_hit + T_cpu + s*T_driver), 0)."""
        params = SystemParams(t_cpu=1.0)
        s = 2.0
        for d in range(1, 8):
            expected = max(
                params.t_disk / d
                - (params.t_hit + params.t_cpu + s * params.t_driver),
                0.0,
            )
            assert cb.t_stall(params, d, s) == pytest.approx(expected)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            cb.t_stall(P, -1, 1.0)


class TestBenefit:
    def test_depth1_benefit_is_probability_times_savings(self):
        """At depth 1 the parent term vanishes (dT_pf(x, 0) = 0)."""
        assert cb.benefit(P, 0.5, 1.0, 1, 1.0) == pytest.approx(0.5 * 15.0)

    def test_benefit_monotone_in_probability(self):
        b1 = cb.benefit(P, 0.2, 1.0, 1, 1.0)
        b2 = cb.benefit(P, 0.8, 1.0, 1, 1.0)
        assert b2 > b1

    def test_beyond_horizon_nonpositive(self):
        """Past the horizon both dT terms saturate, so B = (p_b - p_x)*T_disk <= 0."""
        horizon = cb.prefetch_horizon(P, 1.0)
        b = cb.benefit(P, 0.3, 0.5, horizon + 1, 1.0)
        assert b <= 0.0

    def test_child_probability_cannot_exceed_parent(self):
        with pytest.raises(ValueError):
            cb.benefit(P, 0.9, 0.5, 2, 1.0)

    def test_depth_zero_rejected(self):
        with pytest.raises(ValueError):
            cb.benefit(P, 0.5, 1.0, 0, 1.0)


class TestOverhead:
    def test_eq14(self):
        """T_oh = (1 - p_b/p_x) * T_driver."""
        assert cb.prefetch_overhead(P, 0.25, 0.5) == pytest.approx(0.5 * 0.58)

    def test_certain_block_no_overhead(self):
        assert cb.prefetch_overhead(P, 0.5, 0.5) == pytest.approx(0.0)

    def test_zero_parent_full_overhead(self):
        assert cb.prefetch_overhead(P, 0.0, 0.0) == P.t_driver


class TestHorizon:
    def test_paper_constants_give_one(self):
        """15 ms disk vs ~50.8 ms per period: one period suffices."""
        assert cb.prefetch_horizon(P, 1.0) == 1

    def test_small_tcpu_deepens_horizon(self):
        params = SystemParams(t_cpu=1.0)
        assert cb.prefetch_horizon(params, 0.0) >= 2

    def test_horizon_shrinks_with_s(self):
        params = SystemParams(t_cpu=1.0)
        assert cb.prefetch_horizon(params, 10.0) <= cb.prefetch_horizon(params, 0.0)

    def test_min_profitable_probability(self):
        """p* = T_driver / (dT_pf(1) + T_driver) at full overlap."""
        expected = 0.58 / (15.0 + 0.58)
        assert cb.min_profitable_probability(P, 1.0) == pytest.approx(expected)
        # Net benefit is ~0 at p*, positive just above.
        p = cb.min_profitable_probability(P, 1.0)
        net = cb.benefit(P, p, 1.0, 1, 1.0) - cb.prefetch_overhead(P, p, 1.0)
        assert abs(net) < 1e-9


class TestPrefetchEvictionCost:
    def test_eq11_shape(self):
        """C_pr = p_b (T_driver + T_stall(x)) / (d_b - x)."""
        # depth 1 -> x = 0 -> bufferage 1, penalty T_driver + T_disk.
        cost = cb.cost_prefetch_eviction(P, 0.5, 1, 1.0)
        assert cost == pytest.approx(0.5 * (0.58 + 15.0))

    def test_deeper_blocks_cheaper(self):
        """More remaining distance = more bufferage recovered = cheaper."""
        c1 = cb.cost_prefetch_eviction(P, 0.5, 1, 1.0)
        c5 = cb.cost_prefetch_eviction(P, 0.5, 5, 1.0)
        assert c5 < c1

    def test_explicit_refetch_distance(self):
        cost = cb.cost_prefetch_eviction(P, 0.4, 5, 1.0, refetch_distance=1)
        # x=1: stall 0 at paper constants; bufferage 4.
        assert cost == pytest.approx(0.4 * 0.58 / 4)

    def test_no_bufferage_vetoes_eviction(self):
        assert cb.cost_prefetch_eviction(
            P, 0.5, 2, 1.0, refetch_distance=2
        ) == math.inf

    def test_probability_scales_cost(self):
        c_lo = cb.cost_prefetch_eviction(P, 0.1, 3, 1.0)
        c_hi = cb.cost_prefetch_eviction(P, 0.9, 3, 1.0)
        assert c_hi == pytest.approx(9 * c_lo)


class TestDemandEvictionCost:
    def test_eq13(self):
        """C_dc = (H(n) - H(n-1)) (T_driver + T_disk)."""
        assert cb.cost_demand_eviction(P, 0.01) == pytest.approx(
            0.01 * (0.58 + 15.0)
        )

    def test_zero_marginal_is_free(self):
        assert cb.cost_demand_eviction(P, 0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cb.cost_demand_eviction(P, -0.1)


class TestDecide:
    def test_prefetch_when_benefit_clears_cost(self):
        d = cb.decide(P, p_b=0.9, p_x=1.0, depth=1, s=1.0, eviction_cost=0.1)
        assert d.prefetch
        assert d.net_benefit == pytest.approx(d.benefit - d.overhead)

    def test_no_prefetch_when_cost_dominates(self):
        d = cb.decide(P, p_b=0.05, p_x=1.0, depth=1, s=1.0, eviction_cost=10.0)
        assert not d.prefetch

    def test_threshold_is_net_benefit(self):
        d = cb.decide(P, p_b=0.5, p_x=1.0, depth=1, s=1.0, eviction_cost=0.0)
        net = d.benefit - d.overhead
        d2 = cb.decide(P, p_b=0.5, p_x=1.0, depth=1, s=1.0, eviction_cost=net)
        assert d2.prefetch  # B - T_oh >= C uses >=
