"""Unit tests for TreeNode."""

import pytest

from repro.core.node import TreeNode


def chain(*blocks):
    """Build a root -> b1 -> b2 ... chain; returns (root, leaf)."""
    root = TreeNode(block=None, parent=None)
    node = root
    for b in blocks:
        child = TreeNode(block=b, parent=node)
        node.children[b] = child
        node = child
    return root, node


class TestStructure:
    def test_root_flags(self):
        root, leaf = chain(1, 2)
        assert root.is_root and not leaf.is_root
        assert leaf.is_leaf and not root.is_leaf

    def test_depth(self):
        root, leaf = chain(1, 2, 3)
        assert root.depth() == 0
        assert leaf.depth() == 3

    def test_path_blocks(self):
        _, leaf = chain("a", "b", "c")
        assert leaf.path_blocks() == ["a", "b", "c"]
        root, _ = chain()
        assert root.path_blocks() == []

    def test_iter_descendants(self):
        root, _ = chain(1, 2)
        extra = TreeNode(block=9, parent=root)
        root.children[9] = extra
        blocks = {n.block for n in root.iter_descendants()}
        assert blocks == {1, 2, 9}

    def test_subtree_size(self):
        root, _ = chain(1, 2, 3)
        assert root.subtree_size() == 4
        assert root.children[1].subtree_size() == 3


class TestProbability:
    def test_child_probability(self):
        root, _ = chain(1)
        root.weight = 4
        root.children[1].weight = 3
        assert root.child_probability(1) == pytest.approx(0.75)

    def test_missing_child_zero(self):
        root, _ = chain(1)
        assert root.child_probability(42) == 0.0

    def test_new_node_defaults(self):
        node = TreeNode(block=5, parent=None)
        assert node.weight == 1
        assert node.children == {}
        assert node.last_visited_child is None
        assert node.heavy is None
