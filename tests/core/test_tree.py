"""Unit tests for the LZ prefetch tree, including the paper's Figure 1."""

import pytest

from repro.core.tree import PrefetchTree


def feed(tree, blocks):
    for b in blocks:
        tree.record_access(b)


class TestFigure1:
    """The worked example of Section 2: accesses (a)(ac)(ab)(aba)(abb)(b)."""

    ACCESSES = ["a", "a", "c", "a", "b", "a", "b", "a", "a", "b", "b", "b"]

    def build(self):
        tree = PrefetchTree()
        feed(tree, self.ACCESSES)
        return tree

    def test_substring_parse(self):
        tree = self.build()
        # Six substrings: (a)(ac)(ab)(aba)(abb)(b)
        assert tree.stats.substrings == 6
        assert tree.root.weight == 6

    def test_node_weights(self):
        tree = self.build()
        a = tree.root.children["a"]
        b_root = tree.root.children["b"]
        assert a.weight == 5
        assert b_root.weight == 1
        assert a.children["c"].weight == 1
        ab = a.children["b"]
        assert ab.weight == 3
        assert ab.children["a"].weight == 1
        assert ab.children["b"].weight == 1

    def test_node_count(self):
        tree = self.build()
        # Nodes: a, c, b(under a), a(under ab), b(under ab), b(under root)
        assert tree.node_count == 6

    def test_edge_probabilities(self):
        tree = self.build()
        # "the probability of accessing nodes a and b from the root" = 5/6, 1/6
        assert tree.root.child_probability("a") == pytest.approx(5 / 6)
        assert tree.root.child_probability("b") == pytest.approx(1 / 6)

    def test_path_probability_figure1(self):
        """Paper: P(a then c from root) = 5/6 * 1/5 = 1/6."""
        tree = self.build()
        assert tree.current is tree.root
        assert tree.path_probability(["a", "c"]) == pytest.approx(1 / 6)

    def test_after_accessing_b_from_root(self):
        """Figure 1(b): accessing b from the root increments its weight."""
        tree = self.build()
        tree.record_access("b")
        assert tree.root.weight == 7
        assert tree.root.children["b"].weight == 2
        assert tree.current is tree.root.children["b"]

    def test_invariants(self):
        tree = self.build()
        tree.check_invariants()


class TestParseMechanics:
    def test_empty_tree(self):
        tree = PrefetchTree()
        assert tree.node_count == 0
        assert tree.next_probabilities() == []
        assert not tree.is_predictable(1)
        assert tree.last_visited_child() is None

    def test_first_access_creates_root_child(self):
        tree = PrefetchTree()
        out = tree.record_access(7)
        assert out.created_node
        assert not out.predictable
        assert out.at_root
        assert tree.node_count == 1
        assert tree.current is tree.root

    def test_repeat_access_traverses(self):
        tree = PrefetchTree()
        tree.record_access(7)
        out = tree.record_access(7)
        assert out.predictable
        assert not out.created_node
        assert out.probability == pytest.approx(1.0)
        assert tree.current is tree.root.children[7]

    def test_probability_measured_before_update(self):
        tree = PrefetchTree()
        feed(tree, [1, 1, 2, 3])  # substrings (1)(12)(3); pointer back at root
        # At root (weight 3), child 1 has weight 2 before this access.
        out = tree.record_access(1)
        assert out.probability == pytest.approx(2 / 3)

    def test_weights_never_exceed_parent(self):
        tree = PrefetchTree()
        feed(tree, [1, 2, 3] * 50 + [4, 5] * 30)
        tree.check_invariants()

    def test_sequential_run_becomes_predictable(self):
        """Re-scanned sequential runs are what the tree must learn."""
        tree = PrefetchTree()
        run = list(range(100, 120))
        for _ in range(12):
            feed(tree, run)
        stats = tree.stats
        assert stats.prediction_accuracy > 0.6

    def test_record_all_matches_loop(self):
        t1, t2 = PrefetchTree(), PrefetchTree()
        seq = [1, 2, 1, 2, 3, 1, 2, 3, 4]
        t1.record_all(seq)
        feed(t2, seq)
        assert t1.root.weight == t2.root.weight
        assert t1.node_count == t2.node_count


class TestPredictabilityAndLvc:
    def test_lvc_tracking(self):
        tree = PrefetchTree()
        feed(tree, [1, 2])        # (1)(2): both root children
        out = tree.record_access(1)
        # Root's last visited child was 2; this access is 1 -> no repeat.
        assert out.lvc_available
        assert not out.lvc_repeat
        out = tree.record_access(9)  # at node 1; lvc of node 1 unset
        assert not out.lvc_available

    def test_lvc_repeat(self):
        tree = PrefetchTree()
        feed(tree, [1])  # root's last visited child is now 1; pointer at root
        out = tree.record_access(1)
        assert out.lvc_available and out.lvc_repeat

    def test_nonroot_lvc_counters(self):
        tree = PrefetchTree()
        # Build (1)(12)(12...) so that deep visits happen at node 1.
        feed(tree, [1, 1, 2, 1, 2])
        s = tree.stats
        assert s.lvc_opportunities_nonroot <= s.lvc_opportunities
        assert s.lvc_repeats_nonroot <= s.lvc_repeats

    def test_next_probabilities_sorted(self):
        tree = PrefetchTree()
        feed(tree, [1, 1, 2, 1, 2, 1, 3])
        probs = tree.next_probabilities()
        values = [p for _, p in probs]
        assert values == sorted(values, reverse=True)
        assert sum(values) <= 1.0 + 1e-9


class TestNodeBudget:
    def test_budget_enforced(self):
        tree = PrefetchTree(max_nodes=16)
        feed(tree, list(range(200)))
        assert tree.node_count <= 16
        tree.check_invariants()

    def test_eviction_counts(self):
        tree = PrefetchTree(max_nodes=8)
        feed(tree, list(range(50)))
        assert tree.stats.nodes_evicted >= 42
        assert tree.stats.nodes_created == 50

    def test_budget_keeps_recent(self):
        tree = PrefetchTree(max_nodes=4)
        feed(tree, [1, 2, 3, 4, 5, 6, 7, 8])
        # The most recent root children must survive.
        assert 8 in tree.root.children

    def test_unbounded_by_default(self):
        tree = PrefetchTree()
        feed(tree, list(range(1000)))
        assert tree.node_count == 1000

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            PrefetchTree(max_nodes=0)

    def test_memory_bytes(self):
        tree = PrefetchTree()
        feed(tree, list(range(10)))
        assert tree.memory_bytes() == 10 * 40
        assert tree.memory_bytes(bytes_per_node=26) == 260

    def test_current_pointer_survives_eviction(self):
        """Evicting the subtree holding the parse pointer resets to root."""
        tree = PrefetchTree(max_nodes=2)
        feed(tree, list(range(100)))
        # Pointer is always valid: either root or a live node.
        node = tree.current
        while node.parent is not None:
            node = node.parent
        assert node is tree.root
        tree.check_invariants()


class TestHeavyChildren:
    def test_relevant_children_small_node(self):
        tree = PrefetchTree()
        feed(tree, [1, 2, 3])
        items = dict(tree.iter_relevant_children(tree.root))
        assert set(items) == {1, 2, 3}

    def test_relevant_children_covers_heavy(self):
        """All children above the 1/1024 floor must be reported at hubs."""
        tree = PrefetchTree()
        # 100 distinct root children, then re-visit a few heavily.
        feed(tree, list(range(100)))
        for _ in range(50):
            feed(tree, [0, 999])  # (0 999) substrings revisit child 0
        items = dict(tree.iter_relevant_children(tree.root))
        heavy = {
            b
            for b, c in tree.root.children.items()
            if c.weight * 1024 >= tree.root.weight
        }
        assert heavy <= set(items)

    def test_relevant_children_hub(self):
        tree = PrefetchTree()
        feed(tree, list(range(500)))  # root becomes a hub
        for _ in range(20):
            feed(tree, [42, 10_000])
        items = dict(tree.iter_relevant_children(tree.root))
        assert 42 in items
