"""Sanity tests on the public API surface (`repro` top-level + __all__)."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        """The documented five-line quickstart works end to end."""
        trace = repro.make_trace("cad", num_references=2000)
        stats = repro.simulate(
            repro.PAPER_PARAMS, repro.make_policy("tree"), trace.as_list(), 256
        )
        assert 0.0 <= stats.miss_rate <= 100.0

    def test_policy_names_match_paper(self):
        assert set(repro.policy_names()) >= {
            "no-prefetch", "next-limit", "tree", "tree-next-limit",
        }

    def test_trace_names(self):
        assert repro.TRACE_NAMES == ["cello", "snake", "cad", "sitar"]


@pytest.mark.parametrize("module", [
    "repro.core", "repro.cache", "repro.policies", "repro.sim",
    "repro.traces", "repro.traces.synthetic", "repro.analysis",
])
class TestSubpackages:
    def test_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestDocstrings:
    @pytest.mark.parametrize("module", [
        "repro", "repro.params", "repro.core.tree", "repro.core.costbenefit",
        "repro.core.candidates", "repro.core.estimators", "repro.cache.lru",
        "repro.cache.ghost", "repro.cache.prefetch_cache",
        "repro.cache.buffer_cache", "repro.sim.engine", "repro.sim.stats",
        "repro.policies.base", "repro.policies.tree",
        "repro.traces.base", "repro.traces.synthetic.components",
        "repro.analysis.experiments",
    ])
    def test_every_module_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40, module

    def test_public_classes_documented(self):
        from repro.cache.buffer_cache import BufferCache
        from repro.core.tree import PrefetchTree
        from repro.sim.engine import Simulator

        for cls in (PrefetchTree, BufferCache, Simulator):
            assert cls.__doc__
            for name, member in vars(cls).items():
                if callable(member) and not name.startswith("_"):
                    assert member.__doc__, f"{cls.__name__}.{name}"
