"""Snapshot codec robustness: corruption, truncation, version skew."""

import os

import pytest

from repro.core.tree import PrefetchTree
from repro.store.codec import (
    KIND_MODEL,
    SCHEMA_VERSION,
    Snapshot,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    decode_snapshot,
    encode_snapshot,
    read_header,
    read_snapshot,
    write_snapshot,
)
from repro.store.models import model_snapshot, restore_model


def sample_snapshot():
    return Snapshot(
        kind=KIND_MODEL,
        model="tree",
        header={"config": {"x": 1}, "provenance": {"trace": "t"},
                "counts": {"model_items": 2}},
        records=[["a", 1], ["b", [2, 3]]],
    )


class TestRoundTrip:
    def test_encode_decode(self):
        snap = sample_snapshot()
        back = decode_snapshot(encode_snapshot(snap))
        assert back == snap

    def test_save_load_save_is_byte_stable(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(sample_snapshot(), path)
        first = path.read_bytes()
        write_snapshot(read_snapshot(path), path)
        assert path.read_bytes() == first

    def test_write_is_atomic_no_temp_left(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(sample_snapshot(), path)
        assert sorted(os.listdir(tmp_path)) == ["s.snap"]

    def test_read_header_is_cheap_and_complete(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(sample_snapshot(), path)
        header = read_header(path)
        assert header["kind"] == KIND_MODEL
        assert header["schema"] == SCHEMA_VERSION
        assert header["body_lines"] == 2
        assert header["counts"] == {"model_items": 2}

    def test_empty_body(self, tmp_path):
        snap = Snapshot(kind=KIND_MODEL, model="tree", header={}, records=[])
        path = tmp_path / "empty.snap"
        write_snapshot(snap, path)
        assert read_snapshot(path).records == []

    def test_empty_tree_round_trip(self, tmp_path):
        tree = PrefetchTree(max_nodes=64)
        path = tmp_path / "tree.snap"
        write_snapshot(model_snapshot(tree), path)
        restored = PrefetchTree(max_nodes=64)
        restore_model(read_snapshot(path), restored)
        assert restored.memory_items() == 0
        assert not restored.root.children


class TestCorruption:
    def test_truncated_file(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(sample_snapshot(), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_missing_body_lines(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(sample_snapshot(), path)
        header, _, _ = path.read_bytes().partition(b"\n")
        path.write_bytes(header)  # header survives, body gone entirely
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_flipped_body_byte(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(sample_snapshot(), path)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0x01  # inside the last body record
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptError, match="checksum"):
            read_snapshot(path)

    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "nope.snap"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(SnapshotCorruptError, match="magic"):
            read_snapshot(path)

    def test_garbage_header(self, tmp_path):
        path = tmp_path / "garbage.snap"
        path.write_bytes(b"\x00\x01\x02 not json\nmore garbage\n")
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_unknown_schema_version(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(sample_snapshot(), path)
        data = path.read_bytes().replace(
            b'"schema":%d' % SCHEMA_VERSION,
            b'"schema":%d' % (SCHEMA_VERSION + 1),
        )
        path.write_bytes(data)
        with pytest.raises(SnapshotVersionError):
            read_snapshot(path)
        with pytest.raises(SnapshotVersionError):
            read_header(path)

    def test_errors_are_snapshot_errors(self):
        assert issubclass(SnapshotCorruptError, SnapshotError)
        assert issubclass(SnapshotVersionError, SnapshotError)

    def test_nan_rejected_at_encode(self):
        snap = Snapshot(kind=KIND_MODEL, model="m", header={},
                        records=[float("nan")])
        with pytest.raises(SnapshotError):
            encode_snapshot(snap)
