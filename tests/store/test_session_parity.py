"""The parity guarantee: snapshot + resume is invisible to the decisions.

For every online-capable policy, training on prefix A, snapshotting
through the real on-disk codec, restoring, and serving suffix B must
produce *bit-identical* advice to one continuous session over A + B —
including stall times, the cost-benefit ``s`` estimate, and the final
sealed statistics.  This is the property that makes ``train`` +
``serve --model`` trustworthy as a substitute for a long-running daemon.
"""

import pytest

from repro.service.session import PrefetchSession
from repro.store.codec import (
    SnapshotError,
    read_snapshot,
    write_snapshot,
)
from repro.store.session_state import restore_session, snapshot_session


def lcg_trace(n, seed=7, universe=200):
    x = seed
    out = []
    for _ in range(n):
        x = (x * 1103515245 + 12345) % (2 ** 31)
        out.append(x % universe)
    return out


REFS = lcg_trace(400)
SPLIT = len(REFS) // 2

#: Every online-capable policy (plus required kwargs) must pass parity.
POLICIES = [
    ("tree", {}),
    ("tree-lvc", {}),
    ("tree-filtered", {}),
    ("tree-next-limit", {}),
    ("tree-children", {"num_children": 2}),
    ("tree-threshold", {"threshold": 0.2}),
    ("next-limit", {}),
    ("no-prefetch", {}),
    ("file-prefetch", {}),
    ("cb-lz", {}),
    ("cb-ppm", {}),
    ("cb-markov", {}),
    ("cb-prob-graph", {}),
    ("cb-last-successor", {}),
]


def run_session(policy, kwargs, blocks, session=None):
    if session is None:
        session = PrefetchSession(policy=policy, cache_size=64,
                                  policy_kwargs=kwargs or None)
    return session, [session.observe(b).as_dict() for b in blocks]


@pytest.mark.parametrize("policy,kwargs", POLICIES,
                         ids=[name for name, _ in POLICIES])
class TestParity:
    def test_resume_is_bit_identical(self, policy, kwargs, tmp_path):
        continuous, want = run_session(policy, kwargs, REFS)

        prefix_session, prefix_out = run_session(policy, kwargs, REFS[:SPLIT])
        path = tmp_path / "mid.snap"
        write_snapshot(snapshot_session(prefix_session), path)
        resumed = restore_session(read_snapshot(path))
        _, suffix_out = run_session(policy, kwargs, REFS[SPLIT:],
                                    session=resumed)

        assert prefix_out + suffix_out == want
        assert resumed.close() == continuous.close()

    def test_save_load_save_is_byte_stable(self, policy, kwargs, tmp_path):
        session, _ = run_session(policy, kwargs, REFS[:SPLIT])
        path = tmp_path / "s.snap"
        write_snapshot(snapshot_session(session), path)
        first = path.read_bytes()
        write_snapshot(read_snapshot(path), path)
        assert path.read_bytes() == first


class TestSessionSnapshotEdges:
    def test_closed_session_cannot_be_snapshotted(self):
        session = PrefetchSession(policy="tree", cache_size=32)
        session.observe(1)
        session.close()
        with pytest.raises(SnapshotError, match="closed"):
            snapshot_session(session)

    def test_snapshot_records_config(self):
        session = PrefetchSession(policy="tree", cache_size=48)
        session.observe(1)
        snap = snapshot_session(session, provenance={"trace": "unit"})
        assert snap.config["policy"] == "tree"
        assert snap.config["cache_size"] == 48
        assert snap.provenance == {"trace": "unit"}
        assert snap.counts["references"] == 1

    def test_restore_rejects_model_snapshot(self):
        from repro.predictors.markov import MarkovPredictor
        from repro.store.models import model_snapshot

        snap = model_snapshot(MarkovPredictor())
        with pytest.raises(SnapshotError, match="session"):
            restore_session(snap)

    def test_fresh_session_round_trips(self, tmp_path):
        # zero observations: empty tree, empty caches, cold estimator
        session = PrefetchSession(policy="tree", cache_size=64)
        path = tmp_path / "fresh.snap"
        write_snapshot(snapshot_session(session), path)
        resumed = restore_session(read_snapshot(path))
        _, resumed_out = run_session("tree", {}, REFS, session=resumed)
        _, cold_out = run_session("tree", {}, REFS)
        assert resumed_out == cold_out


class TestWarmStart:
    def test_warm_start_carries_model_only(self):
        from repro.store.models import model_snapshot

        trained, _ = run_session("tree", {}, REFS)
        snap = model_snapshot(trained.simulator.policy.model())
        warm = PrefetchSession(policy="tree", cache_size=64, warm_start=snap)
        assert (warm.simulator.policy.model_items()
                == trained.simulator.policy.model_items())
        # engine state is cold: no periods served, estimator untouched
        assert warm.observations == 0

    def test_warm_start_kind_mismatch_is_session_error(self):
        from repro.service.session import SessionError
        from repro.store.models import model_snapshot

        trained, _ = run_session("tree", {}, REFS[:50])
        snap = model_snapshot(trained.simulator.policy.model())
        with pytest.raises(SessionError, match="warm start failed"):
            PrefetchSession(policy="cb-ppm", cache_size=64, warm_start=snap)

    def test_policy_without_model_rejects_warm_start(self):
        from repro.service.session import SessionError
        from repro.store.models import model_snapshot

        trained, _ = run_session("tree", {}, REFS[:50])
        snap = model_snapshot(trained.simulator.policy.model())
        with pytest.raises(SessionError, match="no model"):
            PrefetchSession(policy="no-prefetch", cache_size=64,
                            warm_start=snap)

    def test_stats_report_model_items(self):
        session, _ = run_session("tree", {}, REFS[:50])
        live = session.stats_snapshot()
        assert live["model_items"] == session.simulator.policy.model_items()
        assert live["model_items"] > 0
        final = session.close()
        assert final["model_items"] >= live["model_items"]
