"""Model-kind snapshots: every predictor and the tree round-trip exactly.

"Exactly" is behavioural: a restored model must emit the same predictions
as the original on the same continuation, not merely look similar.
"""

import pytest

from repro.core.tree import PrefetchTree
from repro.predictors.graph import ProbabilityGraphPredictor
from repro.predictors.lz import LZPredictor
from repro.predictors.markov import LastSuccessorPredictor, MarkovPredictor
from repro.predictors.ppm import PPMPredictor
from repro.store.codec import SnapshotError, read_snapshot, write_snapshot
from repro.store.models import Snapshotable, model_snapshot, restore_model


def lcg_trace(n, seed=11, universe=60):
    x = seed
    out = []
    for _ in range(n):
        x = (x * 1103515245 + 12345) % (2 ** 31)
        out.append(x % universe)
    return out


PREDICTOR_FACTORIES = {
    "lz": lambda: LZPredictor(max_nodes=256),
    "ppm": lambda: PPMPredictor(),
    "markov": lambda: MarkovPredictor(),
    "prob-graph": lambda: ProbabilityGraphPredictor(),
    "last-successor": lambda: LastSuccessorPredictor(),
}


class TestPredictorRoundTrips:
    @pytest.mark.parametrize("kind", sorted(PREDICTOR_FACTORIES))
    def test_round_trip_through_file(self, kind, tmp_path):
        factory = PREDICTOR_FACTORIES[kind]
        trained = factory()
        trace = lcg_trace(500)
        for block in trace:
            trained.update(block)

        path = tmp_path / f"{kind}.snap"
        write_snapshot(model_snapshot(trained), path)
        restored = factory()
        restore_model(read_snapshot(path), restored)

        assert restored.memory_items() == trained.memory_items()
        # continuing both must stay in lockstep (state equality, not just
        # a one-shot prediction match)
        for block in lcg_trace(200, seed=99):
            trained.update(block)
            restored.update(block)
            assert restored.predictions() == trained.predictions()

    @pytest.mark.parametrize("kind", sorted(PREDICTOR_FACTORIES))
    def test_implements_snapshotable(self, kind):
        assert isinstance(PREDICTOR_FACTORIES[kind](), Snapshotable)

    def test_snapshot_kind_matches(self):
        for kind, factory in PREDICTOR_FACTORIES.items():
            assert factory().snapshot_kind == kind


class TestTreeRoundTrip:
    def test_tree_round_trip_through_file(self, tmp_path):
        trained = PrefetchTree(max_nodes=128)
        for block in lcg_trace(800):
            trained.record_access(block)

        path = tmp_path / "tree.snap"
        write_snapshot(model_snapshot(trained), path)
        restored = PrefetchTree(max_nodes=128)
        restore_model(read_snapshot(path), restored)

        assert restored.memory_items() == trained.memory_items()
        restored.check_invariants()
        for block in lcg_trace(300, seed=5):
            trained.record_access(block)
            restored.record_access(block)
        assert (
            [(c.block, c.weight) for c in restored.current.children.values()]
            == [(c.block, c.weight) for c in trained.current.children.values()]
        )
        restored.check_invariants()

    def test_eviction_state_survives(self, tmp_path):
        # a tight node budget exercises the LRU list and heavy-child index
        trained = PrefetchTree(max_nodes=40)
        for block in lcg_trace(2000, universe=30):
            trained.record_access(block)
        path = tmp_path / "tree.snap"
        write_snapshot(model_snapshot(trained), path)
        restored = PrefetchTree(max_nodes=40)
        restore_model(read_snapshot(path), restored)
        restored.check_invariants()
        # evictions after the restore must pick the same victims
        for block in lcg_trace(500, seed=77, universe=30):
            trained.record_access(block)
            restored.record_access(block)
        assert restored.stats.nodes_evicted == trained.stats.nodes_evicted


class TestMismatches:
    def test_kind_mismatch_rejected(self, tmp_path):
        snap = model_snapshot(MarkovPredictor())
        with pytest.raises(SnapshotError, match="mismatch"):
            restore_model(snap, PPMPredictor())

    def test_session_snapshot_rejected(self):
        from repro.service.session import PrefetchSession
        from repro.store.session_state import snapshot_session

        session = PrefetchSession(policy="tree", cache_size=32)
        session.observe(1)
        snap = snapshot_session(session)
        with pytest.raises(SnapshotError, match="model snapshot"):
            restore_model(snap, PrefetchTree())

    def test_unsnapshotable_object_rejected(self):
        with pytest.raises(SnapshotError, match="not snapshotable"):
            model_snapshot(object())
