"""ModelStore registry: naming, versioning, resolution, failure modes."""

import pytest

from repro.predictors.markov import MarkovPredictor
from repro.store.codec import KIND_MODEL, SnapshotError
from repro.store.models import model_snapshot
from repro.store.registry import ModelStore, ModelStoreError, parse_spec


def trained_snapshot(n=50):
    predictor = MarkovPredictor()
    for block in range(n):
        predictor.update(block % 7)
    return model_snapshot(predictor, provenance={"trace": "unit"})


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("tree-cad") == ("tree-cad", None)

    def test_versioned(self):
        assert parse_spec("tree-cad@3") == ("tree-cad", 3)

    @pytest.mark.parametrize("bad", ["", "@3", "a b", "x@", "x@y", ".hidden",
                                     "a@1@2", "a/b"])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ModelStoreError):
            parse_spec(bad)


class TestStore:
    def test_versions_increment_and_never_rewrite(self, tmp_path):
        store = ModelStore(tmp_path / "models")
        snap = trained_snapshot()
        assert store.save("markov-unit", snap) == 1
        assert store.save("markov-unit", snap) == 2
        assert store.versions("markov-unit") == [1, 2]
        _, _, path1 = store.resolve("markov-unit@1")
        _, _, path2 = store.resolve("markov-unit@2")
        assert path1 != path2

    def test_load_latest_and_pinned(self, tmp_path):
        store = ModelStore(tmp_path)
        store.save("m", trained_snapshot(n=10))
        store.save("m", trained_snapshot(n=500))
        latest = store.load("m")
        pinned = store.load("m@1")
        assert latest.kind == pinned.kind == KIND_MODEL
        assert latest.counts["model_items"] >= pinned.counts["model_items"]
        assert store.resolve("m")[1] == 2

    def test_list_entries_marks_latest(self, tmp_path):
        store = ModelStore(tmp_path)
        store.save("a", trained_snapshot())
        store.save("a", trained_snapshot())
        store.save("b", trained_snapshot())
        rows = store.list_entries()
        assert [(r["name"], r["version"], r["latest"]) for r in rows] == [
            ("a", 1, False), ("a", 2, True), ("b", 1, True),
        ]

    def test_unknown_name_lists_known(self, tmp_path):
        store = ModelStore(tmp_path)
        store.save("exists", trained_snapshot())
        with pytest.raises(ModelStoreError, match="exists"):
            store.load("missing")

    def test_unknown_version(self, tmp_path):
        store = ModelStore(tmp_path)
        store.save("m", trained_snapshot())
        with pytest.raises(ModelStoreError, match="no version 9"):
            store.load("m@9")

    def test_bad_name_rejected_on_save(self, tmp_path):
        store = ModelStore(tmp_path)
        with pytest.raises(ModelStoreError, match="bad model name"):
            store.save("../escape", trained_snapshot())

    def test_versions_of_unknown_name_is_empty(self, tmp_path):
        assert ModelStore(tmp_path).versions("nope") == []

    def test_malformed_manifest_is_clean_error(self, tmp_path):
        store = ModelStore(tmp_path)
        (tmp_path / "MANIFEST.json").write_text("{broken")
        with pytest.raises(ModelStoreError, match="manifest"):
            store.load("anything")

    def test_missing_snapshot_file_is_clean_error(self, tmp_path):
        store = ModelStore(tmp_path)
        store.save("m", trained_snapshot())
        _, _, path = store.resolve("m@1")
        import os
        os.unlink(path)
        with pytest.raises(ModelStoreError, match="missing"):
            store.load("m")

    def test_store_errors_are_snapshot_errors(self):
        assert issubclass(ModelStoreError, SnapshotError)
