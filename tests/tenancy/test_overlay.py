"""Overlay-tree parity: a shared-base session must be indistinguishable
from one that restored a private copy of the same base snapshot.

Parity here is *bit-identical*, not approximate: every AccessOutcome,
every candidate enumeration, every advice list.  That is what lets the
serving layer swap private models for copy-on-write overlays without a
behaviour flag.
"""

import random

import pytest

from repro.core.candidates import best_candidates
from repro.core.tree import PrefetchTree
from repro.service.session import PrefetchSession
from repro.store.codec import SnapshotError
from repro.store.models import model_snapshot
from repro.tenancy.overlay import (
    DELTA_MODEL_KIND,
    OverlayError,
    OverlayTree,
    fold_overlays,
)


def lcg_trace(n, seed=7, universe=120):
    x = seed
    out = []
    for _ in range(n):
        x = (x * 1103515245 + 12345) % (2 ** 31)
        out.append(x % universe)
    return out


def trained_base(n=4000, universe=60, seed=3):
    rng = random.Random(seed)
    base = PrefetchTree()
    base.record_all(rng.randrange(universe) for _ in range(n))
    return base


def private_copy(base):
    meta, items = base.snapshot_state()
    tree = PrefetchTree()
    tree.restore_state(meta, items)
    return tree


class TestTreeParity:
    def test_outcomes_and_candidates_match_private_copy(self):
        base = trained_base()
        priv = private_copy(base)
        overlay = OverlayTree(base, base_ref={"tenant": "t"})
        rng = random.Random(11)
        for _ in range(3000):
            block = rng.randrange(70)  # includes blocks the base never saw
            assert priv.record_access(block) == overlay.record_access(block)
            if rng.random() < 0.05:
                assert (best_candidates(priv, max_depth=4)
                        == best_candidates(overlay, max_depth=4))
        overlay.check_invariants()
        assert priv.next_probabilities() == overlay.next_probabilities()
        assert priv.node_count == overlay.node_count
        assert priv.memory_items() == overlay.memory_items()
        # The overlay owns strictly fewer nodes than the merged view.
        assert 0 < overlay.delta_items() < overlay.node_count

    def test_query_surface_matches(self):
        base = trained_base()
        priv = private_copy(base)
        overlay = OverlayTree(base)
        for tree in (priv, overlay):
            tree.record_all(lcg_trace(500, seed=9))
        assert priv.is_predictable(3) == overlay.is_predictable(3)
        for path in ([1], [2, 3], [4, 5, 6]):
            assert priv.path_probability(path) == overlay.path_probability(path)
        assert priv.last_visited_child() == overlay.last_visited_child()
        assert (sorted(n.block for n in priv.iter_nodes())
                == sorted(n.block for n in overlay.iter_nodes()))

    def test_base_structure_is_never_mutated(self):
        base = trained_base()
        want_items = base.memory_items()
        want_weights = {
            id(n): n.weight for n in base.root.iter_descendants()
        }
        overlay = OverlayTree(base)
        overlay.record_all(lcg_trace(2000, seed=5))
        best_candidates(overlay, max_depth=4)
        assert base.memory_items() == want_items
        for node in base.root.iter_descendants():
            assert node.weight == want_weights[id(node)]

    def test_overlays_are_isolated_from_each_other(self):
        base = trained_base()
        a = OverlayTree(base)
        b = OverlayTree(base)
        pa = private_copy(base)
        pb = private_copy(base)
        ra, rb = random.Random(1), random.Random(2)
        for _ in range(1500):
            ba, bb = ra.randrange(80), rb.randrange(80)
            assert a.record_access(ba) == pa.record_access(ba)
            assert b.record_access(bb) == pb.record_access(bb)
        assert best_candidates(a, max_depth=3) == best_candidates(pa, max_depth=3)
        assert best_candidates(b, max_depth=3) == best_candidates(pb, max_depth=3)
        a.check_invariants()
        b.check_invariants()

    def test_budgeted_base_is_rejected(self):
        base = PrefetchTree(max_nodes=64)
        base.record_all(lcg_trace(500))
        with pytest.raises(OverlayError, match="unbudgeted"):
            OverlayTree(base)


class TestDeltaSnapshot:
    def test_round_trip_preserves_decisions(self):
        base = trained_base()
        priv = private_copy(base)
        overlay = OverlayTree(base, base_ref={"tenant": "t", "model": "m@1"})
        head = lcg_trace(1200, seed=21)
        for block in head:
            priv.record_access(block)
            overlay.record_access(block)

        meta, items = overlay.snapshot_state()
        assert meta["base"] == {"tenant": "t", "model": "m@1"}
        assert len(items) == overlay.delta_items()

        restored = OverlayTree(base, base_ref={"tenant": "t", "model": "m@1"})
        restored.restore_state(meta, items)
        restored.check_invariants()
        tail = lcg_trace(1200, seed=22)
        for block in tail:
            want = priv.record_access(block)
            assert overlay.record_access(block) == want
            assert restored.record_access(block) == want
        # Same call history => byte-identical delta snapshots ...
        assert overlay.snapshot_state() == restored.snapshot_state()
        # ... and enumeration (which may rebuild heavy indexes) agrees too.
        assert (best_candidates(restored, max_depth=4)
                == best_candidates(priv, max_depth=4))

    def test_snapshot_kind_is_delta(self):
        base = trained_base(n=200)
        overlay = OverlayTree(base)
        assert overlay.snapshot_kind == DELTA_MODEL_KIND
        snap = model_snapshot(overlay)
        assert snap.model == DELTA_MODEL_KIND

    def test_restore_rejects_wrong_base(self):
        base = trained_base(n=1000, seed=3)
        overlay = OverlayTree(base)
        overlay.record_all(lcg_trace(300))
        meta, items = overlay.snapshot_state()
        other = trained_base(n=500, seed=4)
        victim = OverlayTree(other)
        with pytest.raises(SnapshotError, match="base"):
            victim.restore_state(meta, items)


class TestFold:
    def test_single_overlay_fold_equals_private_continuation(self):
        base = trained_base()
        priv = private_copy(base)
        overlay = OverlayTree(base)
        for block in lcg_trace(2000, seed=31):
            priv.record_access(block)
            overlay.record_access(block)
        folded = fold_overlays(base, [overlay])
        folded.check_invariants()
        assert folded.node_count == priv.node_count
        weights = {
            tuple(n.path_blocks()): n.weight for n in priv.iter_nodes()
        }
        for node in folded.iter_nodes():
            assert weights[tuple(node.path_blocks())] == node.weight

    def test_multi_overlay_weights_sum(self):
        base = trained_base(n=1000)
        overlays = []
        for seed in (41, 42, 43):
            ov = OverlayTree(base)
            ov.record_all(lcg_trace(800, seed=seed))
            overlays.append(ov)
        folded = fold_overlays(base, overlays)
        folded.check_invariants()
        base_weight = {
            tuple(n.path_blocks()): n.weight for n in base.iter_nodes()
        }
        want = {}
        for ov in overlays:
            for node in ov.iter_nodes():
                path = tuple(node.path_blocks())
                want[path] = (want.get(path, 0)
                              + node.weight - base_weight.get(path, 0))
        for path, bw in base_weight.items():
            want[path] = want.get(path, 0) + bw
        got = {
            tuple(n.path_blocks()): n.weight for n in folded.iter_nodes()
        }
        assert got == want

    def test_fold_rejects_foreign_overlay(self):
        base = trained_base(n=300)
        other = trained_base(n=300, seed=9)
        with pytest.raises(OverlayError, match="share"):
            fold_overlays(base, [OverlayTree(other)])


#: Tree-backed policies spot-checked for end-to-end advice parity.
PARITY_POLICIES = [
    ("tree", {}),
    ("tree-lvc", {}),
    ("tree-threshold", {"threshold": 0.2}),
]


@pytest.mark.parametrize("policy,kwargs", PARITY_POLICIES,
                         ids=[n for n, _ in PARITY_POLICIES])
class TestSessionAdviceParity:
    def test_overlay_session_matches_private_warm_start(self, policy, kwargs):
        base = trained_base()
        snap = model_snapshot(base)
        refs = lcg_trace(600, seed=51)

        private = PrefetchSession(policy=policy, cache_size=64,
                                  policy_kwargs=kwargs or None,
                                  warm_start=snap)
        shared = PrefetchSession(policy=policy, cache_size=64,
                                 policy_kwargs=kwargs or None)
        shared.simulator.policy.replace_model(OverlayTree(base))

        want = [private.observe(b).as_dict() for b in refs]
        got = [shared.observe(b).as_dict() for b in refs]
        assert got == want
        assert shared.close() == private.close()
