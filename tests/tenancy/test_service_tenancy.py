"""Tenant-aware serving: admission, quotas, budget eviction, resurrection.

These drive :class:`PrefetchService.handle` in process — no sockets —
because everything under test (quota arithmetic, eviction order,
checkpoint round-trips) is transport-independent.  The headline
invariant is satellite-grade: a session that gets budget-evicted to disk
and transparently resurrected mid-stream must emit advice bit-identical
to the same session served on a worker with no memory pressure at all.
"""

import random

import pytest

from repro.core.tree import PAPER_NODE_BYTES, PrefetchTree
from repro.service import protocol
from repro.service import server as server_mod
from repro.service.protocol import (
    CloseRequest,
    ErrorReply,
    ObserveRequest,
    OpenReply,
    OpenRequest,
    StatsRequest,
)
from repro.service.server import PrefetchService
from repro.store import ModelStore
from repro.store.models import model_snapshot
from repro.tenancy.config import parse_tenancy_config
from repro.tenancy.manager import TenancyManager

#: Tree-backed policies spot-checked for evict/resume advice parity
#: (3 of the registry's policies; the rest share the same model path).
PARITY_POLICIES = [
    ("tree", {}),
    ("tree-lvc", {}),
    ("tree-threshold", {"threshold": 0.2}),
]


def trained_base(n=3000, universe=40, seed=5):
    rng = random.Random(seed)
    tree = PrefetchTree()
    tree.record_all(rng.randrange(universe) for _ in range(n))
    return tree


def lcg_trace(n, seed=7, universe=48):
    x = seed
    out = []
    for _ in range(n):
        x = (x * 1103515245 + 12345) % (2 ** 31)
        out.append(x % universe)
    return out


@pytest.fixture()
def store(tmp_path):
    store = ModelStore(str(tmp_path / "store"))
    store.save("base", model_snapshot(trained_base(), base=True))
    return store


def make_service(store, tmp_path, *, budget=None, tenants=None):
    config = parse_tenancy_config({"tenants": tenants or {
        "acme": {"model": "base", "max_sessions": 3, "retry_after_s": 0.5},
        "globex": {"model": "base", "policy": "tree-lvc"},
    }})
    return PrefetchService(
        store=store,
        tenancy=TenancyManager(store, config),
        memory_budget_bytes=budget,
        checkpoint_dir=str(tmp_path / "ckpt"),
    )


def open_tenant(service, owned, tenant, *, policy="tree", kwargs=None,
                request_id=1):
    return service.handle(
        OpenRequest(id=request_id, policy=policy, tenant=tenant,
                    cache_size=64, policy_kwargs=dict(kwargs or {})),
        owned,
    )


class TestAdmission:
    def test_quota_rejection_carries_retry_after(self, store, tmp_path):
        service = make_service(store, tmp_path)
        owned = set()
        for index in range(3):
            reply = open_tenant(service, owned, "acme", request_id=index)
            assert isinstance(reply, OpenReply)
        rejection = open_tenant(service, owned, "acme", request_id=9)
        assert isinstance(rejection, ErrorReply)
        assert rejection.error == protocol.E_QUOTA
        assert rejection.retry_after_s == 0.5
        assert service.metrics.tenants_rejected == 1
        assert service.metrics.per_tenant["acme"]["sessions_rejected"] == 1
        # Closing a session frees the slot again.
        sid = next(iter(owned))
        service.handle(CloseRequest(id=10, session=sid), owned)
        owned.discard(sid)
        assert isinstance(
            open_tenant(service, owned, "acme", request_id=11), OpenReply
        )

    def test_tenant_errors_are_bad_requests(self, store, tmp_path):
        owned = set()
        no_tenancy = PrefetchService(store=store)
        reply = open_tenant(no_tenancy, owned, "acme")
        assert isinstance(reply, ErrorReply)
        assert reply.error == protocol.E_BAD_REQUEST
        assert "--tenant-config" in reply.message

        service = make_service(store, tmp_path)
        unknown = open_tenant(service, owned, "umbrella")
        assert unknown.error == protocol.E_BAD_REQUEST
        both = service.handle(
            OpenRequest(id=2, tenant="acme", model="base"), owned
        )
        assert both.error == protocol.E_BAD_REQUEST
        assert "mutually exclusive" in both.message

    def test_spec_policy_wins_only_over_the_default(self, store, tmp_path):
        service = make_service(store, tmp_path)
        owned = set()
        defaulted = open_tenant(service, owned, "globex", request_id=1)
        assert defaulted.policy == "tree-lvc"
        explicit = open_tenant(service, owned, "globex",
                               policy="tree-threshold",
                               kwargs={"threshold": 0.2}, request_id=2)
        assert explicit.policy == "tree-threshold"


class TestStats:
    def test_server_stats_carry_tenant_gauges(self, store, tmp_path):
        service = make_service(store, tmp_path, budget=1 << 20)
        owned = set()
        reply = open_tenant(service, owned, "acme")
        for seq, block in enumerate(lcg_trace(40, seed=3)):
            service.handle(
                ObserveRequest(id=50 + seq, session=reply.session,
                               block=block, seq=seq),
                owned,
            )
        stats = service.handle(StatsRequest(id=99), owned).stats
        assert stats["memory_budget_bytes"] == 1 << 20
        assert stats["evicted_sessions"] == 0
        base_bytes = 0
        for state in service.tenancy._tenants.values():
            base_bytes += state.base_bytes()
        assert stats["model_bytes"] >= base_bytes > 0
        gauge = stats["tenants"]["acme"]
        assert gauge["sessions"] == 1
        assert gauge["model_bytes"] >= base_bytes
        assert service.metrics.per_tenant["acme"]["sessions_opened"] == 1


class TestEviction:
    def _tight_service(self, store, tmp_path):
        # Headroom above the shared base for only a handful of delta
        # nodes, so interleaved sessions keep evicting each other.
        base_items = trained_base().memory_items()
        budget = base_items * PAPER_NODE_BYTES + 12 * PAPER_NODE_BYTES
        return make_service(store, tmp_path, budget=budget)

    def test_evict_resurrect_cycle(self, store, tmp_path, monkeypatch):
        monkeypatch.setattr(server_mod, "_BUDGET_CHECK_INTERVAL", 1)
        service = self._tight_service(store, tmp_path)
        owned = set()
        sid_a = open_tenant(service, owned, "acme", request_id=1).session
        sid_b = open_tenant(service, owned, "acme", request_id=2).session
        trace = lcg_trace(120, seed=11)
        seqs = {sid_a: 0, sid_b: 0}
        for index, block in enumerate(trace):
            sid = sid_a if index % 2 == 0 else sid_b
            reply = service.handle(
                ObserveRequest(id=100 + index, session=sid, block=block,
                               seq=seqs[sid]),
                owned,
            )
            assert not isinstance(reply, ErrorReply), reply
            seqs[sid] += 1
        assert service.metrics.sessions_evicted > 0
        assert service.metrics.sessions_resurrected > 0
        assert service.metrics.per_tenant["acme"]["sessions_evicted"] > 0
        # Both sessions saw their full streams despite the churn.
        for sid in (sid_a, sid_b):
            stats = service.handle(
                StatsRequest(id=300, session=sid), owned
            ).stats
            assert stats["period"] == seqs[sid]
            close = service.handle(CloseRequest(id=301, session=sid), owned)
            assert not isinstance(close, ErrorReply)
        assert service.metrics.live_sessions == 0
        assert not service.evicted

    def test_explicit_resume_of_evicted_session(self, store, tmp_path):
        service = self._tight_service(store, tmp_path)
        owned = set()
        sid = open_tenant(service, owned, "acme", request_id=1).session
        for seq, block in enumerate(lcg_trace(30, seed=4)):
            service.handle(
                ObserveRequest(id=10 + seq, session=sid, block=block,
                               seq=seq),
                owned,
            )
        assert service._evict_one(sid)
        assert sid in service.evicted
        resumed = service.handle(
            OpenRequest(id=90, resume=sid), owned
        )
        assert isinstance(resumed, OpenReply)
        assert resumed.resumed and resumed.period == 30
        # The resume supersedes the eviction record even though the
        # restored session got a fresh id ...
        assert sid not in service.evicted
        # ... and the tenant binding survived the disk round-trip.
        assert service.tenancy.tenant_of(resumed.session) == "acme"

    def test_dropped_connection_forgets_evicted_sessions(
        self, store, tmp_path
    ):
        service = self._tight_service(store, tmp_path)
        owned = set()
        sid = open_tenant(service, owned, "acme", request_id=1).session
        for seq, block in enumerate(lcg_trace(20, seed=6)):
            service.handle(
                ObserveRequest(id=10 + seq, session=sid, block=block,
                               seq=seq),
                owned,
            )
        assert service._evict_one(sid)
        closed_before = service.metrics.sessions_closed
        service.drop_connection_sessions(owned)
        assert sid not in service.evicted
        assert service.metrics.sessions_closed == closed_before + 1
        assert service.metrics.live_sessions == 0


@pytest.mark.parametrize("policy,kwargs", PARITY_POLICIES,
                         ids=[name for name, _ in PARITY_POLICIES])
class TestEvictResumeParity:
    def test_advice_identical_to_unpressured_worker(
        self, store, tmp_path, monkeypatch, policy, kwargs
    ):
        """Evict→resurrect round-trips must be decision-invisible."""
        monkeypatch.setattr(server_mod, "_BUDGET_CHECK_INTERVAL", 1)
        base_items = trained_base().memory_items()
        budget = base_items * PAPER_NODE_BYTES + 12 * PAPER_NODE_BYTES
        pressured = make_service(store, tmp_path / "tight", budget=budget)
        relaxed = make_service(store, tmp_path / "roomy")
        trace = lcg_trace(240, seed=23)

        def run(service):
            owned = set()
            sids = [
                open_tenant(service, owned, "acme", policy=policy,
                            kwargs=kwargs, request_id=index).session
                for index in range(2)
            ]
            advice = {sid: [] for sid in sids}
            seqs = {sid: 0 for sid in sids}
            for index, block in enumerate(trace):
                sid = sids[index % 2]
                reply = service.handle(
                    ObserveRequest(id=100 + index, session=sid,
                                   block=block, seq=seqs[sid]),
                    owned,
                )
                assert not isinstance(reply, ErrorReply), reply
                advice[sid].append(reply.advice.as_dict())
                seqs[sid] += 1
            finals = [
                service.handle(
                    CloseRequest(id=900 + i, session=sid), owned
                ).stats
                for i, sid in enumerate(sids)
            ]
            return list(advice.values()), finals

        want_advice, want_finals = run(relaxed)
        got_advice, got_finals = run(pressured)
        assert pressured.metrics.sessions_evicted > 0, (
            "budget never forced an eviction; the parity check is vacuous"
        )
        assert relaxed.metrics.sessions_evicted == 0
        assert got_advice == want_advice
        assert got_finals == want_finals
