"""TenancyManager unit tests: config parsing, worker-side admission,
byte accounting, and delta-snapshot rebinding via ``model_factory``."""

import json
import random

import pytest

from repro.core.tree import PAPER_NODE_BYTES, PrefetchTree
from repro.service.session import PrefetchSession
from repro.store import ModelStore
from repro.store.codec import SnapshotError
from repro.store.models import model_snapshot
from repro.tenancy.config import (
    TenancyConfigError,
    load_tenancy_config,
    parse_tenancy_config,
)
from repro.tenancy.manager import (
    TenancyManager,
    TenantQuotaError,
    UnknownTenantError,
)
from repro.tenancy.overlay import OverlayTree


def trained_base(n=3000, universe=50, seed=5, max_nodes=None):
    rng = random.Random(seed)
    tree = PrefetchTree(max_nodes=max_nodes)
    tree.record_all(rng.randrange(universe) for _ in range(n))
    return tree


@pytest.fixture()
def store(tmp_path):
    store = ModelStore(str(tmp_path / "store"))
    store.save("acme-base", model_snapshot(trained_base(), base=True))
    store.save("globex-base", model_snapshot(trained_base(seed=9)))
    store.save(
        "capped-base",
        model_snapshot(trained_base(seed=4, max_nodes=200)),
    )
    return store


def make_manager(store, doc):
    return TenancyManager(store, parse_tenancy_config(doc))


BASIC = {
    "tenants": {
        "acme": {"model": "acme-base", "max_sessions": 2,
                 "retry_after_s": 0.25},
        "globex": {"model": "globex-base", "max_model_bytes": 1},
    }
}


class TestConfig:
    def test_parse_full_document(self):
        config = parse_tenancy_config({
            "memory_budget_bytes": 1 << 20,
            "tenants": {
                "acme": {"model": "acme-base@2", "policy": "tree-lvc",
                         "max_sessions": 7, "max_model_bytes": 4096,
                         "retry_after_s": 2.5},
            },
        })
        assert config.memory_budget_bytes == 1 << 20
        spec = config.spec("acme")
        assert spec.model == "acme-base@2"
        assert spec.policy == "tree-lvc"
        assert spec.max_sessions == 7
        assert spec.max_model_bytes == 4096
        assert spec.retry_after_s == 2.5
        assert config.spec("nobody") is None

    def test_defaults(self):
        spec = parse_tenancy_config(
            {"tenants": {"t": {"model": "m"}}}
        ).spec("t")
        assert spec.policy is None
        assert spec.max_sessions is None
        assert spec.max_model_bytes is None
        assert spec.retry_after_s == 1.0

    @pytest.mark.parametrize("doc", [
        [],                                       # not an object
        {},                                       # no tenants
        {"tenants": {"t": {}}},                   # model missing
        {"tenants": {"t": {"model": ""}}},        # empty model spec
        {"tenants": {"t": {"model": "m", "max_sessions": 0}}},
        {"tenants": {"t": {"model": "m", "max_model_bytes": -5}}},
        {"tenants": {"t": {"model": "m", "retry_after_s": "soon"}}},
        {"memory_budget_bytes": 0, "tenants": {"t": {"model": "m"}}},
    ])
    def test_rejects_malformed(self, doc):
        with pytest.raises(TenancyConfigError):
            parse_tenancy_config(doc)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(BASIC))
        config = load_tenancy_config(str(path))
        assert sorted(config.tenants) == ["acme", "globex"]
        with pytest.raises(TenancyConfigError):
            load_tenancy_config(str(tmp_path / "missing.json"))
        (tmp_path / "broken.json").write_text("{nope")
        with pytest.raises(TenancyConfigError):
            load_tenancy_config(str(tmp_path / "broken.json"))


class TestModels:
    def test_shared_base_is_loaded_once(self, store):
        manager = make_manager(store, BASIC)
        first = manager.make_model("acme")
        second = manager.make_model("acme")
        assert isinstance(first, OverlayTree)
        assert first.base is second.base  # one shared instance per worker
        assert first is not second
        # Session-side writes stay private to the overlay.
        before = first.base.node_count
        first.record_all([900, 901, 902])
        assert first.base.node_count == before
        assert second.path_probability([900]) == 0.0

    def test_capped_base_falls_back_to_private_copies(self, store):
        manager = make_manager(store, {
            "tenants": {"capped": {"model": "capped-base"}},
        })
        model = manager.make_model("capped")
        assert isinstance(model, PrefetchTree)
        assert not isinstance(model, OverlayTree)
        assert model.max_nodes == 200
        # Private tenants contribute nothing to the shared-base total;
        # their sessions carry the full cost instead.
        assert manager.base_bytes_total() == 0

    def test_unknown_tenant(self, store):
        manager = make_manager(store, BASIC)
        with pytest.raises(UnknownTenantError):
            manager.spec("umbrella")
        with pytest.raises(UnknownTenantError):
            manager.make_model("umbrella")


class TestAdmission:
    def test_session_quota(self, store):
        manager = make_manager(store, BASIC)
        assert manager.admit("acme").model == "acme-base"
        manager.bind("s1", "acme")
        manager.bind("s2", "acme")
        with pytest.raises(TenantQuotaError) as excinfo:
            manager.admit("acme")
        assert excinfo.value.tenant == "acme"
        assert excinfo.value.retry_after_s == 0.25
        manager.unbind("s1")
        assert manager.admit("acme") is not None

    def test_byte_quota_counts_loaded_base(self, store):
        manager = make_manager(store, BASIC)
        assert manager.admit("globex") is not None  # base not loaded yet
        manager.make_model("globex")
        with pytest.raises(TenantQuotaError) as excinfo:
            manager.admit("globex")
        assert "model-byte quota" in str(excinfo.value)


class TestAccounting:
    def test_bytes_split_between_base_and_deltas(self, store):
        manager = make_manager(store, BASIC)
        model = manager.make_model("acme")
        session = PrefetchSession(policy="tree", cache_size=64)
        session.simulator.policy.replace_model(model)
        manager.bind("s1", "acme")
        for block in (700, 701, 702, 700, 701):
            session.observe(block)
        base_bytes = model.base.memory_items() * PAPER_NODE_BYTES
        delta_bytes = model.delta_items() * PAPER_NODE_BYTES
        assert delta_bytes > 0
        assert manager.session_model_bytes(session) == delta_bytes
        assert manager.base_bytes_total() == base_bytes
        sessions = {"s1": session}
        assert (manager.tenant_model_bytes("acme", sessions)
                == base_bytes + delta_bytes)
        gauges = manager.gauges(sessions)
        assert gauges["acme"] == {
            "sessions": 1, "model_bytes": base_bytes + delta_bytes,
        }
        assert "globex" not in gauges  # never loaded, no sessions

    def test_tenant_of_tracks_binding(self, store):
        manager = make_manager(store, BASIC)
        manager.bind("s1", "acme")
        assert manager.tenant_of("s1") == "acme"
        manager.unbind("s1")
        assert manager.tenant_of("s1") is None
        manager.unbind("s1")  # idempotent


class TestModelFactory:
    def _delta_snapshot_meta(self, manager, blocks):
        overlay = manager.make_model("acme")
        overlay.record_all(blocks)
        return overlay, overlay.snapshot_state()

    def test_rebinds_delta_to_shared_base(self, store):
        manager = make_manager(store, BASIC)
        overlay, (meta, items) = self._delta_snapshot_meta(
            manager, [800, 801] * 20
        )
        replacement = manager.model_factory(OverlayTree.snapshot_kind, meta)
        assert isinstance(replacement, OverlayTree)
        assert replacement.base is manager.make_model("acme").base
        replacement.restore_state(meta, items)
        assert replacement.delta_items() == overlay.delta_items()
        assert (replacement.path_probability([800])
                == overlay.path_probability([800]) > 0.0)

    def test_declines_foreign_states(self, store):
        manager = make_manager(store, BASIC)
        _, (meta, _) = self._delta_snapshot_meta(manager, [800])
        # Non-delta kinds and unknown tenants are someone else's problem.
        assert manager.model_factory("tree", {}) is None
        foreign = dict(meta, base={"tenant": "umbrella", "model": "x@1"})
        assert manager.model_factory(OverlayTree.snapshot_kind, foreign) is None

    def test_rejects_base_version_mismatch(self, store):
        manager = make_manager(store, BASIC)
        _, (meta, _) = self._delta_snapshot_meta(manager, [800])
        stale = dict(meta)
        stale["base"] = dict(meta["base"], model="acme-base@99")
        with pytest.raises(SnapshotError):
            manager.model_factory(OverlayTree.snapshot_kind, stale)
