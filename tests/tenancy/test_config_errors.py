"""Error-path coverage for tenancy config parsing.

``test_manager.py`` checks that malformed documents are rejected;
these tests pin down *which* complaint each malformation produces, so a
config error points an operator at the actual problem instead of a
generic "bad config".  The campaign spec parser routes its ``[tenancy]``
section through the same validator, so every message here is also what
``repro campaign run`` users see.
"""

import pytest

from repro.tenancy.config import (
    TenancyConfigError,
    load_tenancy_config,
    parse_tenancy_config,
)


class TestDocumentShape:
    def test_non_object_document(self):
        with pytest.raises(TenancyConfigError, match="JSON object"):
            parse_tenancy_config("tenants: everywhere")

    def test_missing_tenants_section(self):
        with pytest.raises(TenancyConfigError, match="non-empty 'tenants'"):
            parse_tenancy_config({"memory_budget_bytes": 1024})

    def test_tenants_wrong_type(self):
        with pytest.raises(TenancyConfigError, match="non-empty 'tenants'"):
            parse_tenancy_config({"tenants": ["acme"]})

    def test_empty_tenants(self):
        with pytest.raises(TenancyConfigError, match="non-empty 'tenants'"):
            parse_tenancy_config({"tenants": {}})


class TestTenantEntries:
    def test_entry_not_an_object(self):
        with pytest.raises(TenancyConfigError,
                           match="tenant 'acme' must be an object"):
            parse_tenancy_config({"tenants": {"acme": "tree-cello"}})

    def test_model_missing(self):
        with pytest.raises(TenancyConfigError,
                           match="tenant 'acme' needs a 'model'"):
            parse_tenancy_config({"tenants": {"acme": {"policy": "tree"}}})

    def test_model_wrong_type(self):
        with pytest.raises(TenancyConfigError,
                           match="tenant 'acme' needs a 'model'"):
            parse_tenancy_config({"tenants": {"acme": {"model": 7}}})

    def test_unknown_keys_are_named(self):
        with pytest.raises(TenancyConfigError,
                           match=r"unknown keys: \['max_sesions'\]"):
            parse_tenancy_config({
                "tenants": {"acme": {"model": "m", "max_sesions": 5}},
            })

    def test_policy_wrong_type(self):
        with pytest.raises(TenancyConfigError, match="policy must be a string"):
            parse_tenancy_config({
                "tenants": {"acme": {"model": "m", "policy": 3}},
            })

    @pytest.mark.parametrize("value", [0, -1, 2.5, "many", True])
    def test_max_sessions_must_be_positive_int(self, value):
        with pytest.raises(TenancyConfigError,
                           match="max_sessions must be a positive integer"):
            parse_tenancy_config({
                "tenants": {"acme": {"model": "m", "max_sessions": value}},
            })

    @pytest.mark.parametrize("value", [0, -4096, False])
    def test_max_model_bytes_must_be_positive_int(self, value):
        with pytest.raises(TenancyConfigError,
                           match="max_model_bytes must be a positive integer"):
            parse_tenancy_config({
                "tenants": {"acme": {"model": "m", "max_model_bytes": value}},
            })

    def test_retry_after_rejects_negative(self):
        with pytest.raises(TenancyConfigError,
                           match="retry_after_s must be a number >= 0"):
            parse_tenancy_config({
                "tenants": {"acme": {"model": "m", "retry_after_s": -1.0}},
            })

    def test_retry_after_zero_is_allowed(self):
        config = parse_tenancy_config({
            "tenants": {"acme": {"model": "m", "retry_after_s": 0}},
        })
        assert config.spec("acme").retry_after_s == 0.0


class TestTopLevel:
    @pytest.mark.parametrize("value", [0, -1, "256MB", True])
    def test_memory_budget_must_be_positive_int(self, value):
        with pytest.raises(TenancyConfigError,
                           match="memory_budget_bytes must be a positive"):
            parse_tenancy_config({
                "memory_budget_bytes": value,
                "tenants": {"acme": {"model": "m"}},
            })


class TestLoadErrors:
    def test_missing_file_names_the_path(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(TenancyConfigError,
                           match="cannot read tenancy config"):
            load_tenancy_config(str(path))

    def test_invalid_json_names_the_path(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('{"tenants": ', encoding="utf-8")
        with pytest.raises(TenancyConfigError, match="not valid JSON"):
            load_tenancy_config(str(path))

    def test_directory_instead_of_file(self, tmp_path):
        with pytest.raises(TenancyConfigError,
                           match="cannot read tenancy config"):
            load_tenancy_config(str(tmp_path))
