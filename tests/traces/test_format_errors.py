"""Malformed trace files fail with one readable line, not a traceback."""

import pytest

from repro.traces.io import TraceFormatError, load_text


class TestLoadTextErrors:
    def test_non_integer_block_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1\n2\nnot-a-block\n4\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_text(path)
        message = str(excinfo.value)
        assert message == (
            f"{path}:3: expected one integer block id per line, "
            "got 'not-a-block'"
        )

    def test_float_block_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1\n2.5\n")
        with pytest.raises(TraceFormatError, match=":2:"):
            load_text(path)

    def test_malformed_header_json(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# seed: {broken\n1\n2\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_text(path)
        message = str(excinfo.value)
        assert f"{path}:1:" in message
        assert "seed" in message and "JSON" in message

    def test_malformed_params_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# name: ok\n# params: [1,\n1\n")
        with pytest.raises(TraceFormatError, match=":2:.*params"):
            load_text(path)

    def test_is_a_value_error(self, tmp_path):
        # existing call sites catch ValueError; the subclass keeps them working
        assert issubclass(TraceFormatError, ValueError)

    def test_unknown_header_keys_still_ignored(self, tmp_path):
        path = tmp_path / "ok.trace"
        path.write_text("# flavour: {not json but irrelevant\n7\n8\n")
        assert load_text(path).as_list() == [7, 8]

    def test_blank_lines_still_skipped(self, tmp_path):
        path = tmp_path / "ok.trace"
        path.write_text("1\n\n2\n")
        assert load_text(path).as_list() == [1, 2]
