"""Tests for the synthetic workload generators and their paper signatures.

The workload-shape assertions use short traces (fast) with generous bounds;
the full calibration against the paper's numbers lives in the benchmarks.
"""

import numpy as np
import pytest

from repro.core.tree import PrefetchTree
from repro.traces.synthetic import (
    TRACE_NAMES,
    ZipfSampler,
    make_paper_suite,
    make_trace,
)
from repro.traces.synthetic.components import (
    chain_stream,
    cold_scan_stream,
    cold_stream,
    point_stream,
    scan_stream,
)
from repro.traces.synthetic.markov import (
    StickyWalk,
    random_object_graph,
    scatter_ids,
)
from repro.traces.synthetic.mixer import interleave, iter_interleaved
from repro.traces.synthetic.sequential import FileSpace, random_file_sizes

from itertools import islice


class TestZipfSampler:
    def test_rank_zero_most_popular(self):
        rng = np.random.default_rng(0)
        z = ZipfSampler(100, 1.0, rng)
        samples = z.sample(5000)
        counts = np.bincount(samples, minlength=100)
        assert counts[0] == counts.max()

    def test_bounded_support(self):
        rng = np.random.default_rng(0)
        z = ZipfSampler(10, 1.2, rng)
        assert set(z.sample(1000)) <= set(range(10))

    def test_alpha_zero_uniformish(self):
        rng = np.random.default_rng(0)
        z = ZipfSampler(4, 0.0, rng)
        counts = np.bincount(z.sample(8000), minlength=4)
        assert counts.min() > 1500

    def test_shuffle_decorrelates_rank_and_id(self):
        rng = np.random.default_rng(0)
        z = ZipfSampler(1000, 1.0, rng, shuffle=True)
        top = np.bincount(z.sample(20000), minlength=1000).argmax()
        assert top != 0 or True  # shuffled: popular id is arbitrary

    def test_probability_of_rank(self):
        rng = np.random.default_rng(0)
        z = ZipfSampler(3, 1.0, rng)
        total = sum(z.probability_of_rank(r) for r in range(3))
        assert total == pytest.approx(1.0)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, rng)
        with pytest.raises(ValueError):
            ZipfSampler(5, -1.0, rng)
        with pytest.raises(ValueError):
            ZipfSampler(5, 1.0, rng).sample(-1)


class TestFileSpace:
    def test_disjoint_extents(self):
        space = FileSpace([4, 8, 2])
        blocks = set()
        for f in range(3):
            extent = set(space.extent(f))
            assert not blocks & extent
            blocks |= extent

    def test_guard_gap_breaks_adjacency(self):
        space = FileSpace([4, 4], guard_gap=8)
        assert space.extent(1).start - (space.extent(0).stop - 1) > 1

    def test_read_run_clamps_to_eof(self):
        space = FileSpace([5])
        assert len(space.read_run(0, offset=3, length=10)) == 2
        assert space.read_run(0, offset=7) == []

    def test_read_run_sequential(self):
        space = FileSpace([6])
        run = space.read_run(0)
        assert run == list(range(run[0], run[0] + 6))

    def test_validation(self):
        with pytest.raises(ValueError):
            FileSpace([0])
        with pytest.raises(ValueError):
            FileSpace([1], guard_gap=0)
        with pytest.raises(ValueError):
            FileSpace([5]).read_run(0, offset=-1)

    def test_random_file_sizes(self):
        rng = np.random.default_rng(0)
        sizes = random_file_sizes(rng, 500, median_blocks=8, max_blocks=64)
        assert len(sizes) == 500
        assert all(1 <= s <= 64 for s in sizes)
        assert 4 <= float(np.median(sizes)) <= 16


class TestStickyWalk:
    def test_walk_length(self):
        rng = np.random.default_rng(0)
        graph = random_object_graph(rng, 100)
        walk = StickyWalk(graph, rng).walk(0, 50)
        assert len(walk) == 50
        assert walk[0] == 0

    def test_steps_follow_edges(self):
        rng = np.random.default_rng(0)
        graph = random_object_graph(rng, 50)
        w = StickyWalk(graph, rng)
        node = 0
        for _ in range(100):
            nxt = w.step(node)
            assert nxt in graph[node]
            node = nxt

    def test_stickiness_repeats_choices(self):
        rng = np.random.default_rng(0)
        graph = {0: [1, 2, 3, 4, 5], 1: [0], 2: [0], 3: [0], 4: [0], 5: [0]}
        w = StickyWalk(graph, rng, stickiness=1.0)
        first = w.step(0)
        assert all(w.step(0) == first for _ in range(20))

    def test_scatter_ids_distinct_nonadjacent(self):
        rng = np.random.default_rng(0)
        ids = scatter_ids(rng, 500)
        assert len(set(ids.tolist())) == 500
        adjacent = np.mean(np.diff(np.sort(ids)) == 1)
        assert adjacent < 0.2

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            StickyWalk({0: []}, rng)
        with pytest.raises(ValueError):
            StickyWalk({0: [1]}, rng, stickiness=2.0)
        with pytest.raises(KeyError):
            StickyWalk({0: [1]}, rng).step(99)


class TestComponents:
    RNG = staticmethod(lambda: np.random.default_rng(12))

    def test_scan_stream_sequential(self):
        rng = self.RNG()
        space = FileSpace([10, 10])
        from repro.traces.synthetic.zipf import ZipfSampler as Z

        stream = scan_stream(rng, space, Z(2, 0.5, rng), partial_fraction=0.0)
        chunk = list(islice(stream, 40))
        # Whole-file reads: increments of +1 dominate.
        diffs = [b - a for a, b in zip(chunk, chunk[1:])]
        assert diffs.count(1) >= 30

    def test_point_stream_in_range(self):
        rng = self.RNG()
        chunk = list(islice(point_stream(rng, 1000, 50, 1.0), 200))
        assert all(1000 <= b < 1050 for b in chunk)

    def test_cold_stream_never_repeats_never_adjacent(self):
        chunk = list(islice(cold_stream(0), 100))
        assert len(set(chunk)) == 100
        assert all(b - a == 2 for a, b in zip(chunk, chunk[1:]))

    def test_cold_scan_stream_fresh_runs(self):
        rng = self.RNG()
        chunk = list(islice(cold_scan_stream(rng, 0, mean_run=5.0), 500))
        assert len(set(chunk)) == 500  # never repeats
        diffs = [b - a for a, b in zip(chunk, chunk[1:])]
        assert diffs.count(1) > 200  # mostly sequential interiors

    def test_chain_stream_recurs_but_not_sequential(self):
        rng = self.RNG()
        stream = chain_stream(rng, 0, n_chains=5, chain_length=10, noise=0.0)
        chunk = list(islice(stream, 500))
        assert len(set(chunk)) <= 50  # only chain blocks
        diffs = [b - a for a, b in zip(chunk, chunk[1:])]
        assert diffs.count(1) < 50  # scattered ids

    def test_chain_stream_predictable_by_tree(self):
        rng = self.RNG()
        stream = chain_stream(rng, 0, n_chains=4, chain_length=12,
                              alpha=0.5, noise=0.0)
        tree = PrefetchTree()
        tree.record_all(islice(stream, 3000))
        assert tree.stats.prediction_accuracy > 0.7

    def test_component_validation(self):
        rng = self.RNG()
        # Generator functions validate lazily, on first consumption.
        with pytest.raises(ValueError):
            next(cold_scan_stream(rng, 0, mean_run=0.5))
        with pytest.raises(ValueError):
            next(chain_stream(rng, 0, n_chains=0, chain_length=5))
        with pytest.raises(ValueError):
            next(chain_stream(rng, 0, n_chains=2, chain_length=5, noise=2.0))


class TestMixer:
    def test_total_respected(self):
        rng = np.random.default_rng(0)
        out = interleave(rng, [iter(range(100)), iter(range(100, 200))], 50)
        assert len(out) == 50

    def test_exhaustion_ends_stream(self):
        rng = np.random.default_rng(0)
        out = interleave(rng, [iter([1, 2]), iter([3])], 100)
        assert sorted(out) == [1, 2, 3]

    def test_weights_bias_selection(self):
        rng = np.random.default_rng(0)
        a = (0 for _ in iter(int, 1))  # endless zeros
        b = (1 for _ in iter(int, 1))  # endless ones
        out = interleave(rng, [a, b], 2000, weights=[0.9, 0.1], mean_burst=1.0)
        assert out.count(0) > 1400

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            interleave(rng, [iter([1])], 10, weights=[1, 2])
        with pytest.raises(ValueError):
            interleave(rng, [iter([1])], 10, mean_burst=0.5)
        with pytest.raises(ValueError):
            interleave(rng, [iter([1])], -1)
        with pytest.raises(ValueError):
            list(iter_interleaved(rng, [iter([1])], weights=[-1.0]))


class TestWorkloads:
    @pytest.mark.parametrize("name", TRACE_NAMES)
    def test_deterministic_by_seed(self, name):
        a = make_trace(name, num_references=2000, seed=5)
        b = make_trace(name, num_references=2000, seed=5)
        c = make_trace(name, num_references=2000, seed=6)
        assert a.as_list() == b.as_list()
        assert a.as_list() != c.as_list()

    @pytest.mark.parametrize("name", TRACE_NAMES)
    def test_exact_length(self, name):
        assert len(make_trace(name, num_references=1234)) == 1234

    def test_unknown_trace(self):
        with pytest.raises(ValueError, match="unknown trace"):
            make_trace("tape")

    def test_paper_suite(self):
        suite = make_paper_suite(num_references=500)
        assert set(suite) == set(TRACE_NAMES)
        assert all(len(t) == 500 for t in suite.values())

    def test_cad_no_sequentiality(self):
        t = make_trace("cad", num_references=20_000)
        assert t.sequentiality() < 0.02

    def test_sitar_heavily_sequential(self):
        t = make_trace("sitar", num_references=20_000)
        assert t.sequentiality() > 0.6

    def test_cello_least_predictable(self):
        """Table 2's ordering: cello must trail the other traces."""
        preds = {}
        for name in TRACE_NAMES:
            tree = PrefetchTree()
            tree.record_all(make_trace(name, num_references=30_000).as_list())
            preds[name] = tree.stats.prediction_accuracy
        assert preds["cello"] == min(preds.values())

    def test_l1_metadata(self):
        assert make_trace("cello", num_references=100).l1_cache_blocks == 3840
        assert make_trace("snake", num_references=100).l1_cache_blocks == 640
        assert make_trace("cad", num_references=100).l1_cache_blocks is None
