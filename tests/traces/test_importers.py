"""Tests for external trace importing (request expansion, CSV)."""

import numpy as np
import pytest

from repro.traces.importers import CsvFormat, from_arrays, from_requests, load_csv


class TestFromRequests:
    def test_single_block_request(self):
        t = from_requests([(0, 100)], block_size=8192)
        assert t.as_list() == [0]

    def test_spanning_request(self):
        # Bytes [8000, 8000 + 9000) cover blocks 0, 1, 2 at 8 KiB.
        t = from_requests([(8000, 9000)], block_size=8192)
        assert t.as_list() == [0, 1, 2]

    def test_aligned_request(self):
        t = from_requests([(16384, 16384)], block_size=8192)
        assert t.as_list() == [2, 3]

    def test_zero_size_touches_one_block(self):
        t = from_requests([(8192, 0)], block_size=8192)
        assert t.as_list() == [1]

    def test_block_addressed(self):
        t = from_requests(
            [(5, 3)], offsets_in_bytes=False, sizes_in_bytes=False
        )
        assert t.as_list() == [5, 6, 7]

    def test_sequence_order_preserved(self):
        t = from_requests([(0, 1), (81920, 1), (0, 1)], block_size=8192)
        assert t.as_list() == [0, 10, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            from_requests([(0, 1)], block_size=0)
        with pytest.raises(ValueError):
            from_requests([(-1, 1)])


class TestFromArrays:
    def test_matches_scalar_path(self):
        offsets = np.array([0, 8000, 16384])
        sizes = np.array([100, 9000, 16384])
        fast = from_arrays(offsets, sizes, block_size=8192)
        slow = from_requests(list(zip(offsets.tolist(), sizes.tolist())),
                             block_size=8192)
        assert fast.as_list() == slow.as_list()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            from_arrays(np.array([0]), np.array([1, 2]))


class TestLoadCsv:
    def _write(self, tmp_path, rows, header=""):
        path = tmp_path / "trace.csv"
        body = (header + "\n" if header else "") + "\n".join(rows) + "\n"
        path.write_text(body)
        return path

    def test_basic(self, tmp_path):
        path = self._write(tmp_path, [
            "0.0,0,0,8192,R",
            "0.1,0,8192,8192,R",
            "0.2,0,0,8192,W",      # writes filtered out
            "0.3,0,16384,4096,r",  # lowercase read accepted
        ])
        t = load_csv(path, block_size=8192)
        assert t.as_list() == [0, 1, 2]
        assert t.name == "trace"

    def test_no_opcode_column(self, tmp_path):
        path = self._write(tmp_path, ["0,0,8192,8192"])
        fmt = CsvFormat(opcode_col=None)
        t = load_csv(path, fmt=fmt, block_size=8192)
        assert t.as_list() == [1]

    def test_header_and_comments_skipped(self, tmp_path):
        path = self._write(tmp_path, [
            "# a comment",
            "0,0,0,8192,R",
        ], header="ts,dev,off,size,op")
        fmt = CsvFormat(skip_header_rows=1)
        t = load_csv(path, fmt=fmt)
        assert t.as_list() == [0]

    def test_max_rows(self, tmp_path):
        rows = [f"0,0,{i * 8192},8192,R" for i in range(10)]
        path = self._write(tmp_path, rows)
        t = load_csv(path, max_rows=3)
        assert t.as_list() == [0, 1, 2]

    def test_custom_delimiter_and_columns(self, tmp_path):
        path = tmp_path / "t.tsv"
        path.write_text("8192\t8192\n0\t8192\n")
        fmt = CsvFormat(offset_col=0, size_col=1, opcode_col=None,
                        delimiter="\t")
        t = load_csv(path, fmt=fmt)
        assert t.as_list() == [1, 0]

    def test_format_validation(self):
        with pytest.raises(ValueError):
            CsvFormat(offset_col=-1)
        with pytest.raises(ValueError):
            CsvFormat(skip_header_rows=-1)

    def test_imported_trace_simulates(self, tmp_path):
        rows = [f"0,0,{(i % 20) * 8192},8192,R" for i in range(200)]
        path = self._write(tmp_path, rows)
        t = load_csv(path)
        from repro import PAPER_PARAMS, make_policy, simulate

        stats = simulate(PAPER_PARAMS, make_policy("tree"), t.as_list(), 8)
        stats.check_conservation()
