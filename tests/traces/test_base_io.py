"""Unit tests for the trace container, file I/O and the L1 filter."""

import numpy as np
import pytest

from repro.traces.base import Trace
from repro.traces.filters import filter_trace, iter_l1_misses, l1_filter
from repro.traces.io import load, load_npz, load_text, save, save_npz, save_text


def sample_trace():
    return Trace(
        name="sample",
        blocks=[1, 2, 3, 2, 3, 4],
        description="a sample",
        l1_cache_blocks=2,
        seed=7,
        params={"alpha": 0.5},
    )


class TestTrace:
    def test_len_iter_getitem(self):
        t = sample_trace()
        assert len(t) == 6
        assert list(t) == [1, 2, 3, 2, 3, 4]
        assert t[0] == 1

    def test_unique_blocks(self):
        assert sample_trace().unique_blocks == 4

    def test_as_list_and_array(self):
        t = sample_trace()
        assert t.as_list() == [1, 2, 3, 2, 3, 4]
        arr = t.as_array()
        assert arr.dtype == np.int64
        assert arr.tolist() == t.as_list()

    def test_numpy_backed(self):
        t = Trace(name="np", blocks=np.array([5, 6, 7]))
        assert t.as_list() == [5, 6, 7]
        assert t.as_array() is t.blocks

    def test_head(self):
        t = sample_trace().head(3)
        assert t.as_list() == [1, 2, 3]
        assert t.params["head"] == 3
        with pytest.raises(ValueError):
            sample_trace().head(-1)

    def test_sequentiality(self):
        assert Trace(name="s", blocks=[1, 2, 3, 4]).sequentiality() == 1.0
        assert Trace(name="s", blocks=[1, 5, 9]).sequentiality() == 0.0
        assert Trace(name="s", blocks=[1]).sequentiality() == 0.0

    def test_summary(self):
        s = sample_trace().summary()
        assert s["trace"] == "sample"
        assert s["references"] == 6
        assert s["l1_cache_blocks"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Trace(name="", blocks=[1])
        with pytest.raises(ValueError):
            Trace(name="x", blocks=np.array([[1, 2]]))
        with pytest.raises(ValueError):
            Trace(name="x", blocks=np.array([1.5]))


class TestIO:
    def test_text_roundtrip(self, tmp_path):
        t = sample_trace()
        path = tmp_path / "t.trace"
        save_text(t, path)
        back = load_text(path)
        assert back.as_list() == t.as_list()
        assert back.name == t.name
        assert back.description == t.description
        assert back.l1_cache_blocks == t.l1_cache_blocks
        assert back.seed == t.seed
        assert back.params == t.params

    def test_bare_text_file(self, tmp_path):
        path = tmp_path / "bare.trace"
        path.write_text("5\n6\n\n7\n")
        t = load_text(path)
        assert t.as_list() == [5, 6, 7]
        assert t.name == "bare"

    def test_npz_roundtrip(self, tmp_path):
        t = sample_trace()
        path = tmp_path / "t.npz"
        save_npz(t, path)
        back = load_npz(path)
        assert back.as_list() == t.as_list()
        assert back.params == t.params
        assert back.l1_cache_blocks == 2

    def test_dispatch_by_extension(self, tmp_path):
        t = sample_trace()
        save(t, tmp_path / "a.npz")
        save(t, tmp_path / "a.trace")
        assert load(tmp_path / "a.npz").as_list() == t.as_list()
        assert load(tmp_path / "a.trace").as_list() == t.as_list()


class TestL1Filter:
    def test_misses_only(self):
        # Capacity 2 LRU on [1,2,1,3,1,2]: miss 1,2, hit 1, miss 3, hit 1, miss 2
        out = l1_filter([1, 2, 1, 3, 1, 2], 2)
        assert out == [1, 2, 3, 2]

    def test_zero_capacity_passthrough(self):
        blocks = [4, 4, 4]
        assert l1_filter(blocks, 0) == blocks

    def test_lazy_iterator(self):
        it = iter_l1_misses(iter([1, 1, 2]), 4)
        assert next(it) == 1
        assert next(it) == 2

    def test_filter_trace_metadata(self):
        t = Trace(name="raw", blocks=[1, 1, 2, 2, 3])
        filtered = filter_trace(t, 1, name="cooked")
        assert filtered.name == "cooked"
        assert filtered.l1_cache_blocks == 1
        assert filtered.as_list() == [1, 2, 3]

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            l1_filter([1], -1)

    def test_filter_is_idempotent_at_same_size(self):
        """Filtering an already-filtered stream removes nothing more only
        if no residual distance fits; verify basic sanity instead."""
        raw = [i % 10 for i in range(100)]
        once = l1_filter(raw, 4)
        twice = l1_filter(once, 4)
        assert len(twice) <= len(once) <= len(raw)
