"""Unit tests for the stack-distance profiler, including an oracle check."""

from collections import OrderedDict

import pytest

from repro.cache.ghost import StackDistanceProfiler


def brute_force_distances(blocks, max_depth):
    """Reference implementation: explicit LRU stack walk."""
    stack = OrderedDict()
    out = []
    for b in blocks:
        if b in stack:
            d = 0
            for candidate in reversed(stack):
                d += 1
                if candidate == b:
                    break
            out.append(d if d <= max_depth else None)
            del stack[b]
        else:
            out.append(None)
        stack[b] = None
        while len(stack) > max_depth:
            stack.popitem(last=False)
    return out


class TestDistances:
    def test_simple_sequence(self):
        p = StackDistanceProfiler(max_depth=8)
        assert p.record(1) is None   # cold
        assert p.record(1) == 1      # immediate re-reference
        assert p.record(2) is None
        assert p.record(1) == 2      # one block in between

    def test_matches_brute_force(self):
        blocks = [1, 2, 3, 1, 2, 4, 4, 3, 1, 5, 6, 2, 1, 1, 7, 3, 2]
        p = StackDistanceProfiler(max_depth=4)
        got = [p.record(b) for b in blocks]
        assert got == brute_force_distances(blocks, 4)

    def test_matches_brute_force_random(self):
        import random

        rng = random.Random(42)
        blocks = [rng.randrange(20) for _ in range(2000)]
        for depth in (3, 8, 16):
            p = StackDistanceProfiler(max_depth=depth)
            got = [p.record(b) for b in blocks]
            assert got == brute_force_distances(blocks, depth)

    def test_depth_bound(self):
        p = StackDistanceProfiler(max_depth=2)
        for b in (1, 2, 3):
            p.record(b)
        # 1 was pushed beyond depth 2 -> cold again.
        assert p.record(1) is None

    def test_compaction_preserves_behaviour(self):
        """Force several Fenwick compactions and cross-check the oracle."""
        import random

        rng = random.Random(7)
        blocks = [rng.randrange(12) for _ in range(5000)]
        p = StackDistanceProfiler(max_depth=4)  # slots = 64 -> many compactions
        got = [p.record(b) for b in blocks]
        assert got == brute_force_distances(blocks, 4)


class TestHistograms:
    def test_lifetime_hit_rates(self):
        p = StackDistanceProfiler(max_depth=4)
        for b in (1, 1, 1, 2, 1):
            p.record(b)
        # refs: cold, d1, d1, cold, d2 -> H at 1 = 2/5, at 2 = 1/5.
        assert p.hit_rate_at(1) == pytest.approx(2 / 5)
        assert p.hit_rate_at(2) == pytest.approx(1 / 5)
        assert p.cumulative_hit_rate(2) == pytest.approx(3 / 5)
        assert p.references == 5
        assert p.cold_references == 2

    def test_recent_rates_track_shift(self):
        p = StackDistanceProfiler(max_depth=4, decay=0.9)
        # Phase 1: distance-1 hits; phase 2: distance-2 hits.
        for _ in range(100):
            p.record("a")
        for _ in range(100):
            p.record("x")
            p.record("y")
        assert p.recent_hit_rate_at(2) > p.recent_hit_rate_at(1)

    def test_marginal_band(self):
        p = StackDistanceProfiler(max_depth=16)
        for _ in range(50):
            for b in range(4):
                p.record(b)
        band = p.recent_marginal_rate(4, width=4)
        assert band == pytest.approx(
            sum(p.recent_hit_rate_at(i) for i in (1, 2, 3, 4)) / 4
        )

    def test_renormalisation_stability(self):
        """Long streams must not overflow the decayed-scale bookkeeping."""
        p = StackDistanceProfiler(max_depth=4, decay=0.99)
        p._scale = 1e99  # just below the renorm threshold
        for _ in range(100):
            p.record(1)
        assert 0.0 <= p.recent_hit_rate_at(1) <= 1.0

    def test_histogram_copy(self):
        p = StackDistanceProfiler(max_depth=4)
        p.record(1)
        p.record(1)
        h = p.histogram()
        h[1] = 999
        assert p.histogram()[1] == 1

    def test_position_validation(self):
        p = StackDistanceProfiler(max_depth=4)
        with pytest.raises(ValueError):
            p.hit_rate_at(0)
        with pytest.raises(ValueError):
            p.hit_rate_at(5)
        with pytest.raises(ValueError):
            p.recent_marginal_rate(1, width=0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StackDistanceProfiler(max_depth=0)
        with pytest.raises(ValueError):
            StackDistanceProfiler(max_depth=4, decay=1.0)


class TestMembership:
    def test_len_and_contains(self):
        p = StackDistanceProfiler(max_depth=3)
        for b in (1, 2, 3):
            p.record(b)
        assert len(p) == 3
        assert 1 in p
        p.record(4)
        assert 1 not in p  # pushed out of the profiled stack
