"""Unit tests for the prefetch cache and its Eq. 11 eviction costs."""

import math

import pytest

from repro.cache.prefetch_cache import OVERDUE_DECAY, PrefetchCache, PrefetchEntry
from repro.core import costbenefit
from repro.params import PAPER_PARAMS


def entry(block, p=0.5, depth=1, period=0, arrival=0.0, tag="tree"):
    return PrefetchEntry(
        block=block,
        probability=p,
        depth=depth,
        issue_period=period,
        arrival_time=arrival,
        tag=tag,
    )


class TestEntry:
    def test_remaining_depth(self):
        e = entry(1, depth=3, period=10)
        assert e.remaining_depth(10) == 3
        assert e.remaining_depth(12) == 1
        assert e.remaining_depth(15) == 0

    def test_effective_probability_decays_when_overdue(self):
        e = entry(1, p=0.8, depth=2, period=0)
        assert e.effective_probability(2) == pytest.approx(0.8)
        assert e.effective_probability(3) == pytest.approx(0.8 * OVERDUE_DECAY)
        assert e.effective_probability(5) == pytest.approx(
            0.8 * OVERDUE_DECAY**3
        )


class TestInsertTakeEvict:
    def test_insert_and_get(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=4)
        pc.insert(entry(1))
        assert 1 in pc
        assert pc.get(1).block == 1
        assert len(pc) == 1
        assert pc.inserted == 1

    def test_full_insert_raises(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=1)
        pc.insert(entry(1))
        assert pc.is_full
        with pytest.raises(RuntimeError):
            pc.insert(entry(2))

    def test_duplicate_insert_raises(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=4)
        pc.insert(entry(1))
        with pytest.raises(ValueError):
            pc.insert(entry(1))

    def test_take_counts_hit(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=4)
        pc.insert(entry(1))
        e = pc.take(1)
        assert e.block == 1
        assert pc.hits == 1
        assert 1 not in pc

    def test_evict_counts_unreferenced(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=4)
        pc.insert(entry(1))
        pc.evict(1)
        assert pc.evicted_unreferenced == 1
        assert pc.hits == 0

    def test_refresh(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=4)
        pc.insert(entry(1, p=0.2, depth=1, period=0))
        assert pc.refresh(1, probability=0.9, depth=2, current_period=5)
        e = pc.get(1)
        assert e.probability == 0.9
        assert e.depth == 2
        assert e.issue_period == 5
        assert not pc.refresh(99, 0.5, 1, 5)

    def test_tag_counts(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=8)
        pc.insert(entry(1, tag="nl"))
        pc.insert(entry(2, tag="nl"))
        pc.insert(entry(3, tag="tree"))
        assert pc.tag_count("nl") == 2
        assert pc.tag_count("tree") == 1
        pc.take(1)
        assert pc.tag_count("nl") == 1
        pc.evict(2)
        assert pc.tag_count("nl") == 0
        assert pc.tag_count("never") == 0


class TestEvictionCosts:
    def test_cost_matches_equation(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=4)
        e = entry(1, p=0.5, depth=3, period=0)
        cost = pc.eviction_cost(e, current_period=0, s=1.0)
        expected = costbenefit.cost_prefetch_eviction(PAPER_PARAMS, 0.5, 3, 1.0)
        assert cost == pytest.approx(expected)

    def test_min_cost_entry_matches_eviction_cost(self):
        """The inlined scan must agree with the public per-entry cost."""
        pc = PrefetchCache(PAPER_PARAMS, capacity=8)
        for i, (p, depth, period) in enumerate(
            [(0.9, 1, 5), (0.1, 1, 5), (0.5, 4, 3), (0.7, 2, 0)]
        ):
            pc.insert(entry(i, p=p, depth=depth, period=period))
        best, cost = pc.min_cost_entry(current_period=6, s=1.0)
        brute = min(
            (pc.eviction_cost(e, 6, 1.0), e.block) for e in pc
        )
        assert cost == pytest.approx(brute[0])
        assert best.block == brute[1]

    def test_overdue_blocks_become_cheap(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=4)
        pc.insert(entry(1, p=0.9, depth=1, period=0))   # overdue at t=10
        pc.insert(entry(2, p=0.3, depth=1, period=10))  # fresh
        best, _ = pc.min_cost_entry(current_period=10, s=1.0)
        assert best.block == 1

    def test_empty_cache(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=4)
        assert pc.min_cost_entry(0, 1.0) is None

    def test_costs_finite_and_nonnegative(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=16)
        for i in range(10):
            pc.insert(entry(i, p=0.1 * (i % 9 + 1), depth=i % 4 + 1, period=i))
        _, cost = pc.min_cost_entry(current_period=8, s=0.5)
        assert 0.0 <= cost < math.inf

    def test_resize(self):
        pc = PrefetchCache(PAPER_PARAMS, capacity=1)
        pc.insert(entry(1))
        pc.resize(3)
        pc.insert(entry(2))
        assert len(pc) == 2
        with pytest.raises(ValueError):
            pc.resize(-1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PrefetchCache(PAPER_PARAMS, capacity=-1)
