"""Unit tests for the combined buffer cache (Figure 2 reclaim protocol)."""

import pytest

from repro.cache.buffer_cache import BufferCache, Location, VictimKind
from repro.cache.prefetch_cache import PrefetchEntry
from repro.params import PAPER_PARAMS


def make_cache(total=8, prefetch_cap=None):
    return BufferCache(
        PAPER_PARAMS,
        total,
        prefetch_capacity=prefetch_cap,
    )


def pf_entry(block, p=0.5, depth=1, period=0):
    return PrefetchEntry(
        block=block, probability=p, depth=depth, issue_period=period,
        arrival_time=0.0,
    )


class TestReference:
    def test_miss_then_demand_hit(self):
        c = make_cache()
        assert c.reference(1, 1).location is Location.MISS
        c.insert_demand(1)
        assert c.reference(1, 2).location is Location.DEMAND

    def test_prefetch_hit_moves_to_demand(self):
        """Figure 2 transition (iii)."""
        c = make_cache()
        c.insert_prefetch(pf_entry(5))
        assert c.location_of(5) is Location.PREFETCH
        result = c.reference(5, 1)
        assert result.location is Location.PREFETCH
        assert result.entry.block == 5
        assert c.location_of(5) is Location.DEMAND
        assert len(c.prefetch) == 0

    def test_occupancy_conserved_on_move(self):
        c = make_cache()
        c.insert_prefetch(pf_entry(5))
        before = c.occupancy
        c.reference(5, 1)
        assert c.occupancy == before

    def test_location_of_does_not_mutate(self):
        c = make_cache()
        c.insert_demand(3)
        c.location_of(3)
        assert c.demand.hits == 0


class TestReclaim:
    def test_free_buffer_no_eviction(self):
        c = make_cache(total=4)
        c.insert_demand(1)
        c.reclaim_for_demand(1, 1.0)
        assert c.occupancy == 1  # nothing evicted

    def test_demand_reclaim_evicts_when_full(self):
        c = make_cache(total=2)
        c.insert_demand(1)
        c.insert_demand(2)
        assert c.free_buffers == 0
        c.reclaim_for_demand(1, 1.0)
        assert c.free_buffers == 1

    def test_demand_reclaim_prefers_cheap_prefetch_block(self):
        """An overdue, low-probability prefetched block is the cheapest."""
        c = make_cache(total=2)
        c.insert_demand(1)
        # Immediate re-references make stack distance 1 hot, so shrinking
        # the (1-block) demand cache would genuinely cost hit rate.
        for _ in range(50):
            c.profiler.record(0)
        c.insert_prefetch(pf_entry(9, p=0.05, depth=1, period=0))
        c.reclaim_for_demand(current_period=30, s=1.0)
        assert c.location_of(9) is Location.MISS
        assert c.location_of(1) is Location.DEMAND

    def test_forced_eviction_when_everything_expensive(self):
        """A demand fetch must always find a buffer."""
        c = make_cache(total=2)
        c.insert_prefetch(pf_entry(1, p=0.99, depth=3, period=0))
        c.insert_prefetch(pf_entry(2, p=0.99, depth=3, period=0))
        c.reclaim_for_demand(current_period=0, s=1.0)
        assert c.free_buffers == 1

    def test_prefetch_reclaim_respects_budget(self):
        c = make_cache(total=2)
        c.insert_demand(1)
        c.insert_demand(2)
        # Demand eviction cost is ~0 (no profiled locality): affordable.
        paid = c.try_reclaim_for_prefetch(1, 1.0, max_cost=1.0)
        assert paid is not None
        assert c.free_buffers == 1

    def test_prefetch_reclaim_refuses_expensive(self):
        c = make_cache(total=2)
        for period in range(200):
            c.profiler.record(period % 2)  # strong locality at depth 2
        c.insert_demand(1)
        c.insert_demand(2)
        paid = c.try_reclaim_for_prefetch(1, 1.0, max_cost=0.0)
        assert paid is None
        assert c.occupancy == 2

    def test_prefetch_cap_displaces_within_partition(self):
        c = make_cache(total=10, prefetch_cap=1)
        c.insert_prefetch(pf_entry(1, p=0.1, depth=1, period=0))
        paid = c.try_reclaim_for_prefetch(5, 1.0, max_cost=float("inf"))
        assert paid is not None
        assert len(c.prefetch) == 0  # old entry evicted, room for new

    def test_free_pool_prefetch_is_free(self):
        c = make_cache(total=4)
        assert c.try_reclaim_for_prefetch(1, 1.0, max_cost=0.0) == 0.0


class TestVictimSelection:
    def test_cheapest_victim_prefers_lower_cost(self):
        c = make_cache(total=4)
        c.insert_demand(1)
        for _ in range(50):
            c.profiler.record(0)  # make the demand buffer measurably valuable
        c.insert_prefetch(pf_entry(2, p=0.01, depth=1, period=0))
        victim = c.cheapest_victim(current_period=20, s=1.0)
        assert victim is not None
        kind, block, cost = victim
        assert kind is VictimKind.PREFETCH and block == 2

    def test_cheapest_victim_tie_goes_to_prefetch(self):
        """With a cold profiler both costs are ~0; prefer shedding the
        (mispredicted) prefetch block over the demand LRU block."""
        c = make_cache(total=4)
        c.insert_demand(1)
        c.insert_prefetch(pf_entry(2, p=0.01, depth=1, period=0))
        victim = c.cheapest_victim(current_period=40, s=1.0)
        assert victim is not None
        assert victim[0] is VictimKind.PREFETCH

    def test_empty_cache_no_victim(self):
        c = make_cache()
        assert c.cheapest_victim(1, 1.0) is None

    def test_demand_cost_infinite_when_empty(self):
        c = make_cache()
        assert c.demand_eviction_cost() == float("inf")


class TestInsertGuards:
    def test_insert_demand_requires_free_buffer(self):
        c = make_cache(total=1)
        c.insert_demand(1)
        with pytest.raises(RuntimeError):
            c.insert_demand(2)

    def test_insert_prefetch_requires_free_buffer(self):
        c = make_cache(total=1)
        c.insert_demand(1)
        with pytest.raises(RuntimeError):
            c.insert_prefetch(pf_entry(2))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BufferCache(PAPER_PARAMS, 0)
        with pytest.raises(ValueError):
            BufferCache(PAPER_PARAMS, 4, prefetch_capacity=5)
