"""Unit tests for the LRU cache."""

import pytest

from repro.cache.lru import LRUCache


class TestBasics:
    def test_insert_and_contains(self):
        c = LRUCache(4)
        c.insert(1)
        assert 1 in c
        assert 2 not in c
        assert len(c) == 1

    def test_capacity_eviction(self):
        c = LRUCache(2)
        c.insert(1)
        c.insert(2)
        victim = c.insert(3)
        assert victim == (1, None)
        assert 1 not in c and 2 in c and 3 in c

    def test_access_refreshes_recency(self):
        c = LRUCache(2)
        c.insert(1)
        c.insert(2)
        assert c.access(1)
        victim = c.insert(3)
        assert victim == (2, None)  # 2 became LRU after 1 was touched

    def test_access_counts(self):
        c = LRUCache(2)
        c.insert(1)
        assert c.access(1)
        assert not c.access(9)
        assert c.hits == 1 and c.misses == 1
        assert c.hit_rate == pytest.approx(0.5)
        assert c.miss_rate == pytest.approx(0.5)

    def test_access_does_not_insert_on_miss(self):
        c = LRUCache(2)
        assert not c.access(5)
        assert 5 not in c

    def test_contains_does_not_count(self):
        c = LRUCache(2)
        c.insert(1)
        _ = 1 in c
        assert c.hits == 0 and c.misses == 0

    def test_values(self):
        c = LRUCache(2)
        c.insert(1, "meta")
        assert c.peek(1) == "meta"
        c.insert(1, "meta2")  # refresh updates value
        assert c.peek(1) == "meta2"
        assert len(c) == 1


class TestEvictionProtocol:
    def test_lru_block(self):
        c = LRUCache(3)
        for b in (1, 2, 3):
            c.insert(b)
        assert c.lru_block() == 1
        assert c.mru_block() == 3

    def test_evict_lru(self):
        c = LRUCache(3)
        for b in (1, 2, 3):
            c.insert(b)
        assert c.evict_lru() == (1, None)
        assert c.evictions == 1
        assert len(c) == 2

    def test_evict_empty(self):
        assert LRUCache(2).evict_lru() is None

    def test_remove_and_discard(self):
        c = LRUCache(3)
        c.insert(1, "x")
        assert c.remove(1) == "x"
        with pytest.raises(KeyError):
            c.remove(1)
        assert not c.discard(1)
        c.insert(2)
        assert c.discard(2)

    def test_blocks_lru_to_mru(self):
        c = LRUCache(4)
        for b in (1, 2, 3):
            c.insert(b)
        c.access(1)
        assert list(c.blocks_lru_to_mru()) == [2, 3, 1]

    def test_touch(self):
        c = LRUCache(2)
        c.insert(1)
        c.insert(2)
        assert c.touch(1)
        assert not c.touch(99)
        assert c.hits == 0  # touch doesn't count
        assert c.insert(3) == (2, None)


class TestResize:
    def test_shrink_evicts(self):
        c = LRUCache(4)
        for b in range(4):
            c.insert(b)
        victims = c.resize(2)
        assert [b for b, _ in victims] == [0, 1]
        assert len(c) == 2

    def test_grow(self):
        c = LRUCache(1)
        c.insert(1)
        assert c.resize(3) == []
        c.insert(2)
        c.insert(3)
        assert len(c) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUCache(-1)
        with pytest.raises(ValueError):
            LRUCache(2).resize(-1)


class TestZeroCapacity:
    def test_always_misses(self):
        c = LRUCache(0)
        assert c.insert(1) is None
        assert 1 not in c
        assert not c.access(1)
        assert c.is_full
