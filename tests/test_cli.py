"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--trace", "cad"])
        assert args.policy == "tree"
        assert args.cache == 1024

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--trace", "cad", "--policy", "magic"]
            )


class TestCommands:
    def test_simulate(self, capsys):
        rc = main(["simulate", "--trace", "cad", "--refs", "2000",
                   "--cache", "128"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "miss_rate" in out
        assert "tree on cad" in out

    def test_simulate_with_policy_kwargs(self, capsys):
        rc = main(["simulate", "--trace", "cad", "--refs", "2000",
                   "--cache", "128", "--policy", "tree-threshold",
                   "--threshold", "0.1"])
        assert rc == 0
        assert "threshold" in capsys.readouterr().out

    def test_simulate_tcpu_override(self, capsys):
        rc = main(["simulate", "--trace", "cad", "--refs", "2000",
                   "--cache", "128", "--t-cpu", "200"])
        assert rc == 0

    def test_simulate_hardware_overrides(self, capsys):
        # Modern-hardware timings: every --t-* flag maps into SystemParams.
        rc = main(["simulate", "--trace", "cad", "--refs", "2000",
                   "--cache", "128", "--t-cpu", "5", "--t-disk", "0.1",
                   "--t-driver", "0.02", "--t-hit", "0.005"])
        assert rc == 0
        assert "miss_rate" in capsys.readouterr().out

    def test_negative_param_override_is_clean_error(self, capsys):
        rc = main(["simulate", "--trace", "cad", "--refs", "500",
                   "--cache", "64", "--t-disk", "-1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "t_disk" in err

    def test_sweep(self, capsys):
        rc = main(["sweep", "--trace", "sitar", "--refs", "2000",
                   "--policies", "no-prefetch", "next-limit",
                   "--sizes", "64", "128"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no-prefetch" in out and "next-limit" in out
        assert "64" in out and "128" in out

    def test_sweep_with_jobs_and_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "results")
        argv = ["sweep", "--trace", "sitar", "--refs", "2000",
                "--policies", "no-prefetch", "tree", "--sizes", "64", "128",
                "--jobs", "2", "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "executed=4" in cold
        # Warm re-run replays every result from the on-disk store.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "executed=0" in warm and "disk_hits=4" in warm
        assert warm.split("simulations:")[0] == cold.split("simulations:")[0]

    def test_invalid_jobs_is_clean_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--trace", "cad", "--refs", "500",
                  "--sizes", "64", "--jobs", "0"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err
        assert "Traceback" not in err

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "t.npz"
        rc = main(["trace", "--name", "snake", "--refs", "1500",
                   "--out", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        # The written file is a valid simulation input.
        rc = main(["simulate", "--trace", str(out_file), "--cache", "64"])
        assert rc == 0

    def test_trace_text_format(self, tmp_path):
        out_file = tmp_path / "t.trace"
        rc = main(["trace", "--name", "cad", "--refs", "500",
                   "--out", str(out_file)])
        assert rc == 0
        first = out_file.read_text().splitlines()[0]
        assert first.startswith("# name:")

    def test_missing_trace_file_is_clean_error(self, capsys):
        rc = main(["simulate", "--trace", "/no/such/file.trace",
                   "--cache", "64"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not found" in err
        assert "Traceback" not in err

    def test_malformed_trace_file_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_text("12\nnot-a-block-id\n")
        rc = main(["simulate", "--trace", str(bad), "--cache", "64"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot read trace file" in err

    def test_corrupt_npz_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"this is not a zip archive")
        rc = main(["simulate", "--trace", str(bad), "--cache", "64"])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_report(self, tmp_path, capsys, monkeypatch):
        out_file = tmp_path / "EXP.md"
        import repro.analysis.report as report_mod
        import repro.analysis.experiments as ex

        # Shrink the battery to two cheap experiments for the CLI test.
        monkeypatch.setattr(
            report_mod, "ALL_EXPERIMENTS", (ex.run_table1, ex.run_table2)
        )
        rc = main(["report", "--refs", "1500", "--out", str(out_file)])
        assert rc == 0
        body = out_file.read_text()
        assert "paper vs. measured" in body
        assert "table2" in body


class TestServiceCommands:
    def test_serve_and_replay_parsers(self):
        args = build_parser().parse_args(["serve", "--port", "7000"])
        assert args.port == 7000 and args.host == "127.0.0.1"
        args = build_parser().parse_args(
            ["replay", "--trace", "cad", "--clients", "8", "--t-disk", "0.1"]
        )
        assert args.clients == 8
        assert args.t_disk == 0.1

    def test_replay_against_live_server(self, capsys):
        from repro.service.server import BackgroundServer

        with BackgroundServer() as server:
            rc = main(["replay", "--trace", "cad", "--refs", "800",
                       "--clients", "4", "--cache", "128",
                       "--port", str(server.port), "--t-disk", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "advice_per_second" in out
        assert "latency_p50_ms" in out
        assert "latency_p99_ms" in out
        assert "requests               : 3200" in out

    def test_replay_without_server_is_clean_error(self, capsys):
        # An unused ephemeral port: bind-then-close guarantees nothing listens.
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        rc = main(["replay", "--trace", "cad", "--refs", "100",
                   "--port", str(port)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no server" in err


class TestStoreCommands:
    def test_train_to_file_then_inspect(self, tmp_path, capsys):
        snap = tmp_path / "tree.snap"
        rc = main(["train", "--trace", "cad", "--refs", "1500",
                   "--cache", "128", "--out", str(snap)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trained tree on cad" in out
        assert "counts[references]" in out

        rc = main(["inspect", "--snapshot", str(snap)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "checksum verified" in out
        assert "provenance[trace]" in out and "cad" in out

    def test_train_into_store_and_list(self, tmp_path, capsys):
        store = tmp_path / "models"
        rc = main(["train", "--trace", "cad", "--refs", "1000",
                   "--cache", "128", "--store", str(store),
                   "--name", "tree-cad", "--model-only"])
        assert rc == 0
        assert "tree-cad@1" in capsys.readouterr().out

        rc = main(["inspect", "--store", str(store)])
        assert rc == 0
        assert "tree-cad@1 (latest)" in capsys.readouterr().out

        rc = main(["inspect", "--store", str(store), "--model", "tree-cad"])
        assert rc == 0
        assert "model" in capsys.readouterr().out

    def test_train_needs_exactly_one_destination(self, tmp_path, capsys):
        rc = main(["train", "--trace", "cad", "--refs", "100"])
        assert rc == 2
        assert "exactly one" in capsys.readouterr().err

        rc = main(["train", "--trace", "cad", "--refs", "100",
                   "--store", str(tmp_path)])
        assert rc == 2
        assert "--name" in capsys.readouterr().err

    def test_train_rejects_offline_only_policy(self, tmp_path, capsys):
        rc = main(["train", "--trace", "cad", "--refs", "100",
                   "--policy", "informed", "--out", str(tmp_path / "x.snap")])
        assert rc == 2
        assert "online" in capsys.readouterr().err

    def test_inspect_rejects_corrupt_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.snap"
        bad.write_text("definitely not a snapshot\n")
        rc = main(["inspect", "--snapshot", str(bad)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_serve_flag_validation(self, capsys):
        rc = main(["serve", "--model", "m"])
        assert rc == 2
        assert "--store" in capsys.readouterr().err

        rc = main(["serve", "--checkpoint-dir", "x"])
        assert rc == 2
        assert "--checkpoint-every-s" in capsys.readouterr().err

    def test_serve_unknown_default_model_fails_fast(self, tmp_path, capsys):
        rc = main(["serve", "--store", str(tmp_path / "empty"),
                   "--model", "ghost"])
        assert rc == 2
        assert "no model named" in capsys.readouterr().err
