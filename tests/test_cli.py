"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--trace", "cad"])
        assert args.policy == "tree"
        assert args.cache == 1024

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--trace", "cad", "--policy", "magic"]
            )


class TestCommands:
    def test_simulate(self, capsys):
        rc = main(["simulate", "--trace", "cad", "--refs", "2000",
                   "--cache", "128"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "miss_rate" in out
        assert "tree on cad" in out

    def test_simulate_with_policy_kwargs(self, capsys):
        rc = main(["simulate", "--trace", "cad", "--refs", "2000",
                   "--cache", "128", "--policy", "tree-threshold",
                   "--threshold", "0.1"])
        assert rc == 0
        assert "threshold" in capsys.readouterr().out

    def test_simulate_tcpu_override(self, capsys):
        rc = main(["simulate", "--trace", "cad", "--refs", "2000",
                   "--cache", "128", "--t-cpu", "200"])
        assert rc == 0

    def test_sweep(self, capsys):
        rc = main(["sweep", "--trace", "sitar", "--refs", "2000",
                   "--policies", "no-prefetch", "next-limit",
                   "--sizes", "64", "128"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no-prefetch" in out and "next-limit" in out
        assert "64" in out and "128" in out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "t.npz"
        rc = main(["trace", "--name", "snake", "--refs", "1500",
                   "--out", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        # The written file is a valid simulation input.
        rc = main(["simulate", "--trace", str(out_file), "--cache", "64"])
        assert rc == 0

    def test_trace_text_format(self, tmp_path):
        out_file = tmp_path / "t.trace"
        rc = main(["trace", "--name", "cad", "--refs", "500",
                   "--out", str(out_file)])
        assert rc == 0
        first = out_file.read_text().splitlines()[0]
        assert first.startswith("# name:")

    def test_report(self, tmp_path, capsys, monkeypatch):
        out_file = tmp_path / "EXP.md"
        import repro.analysis.report as report_mod
        import repro.analysis.experiments as ex

        # Shrink the battery to two cheap experiments for the CLI test.
        monkeypatch.setattr(
            report_mod, "ALL_EXPERIMENTS", (ex.run_table1, ex.run_table2)
        )
        rc = main(["report", "--refs", "1500", "--out", str(out_file)])
        assert rc == 0
        body = out_file.read_text()
        assert "paper vs. measured" in body
        assert "table2" in body
