"""SimulationStats round-trip through the on-disk result store.

Mirrors ``tests/store/test_codec.py``: the same corruption classes
(truncation, bit flips, wrong kind) must fail loudly — a damaged cache
entry is never a cache miss.
"""

import json

import pytest

from repro.analysis.scheduler import (
    KIND_RESULT,
    ResultStore,
    RunSpec,
    execute,
    spec_hash,
)
from repro.sim.stats import SimulationStats
from repro.store.codec import (
    Snapshot,
    SnapshotCorruptError,
    canonical_json,
    read_header,
    read_snapshot,
    write_snapshot,
)


@pytest.fixture(scope="module")
def spec():
    return RunSpec(
        trace_name="snake", policy_name="tree", cache_size=64,
        num_references=1200, seed=7,
    )


@pytest.fixture(scope="module")
def stats(spec):
    return execute(spec)


class TestRecordRoundTrip:
    def test_to_from_record(self, stats):
        back = SimulationStats.from_record(stats.to_record())
        assert back == stats
        assert back.extra == stats.extra  # including wall_time_s / spec

    def test_record_survives_canonical_json(self, stats):
        wire = canonical_json(stats.to_record())
        back = SimulationStats.from_record(json.loads(wire))
        assert back.to_record() == stats.to_record()

    def test_unknown_field_rejected(self, stats):
        record = stats.to_record()
        record["misses_per_furlong"] = 12
        with pytest.raises(ValueError, match="unknown"):
            SimulationStats.from_record(record)


class TestStoreRoundTrip:
    def test_save_load_equality(self, tmp_path, spec, stats):
        store = ResultStore(tmp_path)
        key = spec_hash(spec)
        store.save(key, spec, stats)
        assert store.load(key) == stats

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(tmp_path).load("ab" * 32) is None

    def test_layout_sharded_by_hash_prefix(self, tmp_path, spec, stats):
        store = ResultStore(tmp_path)
        key = spec_hash(spec)
        path = store.save(key, spec, stats)
        assert path == tmp_path / key[:2] / f"{key}.snap"
        assert path.exists()
        assert len(store) == 1

    def test_header_carries_spec_config(self, tmp_path, spec, stats):
        store = ResultStore(tmp_path)
        path = store.save(spec_hash(spec), spec, stats)
        header = read_header(path)
        assert header["kind"] == KIND_RESULT
        assert header["config"] == spec.as_dict()
        assert header["counts"]["accesses"] == stats.accesses


class TestStoreCorruption:
    def write_entry(self, tmp_path, spec, stats):
        store = ResultStore(tmp_path)
        key = spec_hash(spec)
        return store, key, store.save(key, spec, stats)

    def test_truncated_entry(self, tmp_path, spec, stats):
        store, key, path = self.write_entry(tmp_path, spec, stats)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(SnapshotCorruptError):
            store.load(key)

    def test_flipped_byte(self, tmp_path, spec, stats):
        store, key, path = self.write_entry(tmp_path, spec, stats)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptError, match="checksum"):
            store.load(key)

    def test_wrong_kind_rejected(self, tmp_path, spec, stats):
        store, key, path = self.write_entry(tmp_path, spec, stats)
        snap = read_snapshot(path)
        write_snapshot(
            Snapshot(kind="model", model=snap.model, header=snap.header,
                     records=snap.records),
            path,
        )
        with pytest.raises(SnapshotCorruptError, match="not a result"):
            store.load(key)

    def test_malformed_record_rejected(self, tmp_path, spec, stats):
        store, key, path = self.write_entry(tmp_path, spec, stats)
        record = stats.to_record()
        record["no_such_counter"] = 1
        write_snapshot(
            Snapshot(kind=KIND_RESULT, model=spec.policy_name,
                     header={}, records=[record]),
            path,
        )
        with pytest.raises(SnapshotCorruptError, match="unreadable"):
            store.load(key)

    def test_multi_record_body_rejected(self, tmp_path, spec, stats):
        store, key, path = self.write_entry(tmp_path, spec, stats)
        record = stats.to_record()
        write_snapshot(
            Snapshot(kind=KIND_RESULT, model=spec.policy_name,
                     header={}, records=[record, record]),
            path,
        )
        with pytest.raises(SnapshotCorruptError, match="not a result"):
            store.load(key)
