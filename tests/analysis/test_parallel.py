"""Tests for the batch/parallel experiment runner."""

import pytest

from repro.analysis.parallel import RunSpec, execute, run_batch


def spec(**overrides):
    base = dict(
        trace_name="cad",
        policy_name="no-prefetch",
        cache_size=64,
        num_references=1500,
        seed=3,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_label(self):
        assert spec().label() == "cad/no-prefetch@64x1500"

    def test_frozen(self):
        s = spec()
        with pytest.raises(Exception):
            s.cache_size = 1  # type: ignore[misc]


class TestExecute:
    def test_runs_and_tags(self):
        stats = execute(spec())
        stats.check_conservation()
        assert stats.extra["spec"] == "cad/no-prefetch@64x1500"
        assert stats.accesses == 1500

    def test_policy_kwargs(self):
        stats = execute(
            spec(policy_name="tree-threshold",
                 policy_kwargs={"threshold": 0.1})
        )
        assert stats.extra["threshold"] == 0.1

    def test_t_cpu_override(self):
        fast = execute(spec(policy_name="tree", t_cpu=5.0))
        slow = execute(spec(policy_name="tree", t_cpu=640.0))
        assert fast.elapsed_time < slow.elapsed_time


class TestRunBatch:
    def test_serial_order_preserved(self):
        specs = [spec(cache_size=c) for c in (32, 64, 128)]
        results = run_batch(specs)
        assert [r.extra["cache_size"] for r in results] == [32, 64, 128]

    def test_deterministic_across_modes(self):
        specs = [spec(policy_name="tree", cache_size=c) for c in (32, 64)]
        serial = run_batch(specs, max_workers=1)
        parallel = run_batch(specs, max_workers=2)
        assert [r.misses for r in serial] == [r.misses for r in parallel]
        assert [r.prefetches_issued for r in serial] == [
            r.prefetches_issued for r in parallel
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_batch([spec()], max_workers=0)

    def test_empty_batch(self):
        assert run_batch([]) == []
