"""Tests for RunSpec, spec hashing, and the batch execution wrapper."""

import pytest

from repro.analysis.scheduler import RunSpec, execute, run_batch, spec_hash


class TestDeprecationShim:
    def test_parallel_reexports_scheduler_objects(self):
        # The legacy module must keep importing until its removal PR, and
        # it must hand back the *same* objects (hash compatibility).
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.analysis import parallel

        assert parallel.RunSpec is RunSpec
        assert parallel.execute is execute
        assert parallel.run_batch is run_batch
        assert parallel.spec_hash is spec_hash

    def test_import_emits_deprecation_warning(self):
        # The shim must *say* it is deprecated, not just act the part —
        # a fresh import raises DeprecationWarning pointing at scheduler.
        import importlib
        import sys

        sys.modules.pop("repro.analysis.parallel", None)
        with pytest.warns(DeprecationWarning,
                          match="repro.analysis.scheduler"):
            importlib.import_module("repro.analysis.parallel")


def spec(**overrides):
    base = dict(
        trace_name="cad",
        policy_name="no-prefetch",
        cache_size=64,
        num_references=1500,
        seed=3,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_label(self):
        assert spec().label() == "cad/no-prefetch@64x1500"

    def test_frozen(self):
        s = spec()
        with pytest.raises(Exception):
            s.cache_size = 1  # type: ignore[misc]


class TestSpecHash:
    def test_stable_across_calls(self):
        assert spec_hash(spec()) == spec_hash(spec())
        assert len(spec_hash(spec())) == 64  # sha256 hex

    @pytest.mark.parametrize("change", [
        {"trace_name": "sitar"},
        {"policy_name": "tree"},
        {"cache_size": 128},
        {"num_references": 1501},
        {"seed": 4},
        {"t_cpu": 20.0},
        {"t_disk": 10.0},
        {"t_driver": 1.0},
        {"t_hit": 0.5},
        {"policy_kwargs": {"threshold": 0.1}},
        {"sim_kwargs": {"collect_per_file": True}},
    ])
    def test_every_field_is_load_bearing(self, change):
        assert spec_hash(spec(**change)) != spec_hash(spec())

    def test_kwargs_order_is_irrelevant(self):
        a = spec(policy_kwargs={"threshold": 0.1, "max_tree_nodes": 500})
        b = spec(policy_kwargs={"max_tree_nodes": 500, "threshold": 0.1})
        assert spec_hash(a) == spec_hash(b)

    def test_numerically_equal_but_distinct_types_collide_not(self):
        # str()-based keys conflated 0.1 (float) with "0.1" (string);
        # canonical JSON keeps them distinct.
        a = spec(policy_kwargs={"threshold": 0.1})
        b = spec(policy_kwargs={"threshold": "0.1"})
        assert spec_hash(a) != spec_hash(b)

    def test_non_json_kwargs_fail_loudly(self):
        with pytest.raises(TypeError):
            spec_hash(spec(policy_kwargs={"hook": object()}))


class TestExecute:
    def test_runs_and_tags(self):
        stats = execute(spec())
        stats.check_conservation()
        assert stats.extra["spec"] == "cad/no-prefetch@64x1500"
        assert stats.accesses == 1500

    def test_policy_kwargs(self):
        stats = execute(
            spec(policy_name="tree-threshold",
                 policy_kwargs={"threshold": 0.1})
        )
        assert stats.extra["threshold"] == 0.1

    def test_t_cpu_override(self):
        fast = execute(spec(policy_name="tree", t_cpu=5.0))
        slow = execute(spec(policy_name="tree", t_cpu=640.0))
        assert fast.elapsed_time < slow.elapsed_time

    def test_t_disk_override(self):
        fast = execute(spec(t_disk=1.0))
        slow = execute(spec(t_disk=150.0))
        assert fast.elapsed_time < slow.elapsed_time

    def test_overrides_default_to_paper_params(self):
        from repro.params import PAPER_PARAMS

        params = spec().params()
        assert params == PAPER_PARAMS
        assert spec(t_disk=10.0).params().t_disk == 10.0

    def test_cacheable_only_for_synthetic_names(self):
        assert spec().cacheable
        assert not spec(trace_name="/tmp/some.trace").cacheable


class TestRunBatch:
    def test_serial_order_preserved(self):
        specs = [spec(cache_size=c) for c in (32, 64, 128)]
        results = run_batch(specs)
        assert [r.extra["cache_size"] for r in results] == [32, 64, 128]

    def test_deterministic_across_modes(self):
        specs = [spec(policy_name="tree", cache_size=c) for c in (32, 64)]
        serial = run_batch(specs, max_workers=1)
        parallel = run_batch(specs, max_workers=2)
        assert [r.misses for r in serial] == [r.misses for r in parallel]
        assert [r.prefetches_issued for r in serial] == [
            r.prefetches_issued for r in parallel
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_batch([spec()], max_workers=0)

    def test_empty_batch(self):
        assert run_batch([]) == []
