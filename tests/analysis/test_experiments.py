"""Smoke + shape tests for the per-figure experiment harnesses.

Runs the whole experiment battery on a deliberately tiny configuration so
the suite stays fast; the paper-scale numbers come from ``benchmarks/``.
"""

import pytest

from repro.analysis import experiments as ex
from repro.analysis.runner import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        num_references=4000, seed=3, cache_sizes=(64, 256)
    )


class TestHarnessSmoke:
    @pytest.mark.parametrize("runner", ex.ALL_EXPERIMENTS,
                             ids=lambda f: f.__name__)
    def test_runs_and_renders(self, ctx, runner):
        result = runner(ctx)
        assert result.exp_id
        assert result.title
        assert result.paper_expectation
        assert isinstance(result.text, str) and result.text
        assert result.data


class TestArtifactShapes:
    def test_table1_rows(self, ctx):
        res = ex.run_table1(ctx)
        assert len(res.data["rows"]) == 4

    def test_fig6_all_policies_per_trace(self, ctx):
        res = ex.run_fig6(ctx)
        for trace in ("cello", "snake", "cad", "sitar"):
            assert set(res.data[trace]) == set(ex.FIG6_POLICIES)
            assert all(len(v) == 2 for v in res.data[trace].values())
        assert "max_reduction_vs_no_prefetch_pct" in res.data

    def test_fig13_budget_axis(self, ctx):
        res = ex.run_fig13(ctx, cache_sizes=(64,))
        assert res.data["budgets"][-1] == "unbounded"
        ratios = res.data["series"]["cache_64"]
        assert all(r >= 0.0 for r in ratios)

    def test_table2_values_in_range(self, ctx):
        res = ex.run_table2(ctx, cache_size=64)
        assert all(0.0 <= v <= 100.0 for v in res.data.values())

    def test_table3_both_columns(self, ctx):
        res = ex.run_table3(ctx, cache_size=64)
        for trace, cols in res.data.items():
            assert cols["nonroot"] >= cols["all_nodes"] - 1e-9

    def test_table4_best_not_worse_than_worst(self, ctx):
        res = ex.run_table4(ctx, cache_size=64)
        for trace, d in res.data.items():
            assert d["best"][1] <= d["worst"][1]
            assert d["difference_pct"] >= 0.0

    def test_fig15_oracle_no_worse_than_tree(self, ctx):
        res = ex.run_fig15(ctx)
        for trace, series in res.data.items():
            for oracle, tree in zip(series["perfect-selector"], series["tree"]):
                assert oracle <= tree + 5.0  # small-slack: tiny traces are noisy

    def test_memoisation_across_experiments(self, ctx):
        """Figures 7-10 reuse the tree sweep: re-running is instant/cached."""
        before = len(ctx.scheduler)
        executed_before = ctx.scheduler.counters.executed
        ex.run_fig7(ctx)
        ex.run_fig8(ctx)
        # Everything already memoised by earlier tests: no new results, no
        # new simulations.
        assert len(ctx.scheduler) == before
        assert ctx.scheduler.counters.executed == executed_before


class TestJsonExport:
    def test_to_json_roundtrip(self, ctx):
        import json

        res = ex.run_table2(ctx, cache_size=64)
        payload = json.loads(res.to_json())
        assert payload["exp_id"] == "table2"
        assert set(payload["data"]) == {"cello", "snake", "cad", "sitar"}


class TestChartRendering:
    def test_fig6_includes_ascii_chart(self, ctx):
        res = ex.run_fig6(ctx)
        # The chart block: an axis rule and a legend with series glyphs.
        assert "+----" in res.text
        assert "o=no-prefetch" in res.text
