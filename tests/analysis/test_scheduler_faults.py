"""Scheduler fault tolerance: worker crashes, hangs, and the retry pass.

The stand-in task functions live at module level so the process pool can
pickle them by reference; "fail exactly once" is coordinated through a
marker file whose path rides in the ``REPRO_TEST_FAULT_MARKER``
environment variable (fork-inherited by workers).
"""

import os
import time

import pytest

from repro.analysis.scheduler import RunSpec, Scheduler, SchedulerError, execute

_MARKER_ENV = "REPRO_TEST_FAULT_MARKER"


def spec(**overrides):
    base = dict(
        trace_name="cad",
        policy_name="no-prefetch",
        cache_size=64,
        num_references=300,
        seed=3,
    )
    base.update(overrides)
    return RunSpec(**base)


def _marker_absent_then_created():
    """True exactly once per marker file (the first caller wins)."""
    marker = os.environ[_MARKER_ENV]
    if os.path.exists(marker):
        return False
    with open(marker, "w"):
        pass
    return True


def _crash_once(run_spec):
    if _marker_absent_then_created():
        os._exit(17)  # simulate a segfaulting worker
    return execute(run_spec)


def _hang_once(run_spec):
    if _marker_absent_then_created():
        time.sleep(300.0)
    return execute(run_spec)


def _always_crash(run_spec):
    os._exit(17)


def _always_hang(run_spec):
    time.sleep(300.0)


@pytest.fixture
def marker(tmp_path, monkeypatch):
    path = tmp_path / "fault-already-fired"
    monkeypatch.setenv(_MARKER_ENV, str(path))
    return path


def record_sans_walltime(stats):
    record = stats.to_record()
    record["extra"] = {
        k: v for k, v in record["extra"].items() if k != "wall_time_s"
    }
    return record


class TestWorkerCrash:
    def test_one_crash_poisons_nothing(self, marker):
        """A worker that dies mid-batch costs a retry, not the batch."""
        specs = [spec(seed=s) for s in (1, 2, 3, 4)]
        sch = Scheduler(max_workers=2, task=_crash_once)
        results = sch.run_all(specs)
        want = [execute(s) for s in specs]
        for got, expected in zip(results, want):
            assert record_sans_walltime(got) == record_sans_walltime(expected)
        assert sch.counters.retried >= 1
        assert sch.counters.executed == len(specs)

    def test_persistent_crash_is_a_scheduler_error(self):
        specs = [spec(seed=s) for s in (1, 2)]
        sch = Scheduler(max_workers=2, task=_always_crash)
        with pytest.raises(SchedulerError, match="crashed twice"):
            sch.run_all(specs)


class TestRunTimeout:
    def test_hung_worker_is_terminated_and_retried(self, marker):
        specs = [spec(seed=s) for s in (1, 2, 3)]
        sch = Scheduler(max_workers=2, task=_hang_once, run_timeout_s=1.5)
        started = time.monotonic()
        results = sch.run_all(specs)
        elapsed = time.monotonic() - started
        want = [execute(s) for s in specs]
        for got, expected in zip(results, want):
            assert record_sans_walltime(got) == record_sans_walltime(expected)
        assert sch.counters.retried >= 1
        # one timeout plus retries, not 300 s of sleeping
        assert elapsed < 30.0

    def test_persistent_hang_is_a_scheduler_error(self):
        specs = [spec(seed=s) for s in (1, 2)]
        sch = Scheduler(
            max_workers=2, task=_always_hang, run_timeout_s=0.5
        )
        with pytest.raises(SchedulerError, match="timed out twice"):
            sch.run_all(specs)

    def test_run_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="run_timeout_s"):
            Scheduler(run_timeout_s=0.0)


class TestCounters:
    def test_retried_is_reported(self, marker):
        sch = Scheduler(max_workers=2, task=_crash_once)
        sch.run_all([spec(seed=s) for s in (1, 2)])
        assert sch.counters.as_dict()["retried"] >= 1
        assert "retried=" in sch.counters.summary()

    def test_fault_free_batch_never_retries(self):
        sch = Scheduler(max_workers=2)
        sch.run_all([spec(seed=s) for s in (1, 2)])
        assert sch.counters.retried == 0
