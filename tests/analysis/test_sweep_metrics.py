"""Unit tests for sweeps, cross-run metrics, and the memoised runner."""

import pytest

from repro.analysis.metrics import (
    additivity_gap,
    max_miss_reduction,
    miss_reduction,
    reduction_series,
)
from repro.analysis.runner import ExperimentContext
from repro.analysis.sweep import (
    cache_size_sweep,
    parameter_sweep,
    tcpu_sweep,
    tree_nodes_sweep,
)
from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.traces.base import Trace


def tiny_trace():
    pattern = list(range(60))
    return Trace(name="tiny", blocks=pattern * 10)


class TestSweeps:
    def test_cache_size_sweep(self):
        res = cache_size_sweep(
            PAPER_PARAMS,
            lambda: make_policy("no-prefetch"),
            tiny_trace(),
            cache_sizes=(8, 16, 32),
        )
        assert res.x_values == [8, 16, 32]
        misses = res.metric("miss_rate")
        assert len(misses) == 3
        # LRU miss rate is non-increasing in cache size for this workload.
        assert misses[0] >= misses[-1]

    def test_metric_from_extra(self):
        res = cache_size_sweep(
            PAPER_PARAMS, lambda: make_policy("tree"), tiny_trace(),
            cache_sizes=(8,),
        )
        assert res.metric("tree_nodes")[0] > 0
        with pytest.raises(KeyError):
            res.metric("not_a_metric")

    def test_at(self):
        res = cache_size_sweep(
            PAPER_PARAMS, lambda: make_policy("no-prefetch"), tiny_trace(),
            cache_sizes=(8, 16),
        )
        assert res.at(16) is res.runs[1]

    def test_tcpu_sweep(self):
        res = tcpu_sweep(
            PAPER_PARAMS, lambda: make_policy("tree"), tiny_trace(),
            cache_size=16, tcpu_values=(20.0, 640.0),
        )
        assert res.x_values == [20.0, 640.0]
        assert all(r.accesses == 600 for r in res.runs)

    def test_tree_nodes_sweep(self):
        res = tree_nodes_sweep(
            PAPER_PARAMS,
            lambda budget: make_policy("tree", max_tree_nodes=budget),
            tiny_trace(),
            cache_size=16,
            node_budgets=(16, None),
        )
        assert res.runs[0].extra["tree_nodes"] <= 16
        assert res.runs[1].extra["tree_nodes"] > 16

    def test_parameter_sweep(self):
        res = parameter_sweep(
            PAPER_PARAMS,
            lambda t: make_policy("tree-threshold", threshold=t),
            tiny_trace(),
            values=(0.05, 0.5),
            cache_size=16,
            x_name="threshold",
        )
        assert res.x_name == "threshold"
        assert [r.extra["threshold"] for r in res.runs] == [0.05, 0.5]


class TestMetrics:
    def test_miss_reduction(self):
        assert miss_reduction(50.0, 25.0) == pytest.approx(50.0)
        assert miss_reduction(0.0, 10.0) == 0.0
        assert miss_reduction(40.0, 50.0) == pytest.approx(-25.0)

    def _sweeps(self):
        trace = tiny_trace()
        sizes = (8, 32)
        mk = lambda name: cache_size_sweep(
            PAPER_PARAMS, lambda: make_policy(name), trace, cache_sizes=sizes
        )
        return mk("no-prefetch"), mk("tree"), mk("next-limit"), mk("tree-next-limit")

    def test_max_miss_reduction(self):
        base, tree, nl, _ = self._sweeps()
        red = max_miss_reduction(base, tree)
        assert -100.0 <= red <= 100.0

    def test_reduction_series_shape(self):
        base, tree, _, _ = self._sweeps()
        series = reduction_series(base, tree)
        assert len(series["reduction_pct"]) == 2

    def test_additivity_gap_length(self):
        base, tree, nl, both = self._sweeps()
        gaps = additivity_gap(base, tree, nl, both)
        assert len(gaps) == 2

    def test_mismatched_sweeps_rejected(self):
        base, tree, _, _ = self._sweeps()
        tree.x_values = [1, 2]
        with pytest.raises(ValueError):
            max_miss_reduction(base, tree)


class TestRunner:
    def test_trace_memoised(self):
        ctx = ExperimentContext(num_references=500)
        assert ctx.trace("cad") is ctx.trace("cad")

    def test_run_memoised(self):
        ctx = ExperimentContext(num_references=500)
        a = ctx.run("cad", "no-prefetch", 16)
        b = ctx.run("cad", "no-prefetch", 16)
        assert a is b
        c = ctx.run("cad", "no-prefetch", 32)
        assert c is not a

    def test_policy_kwargs_distinguish_runs(self):
        ctx = ExperimentContext(num_references=500)
        a = ctx.run("cad", "tree-threshold", 16, policy_kwargs={"threshold": 0.1})
        b = ctx.run("cad", "tree-threshold", 16, policy_kwargs={"threshold": 0.3})
        assert a is not b

    def test_tcpu_distinguishes_runs(self):
        ctx = ExperimentContext(num_references=500)
        a = ctx.run("cad", "tree", 16, t_cpu=20.0)
        b = ctx.run("cad", "tree", 16, t_cpu=640.0)
        assert a is not b

    def test_sweep_uses_context_sizes(self):
        ctx = ExperimentContext(num_references=300, cache_sizes=(8, 16))
        runs = ctx.sweep("cad", "no-prefetch")
        assert len(runs) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentContext(num_references=0)


class TestDefaultContext:
    def test_singleton_and_conflict(self):
        import repro.analysis.runner as runner_mod

        # Isolate from any earlier initialisation.
        old = runner_mod._default_context
        runner_mod._default_context = None
        try:
            ctx = runner_mod.default_context(num_references=1000)
            assert runner_mod.default_context() is ctx
            assert runner_mod.default_context(num_references=1000) is ctx
            with pytest.raises(RuntimeError):
                runner_mod.default_context(num_references=2000)
        finally:
            runner_mod._default_context = old

    def test_seed_conflict_detected_without_refs(self):
        """A differing seed raises even when num_references is left unset.

        The old guard only compared seeds inside the ``num_references is
        not None`` branch, so ``default_context(seed=7)`` silently handed
        back a context built with another seed.
        """
        import repro.analysis.runner as runner_mod

        old = runner_mod._default_context
        runner_mod._default_context = None
        try:
            ctx = runner_mod.default_context(num_references=1000, seed=3)
            assert runner_mod.default_context(seed=3) is ctx
            with pytest.raises(RuntimeError):
                runner_mod.default_context(seed=7)
        finally:
            runner_mod._default_context = old
