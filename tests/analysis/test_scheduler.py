"""Tests for the spec-driven scheduler: dedup, two-tier cache, parity."""

import pytest

from repro.analysis.scheduler import RunSpec, Scheduler, spec_hash
from repro.store.codec import SnapshotCorruptError
from repro.traces import io as trace_io
from repro.traces.synthetic import make_trace


def spec(**overrides):
    base = dict(
        trace_name="cad",
        policy_name="no-prefetch",
        cache_size=64,
        num_references=1500,
        seed=3,
    )
    base.update(overrides)
    return RunSpec(**base)


def grid():
    """A small trace x policy x cache-size grid (8 distinct specs)."""
    return [
        spec(trace_name=trace, policy_name=policy, cache_size=size)
        for trace in ("cad", "sitar")
        for policy in ("no-prefetch", "tree")
        for size in (32, 64)
    ]


def record_sans_walltime(stats):
    """to_record() minus the one legitimately nondeterministic field."""
    record = stats.to_record()
    record["extra"] = {
        k: v for k, v in record["extra"].items() if k != "wall_time_s"
    }
    return record


class TestSerialParallelParity:
    def test_bit_identical_in_input_order(self):
        specs = grid()
        serial = Scheduler(max_workers=1).run_all(specs)
        parallel = Scheduler(max_workers=2).run_all(specs)
        assert len(serial) == len(parallel) == len(specs)
        for sp, a, b in zip(specs, serial, parallel):
            assert a.extra["spec"] == sp.label()  # input order preserved
            assert record_sans_walltime(a) == record_sans_walltime(b)

    def test_wall_time_recorded(self):
        stats = Scheduler().run(spec())
        assert stats.extra["wall_time_s"] > 0.0


class TestDedupAndMemo:
    def test_duplicate_specs_simulate_once(self):
        sch = Scheduler()
        results = sch.run_all([spec(), spec(), spec()])
        assert sch.counters.executed == 1
        assert sch.counters.deduped == 2
        assert results[0] is results[1] is results[2]

    def test_memo_across_batches(self):
        sch = Scheduler()
        first = sch.run(spec())
        again = sch.run(spec())
        assert again is first
        assert sch.counters.executed == 1
        assert sch.counters.memo_hits == 1
        assert len(sch) == 1

    def test_distinct_specs_all_execute(self):
        sch = Scheduler()
        sch.run_all(grid())
        assert sch.counters.executed == 8
        assert sch.counters.memo_hits == 0

    def test_empty_batch(self):
        assert Scheduler().run_all([]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Scheduler(max_workers=0)


class TestResultCache:
    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        specs = grid()
        cold = Scheduler(max_workers=1, cache_dir=tmp_path)
        cold_results = cold.run_all(specs)
        assert cold.counters.executed == len(specs)
        assert len(cold.store) == len(specs)

        warm = Scheduler(max_workers=2, cache_dir=tmp_path)
        warm_results = warm.run_all(specs)
        assert warm.counters.executed == 0
        assert warm.counters.disk_hits == len(specs)
        # Replayed results are byte-equal records (wall time included: it
        # was persisted with the original run).
        for a, b in zip(cold_results, warm_results):
            assert a.to_record() == b.to_record()

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        sch = Scheduler(max_workers=2, cache_dir=tmp_path)
        sch.run_all(grid())
        replay = Scheduler(max_workers=1, cache_dir=tmp_path)
        replay.run_all(grid())
        assert replay.counters.executed == 0

    def test_corrupt_entry_fails_loudly(self, tmp_path):
        sch = Scheduler(cache_dir=tmp_path)
        sch.run(spec())
        path = sch.store.path_for(spec_hash(spec()))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 4])  # truncate mid-record
        fresh = Scheduler(cache_dir=tmp_path)
        with pytest.raises(SnapshotCorruptError):
            fresh.run(spec())

    def test_file_backed_specs_bypass_disk_cache(self, tmp_path):
        trace_file = tmp_path / "t.trace"
        trace_io.save(make_trace("cad", num_references=800, seed=3), trace_file)
        cache = tmp_path / "cache"
        file_spec = spec(trace_name=str(trace_file))
        assert not file_spec.cacheable

        first = Scheduler(cache_dir=cache)
        first.run(file_spec)
        assert first.counters.executed == 1
        assert len(first.store) == 0  # nothing persisted

        second = Scheduler(cache_dir=cache)
        second.run(file_spec)
        assert second.counters.executed == 1  # no disk replay either
        assert second.counters.disk_hits == 0

    def test_mixed_batch_order_preserved(self, tmp_path):
        specs = grid()
        Scheduler(cache_dir=tmp_path).run_all(specs[::2])  # prime half
        sch = Scheduler(cache_dir=tmp_path)
        results = sch.run_all(specs)
        assert sch.counters.disk_hits == len(specs) // 2
        assert sch.counters.executed == len(specs) - len(specs) // 2
        assert [r.extra["spec"] for r in results] == [s.label() for s in specs]


class TestRunBatchWrapper:
    def test_run_batch_through_scheduler(self, tmp_path):
        from repro.analysis.scheduler import run_batch

        specs = [spec(cache_size=c) for c in (32, 64, 128)]
        results = run_batch(specs, cache_dir=tmp_path)
        assert [r.extra["cache_size"] for r in results] == [32, 64, 128]
        # The persisted results replay in a fresh batch.
        replay = Scheduler(cache_dir=tmp_path)
        replay.run_all(specs)
        assert replay.counters.executed == 0
