"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import GLYPHS, render_chart


def lines_of(chart):
    return chart.splitlines()


class TestRenderChart:
    def test_basic_structure(self):
        chart = render_chart(
            [128, 256, 512],
            {"a": [10.0, 5.0, 1.0], "b": [2.0, 4.0, 8.0]},
            title="demo", height=8,
        )
        lines = lines_of(chart)
        assert lines[0] == "demo"
        # 8 grid rows + axis rule + tick row + legend.
        assert len(lines) == 1 + 8 + 3
        assert "o=a" in lines[-1] and "x=b" in lines[-1]

    def test_extremes_on_scale(self):
        chart = render_chart([1, 2], {"s": [0.0, 100.0]})
        assert "100" in chart
        assert "0" in chart

    def test_monotone_series_orientation(self):
        """A rising series' glyph must appear lower-left to upper-right."""
        chart = render_chart([1, 2, 3], {"up": [0.0, 5.0, 10.0]}, height=6)
        rows = [l for l in lines_of(chart) if "|" in l]
        first_row_with_glyph = next(
            i for i, l in enumerate(rows) if "o" in l
        )
        last_row_with_glyph = max(
            i for i, l in enumerate(rows) if "o" in l
        )
        # Top of the grid (index 0) holds the max -> the last x lands there.
        top = rows[first_row_with_glyph]
        bottom = rows[last_row_with_glyph]
        assert top.rindex("o") > bottom.index("o")

    def test_flat_series_does_not_crash(self):
        chart = render_chart([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
        assert "o" in chart

    def test_x_tick_labels_present(self):
        chart = render_chart([128, 4096], {"s": [1.0, 2.0]})
        assert "128" in chart and "4096" in chart

    def test_collisions_keep_first_series(self):
        chart = render_chart([1, 2], {"a": [1.0, 2.0], "b": [1.0, 2.0]})
        # Identical series: the first one's glyph owns the sample cells.
        grid_rows = [l for l in lines_of(chart) if "|" in l]
        body = "\n".join(grid_rows)
        assert "o" in body
        assert "x" not in body

    def test_validation(self):
        with pytest.raises(ValueError):
            render_chart([1, 2], {})
        with pytest.raises(ValueError):
            render_chart([1], {"s": [1.0]})
        with pytest.raises(ValueError):
            render_chart([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError):
            render_chart([1, 2], {"s": [1.0, 2.0]}, height=2)
        too_many = {f"s{i}": [0.0, 1.0] for i in range(len(GLYPHS) + 1)}
        with pytest.raises(ValueError):
            render_chart([1, 2], too_many)
