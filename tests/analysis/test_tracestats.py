"""Tests for the trace characterisation toolkit."""

import pytest

from repro.analysis.tracestats import (
    characterise,
    first_access_share,
    predictability,
    reuse_profile,
    sequential_run_lengths,
    sequentiality,
    working_set_curve,
)


class TestSequentiality:
    def test_pure_run(self):
        assert sequentiality(list(range(100))) == 1.0

    def test_no_runs(self):
        assert sequentiality([5, 1, 9, 2]) == 0.0

    def test_run_lengths(self):
        blocks = [1, 2, 3, 10, 11, 50]
        assert sequential_run_lengths(blocks) == [3, 2, 1]

    def test_run_lengths_empty(self):
        assert sequential_run_lengths([]) == []

    def test_single(self):
        assert sequential_run_lengths([7]) == [1]
        assert sequentiality([7]) == 0.0


class TestFirstAccessShare:
    def test_all_cold(self):
        assert first_access_share([1, 2, 3]) == 1.0

    def test_half_reused(self):
        assert first_access_share([1, 2, 1, 2]) == 0.5

    def test_empty(self):
        assert first_access_share([]) == 0.0


class TestReuseProfile:
    def test_hit_curve_monotone(self):
        blocks = [i % 300 for i in range(3000)]
        profile = reuse_profile(blocks, max_depth=2048)
        curve = profile["hit_rate_by_cache"]
        values = [curve[n] for n in sorted(curve)]
        assert values == sorted(values)

    def test_cold_share(self):
        profile = reuse_profile([1, 2, 3, 1, 2, 3], max_depth=128)
        assert profile["cold_share"] == pytest.approx(0.5)


class TestPredictability:
    def test_cycle_highly_predictable(self):
        stats = predictability([1, 2, 3, 4] * 100)
        assert stats["prediction_accuracy"] > 0.6
        assert stats["tree_nodes"] > 0

    def test_keys(self):
        stats = predictability([1, 2, 3])
        assert set(stats) == {
            "prediction_accuracy", "lvc_repeat_rate",
            "lvc_repeat_rate_nonroot", "tree_nodes",
        }


class TestWorkingSet:
    def test_small_trace_uses_all(self):
        ws = working_set_curve([1, 2, 3], windows=(100,))
        assert ws[100] == 3.0

    def test_windowed_mean(self):
        blocks = [i % 10 for i in range(1000)]
        ws = working_set_curve(blocks, windows=(100,))
        assert ws[100] == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            working_set_curve([1], windows=(0,))


class TestCharacterise:
    def test_full_report(self):
        blocks = list(range(50)) * 4
        report = characterise(blocks, max_depth=512)
        assert report["references"] == 200
        assert report["unique_blocks"] == 50
        assert report["sequentiality"] > 0.9
        assert 0.0 <= report["first_access_share"] <= 1.0
        assert "hit_rate_by_cache" in report
        assert "prediction_accuracy" in report

    def test_distinguishes_workload_shapes(self):
        """CAD-like (no runs, repetitive) vs sitar-like (sequential)."""
        from repro.traces.synthetic import make_trace

        cad = characterise(make_trace("cad", num_references=5000).as_list(),
                           max_depth=512)
        sitar = characterise(
            make_trace("sitar", num_references=5000).as_list(), max_depth=512
        )
        assert sitar["sequentiality"] > cad["sequentiality"] + 0.3
        assert sitar["mean_run_length"] > cad["mean_run_length"]
