"""Unit tests for the ASCII table/series renderers."""

import pytest

from repro.analysis.tables import (
    format_value,
    render_dict,
    render_series,
    render_table,
)


class TestFormatValue:
    def test_float_decimals(self):
        assert format_value(3.14159, 2) == "3.14"

    def test_bool_not_floatified(self):
        assert format_value(True) == "True"

    def test_none_dash(self):
        assert format_value(None) == "-"

    def test_int_passthrough(self):
        assert format_value(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_values_present(self):
        out = render_table(["x", "y"], [[1.5, "hi"]])
        assert "1.50" in out and "hi" in out


class TestRenderSeries:
    def test_columns_per_series(self):
        out = render_series("cache", [128, 256], {"tree": [1.0, 2.0],
                                                  "nl": [3.0, 4.0]})
        header = out.splitlines()[0]
        assert "cache" in header and "tree" in header and "nl" in header

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], {"s": [1.0]})


class TestRenderDict:
    def test_keys_and_values(self):
        out = render_dict({"alpha": 0.5, "n": 10}, title="Config")
        assert "Config" in out
        assert "alpha" in out and "0.50" in out
        assert "n" in out and "10" in out

    def test_empty(self):
        assert render_dict({}) == ""
