"""Profiling hooks: guarded cost, stage math, engine integration."""

import pytest

from repro.obs import profile
from repro.service.session import PrefetchSession
from repro.traces.synthetic import make_trace


@pytest.fixture(autouse=True)
def _clean_profile_state():
    profile.disable()
    profile.reset()
    yield
    profile.disable()
    profile.reset()


class TestStageMath:
    def test_add_accumulates(self):
        profile.enable()
        profile.add("x.y", 0.002)
        profile.add("x.y", 0.004)
        profile.add("x.y", 0.003)
        report = profile.report()["x.y"]
        assert report["calls"] == 3
        assert abs(report["total_s"] - 0.009) < 1e-9
        assert abs(report["avg_us"] - 3000.0) < 0.01
        assert abs(report["max_us"] - 4000.0) < 0.01

    def test_reset_drops_stages_keeps_guard(self):
        profile.enable()
        profile.add("x.y", 0.001)
        profile.reset()
        assert profile.report() == {}
        assert profile.ENABLED  # reset does not flip the guard

    def test_report_is_a_snapshot(self):
        profile.enable()
        profile.add("x.y", 0.001)
        snapshot = profile.report()
        profile.add("x.y", 0.001)
        assert snapshot["x.y"]["calls"] == 1


class TestFormatReport:
    def test_empty_report_says_so(self):
        assert "no stages recorded" in profile.format_report()

    def test_table_orders_by_total_and_includes_stages(self):
        profile.enable()
        profile.add("engine.step", 0.5)
        profile.add("engine.tree_walk", 0.1)
        text = profile.format_report("serve profile")
        lines = text.split("\n")
        assert lines[0] == "serve profile: per-stage breakdown"
        assert lines.index(
            next(line for line in lines if "engine.step" in line)
        ) < lines.index(
            next(line for line in lines if "engine.tree_walk" in line)
        )


class TestEngineIntegration:
    def _run(self, refs=40):
        blocks = make_trace("cad", num_references=refs, seed=1).as_list()
        session = PrefetchSession(policy="tree", cache_size=64)
        advice = [session.observe(block) for block in blocks]
        return blocks, advice

    def test_disabled_guard_records_nothing(self):
        self._run()
        assert profile.report() == {}

    def test_enabled_guard_times_every_engine_stage(self):
        profile.enable()
        blocks, _ = self._run()
        report = profile.report()
        for stage in (
            "engine.step", "engine.tree_walk", "engine.candidate_selection"
        ):
            assert report[stage]["calls"] == len(blocks), stage
        # step encloses the other stages
        assert report["engine.step"]["total_s"] >= (
            report["engine.tree_walk"]["total_s"]
        )

    def test_profiling_does_not_perturb_advice(self):
        _, plain = self._run()
        profile.enable()
        _, profiled = self._run()
        assert [a.as_dict() for a in plain] == [
            a.as_dict() for a in profiled
        ]
