"""``repro top`` rendering: bare-server and fleet frames, rates, liveness."""

from repro.obs.top import render_top, run_top
from repro.service.server import BackgroundServer


def _server_stats(advice=120, uptime=61.0):
    return {
        "server": "repro.service",
        "worker": "w0",
        "pid": 4242,
        "proto_version": 3,
        "uptime_s": uptime,
        "live_sessions": 5,
        "evicted_sessions": 1,
        "model_bytes": 2048,
        "brownout_level": 2,
        "inflight": 3,
        "metrics": {
            "advice_issued": advice,
            "advice_accuracy": 0.42,
            "errors": 1,
            "overload_rejections": 7,
            "tenants_rejected": 0,
            "command_latency": {
                "observe": {"count": advice, "p50_ms": 0.21, "p99_ms": 1.5},
            },
        },
        "tenants": {"acme": {"sessions": 2, "model_bytes": 1024}},
    }


def _fleet_stats():
    return {
        "server": "repro.gateway",
        "pid": 999,
        "proto_version": 3,
        "uptime_s": 10.0,
        "workers": 2,
        "fleet": {
            "advice_issued": 300,
            "advice_accuracy": None,
            "command_latency": {},
        },
        "gateway": {
            "failovers_resumed": 1,
            "failovers_degraded": 0,
            "sessions_lost": 0,
            "breakers_opened": 2,
            "overload_rejections": 5,
        },
        "per_worker": {
            "w0": {"live_sessions": 4, "advice_issued": 200, "errors": 0},
            "w1": None,  # unreachable
        },
    }


class TestServerFrame:
    def test_header_and_gauges(self):
        frame = render_top(_server_stats())
        assert "pid=4242" in frame
        assert "proto=v3" in frame
        assert "up=61s" in frame
        assert "worker=w0" in frame
        assert "brownout=2" in frame
        assert "inflight=3" in frame
        assert "overload_rejections=7" in frame
        assert "accuracy=42.0%" in frame
        assert "p50=0.21ms" in frame
        assert "tenant acme" in frame

    def test_first_frame_has_no_rates(self):
        assert "(-)" in render_top(_server_stats())

    def test_rates_come_from_counter_deltas(self):
        prev = _server_stats(advice=100)
        frame = render_top(
            _server_stats(advice=150), prev=prev, interval_s=2.0
        )
        assert "(25.0/s)" in frame


class TestFleetFrame:
    def test_fleet_header_and_worker_table(self):
        frame = render_top(_fleet_stats())
        assert "workers=2" in frame
        assert "failovers=1+0d" in frame
        assert "breakers=2" in frame
        assert "shed=5" in frame
        assert "w0" in frame
        assert "(unreachable)" in frame


class TestLive:
    def test_run_top_polls_a_real_server(self):
        frames = []
        with BackgroundServer() as server:
            run_top(
                "127.0.0.1", server.port,
                interval_s=0.01, iterations=2, echo=frames.append,
            )
        # two frames, each followed by a blank separator line
        assert frames.count("") == 2
        rendered = [frame for frame in frames if frame]
        assert len(rendered) == 2
        assert all("proto=v3" in frame for frame in rendered)
        assert all("pid=" in frame for frame in rendered)
