"""Tracer core: deterministic ids, sampling, buffering, NDJSON fidelity.

Every line a tracer writes must parse back to exactly what was recorded
— the formatter's f-string fast path and its ``json`` fallback have to
be indistinguishable to a reader — and the accounting (recorded /
flushed / dropped) must add up no matter how the buffer cycled.
"""

import json

import pytest

from repro.obs.trace import (
    Tracer, derive_trace_id, read_spans, trace_fraction,
)


class TestDeterminism:
    def test_trace_id_is_a_pure_function_of_seed_and_key(self):
        assert derive_trace_id(7, "c0:s0") == derive_trace_id(7, "c0:s0")
        assert derive_trace_id(7, "c0:s0") != derive_trace_id(8, "c0:s0")
        assert derive_trace_id(7, "c0:s0") != derive_trace_id(7, "c0:s1")

    def test_trace_id_shape(self):
        trace_id = derive_trace_id(0, "anything")
        assert len(trace_id) == 16
        int(trace_id, 16)  # hex or raise

    def test_fraction_is_deterministic_and_bounded(self):
        ids = [derive_trace_id(1, f"k{i}") for i in range(200)]
        for trace_id in ids:
            fraction = trace_fraction(1, trace_id)
            assert 0.0 <= fraction < 1.0
            assert fraction == trace_fraction(1, trace_id)

    def test_fraction_spreads(self):
        """Head sampling at rate r should keep roughly r of the ids."""
        ids = [derive_trace_id(2, f"k{i}") for i in range(1000)]
        kept = sum(1 for t in ids if trace_fraction(2, t) < 0.25)
        assert 150 < kept < 350


class TestSampling:
    def test_sample_one_keeps_everything(self):
        tracer = Tracer("t", sample=1.0, seed=3)
        assert all(
            tracer.sampled(tracer.new_trace_id(f"k{i}")) for i in range(50)
        )

    def test_sample_zero_keeps_nothing(self):
        tracer = Tracer("t", sample=0.0, seed=3)
        assert not any(
            tracer.sampled(tracer.new_trace_id(f"k{i}")) for i in range(50)
        )

    def test_partial_sampling_agrees_with_fraction(self):
        tracer = Tracer("t", sample=0.5, seed=9)
        for i in range(100):
            trace_id = tracer.new_trace_id(f"k{i}")
            assert tracer.sampled(trace_id) == (
                trace_fraction(9, trace_id) < 0.5
            )

    def test_every_hop_agrees_without_coordination(self):
        """Two tracers with the same seed make identical keep decisions."""
        a = Tracer("client", sample=0.3, seed=5)
        b = Tracer("gateway", sample=0.3, seed=5)
        ids = [a.new_trace_id(f"s{i}") for i in range(100)]
        assert [a.sampled(t) for t in ids] == [b.sampled(t) for t in ids]

    @pytest.mark.parametrize("sample", [-0.1, 1.5])
    def test_bad_sample_rejected(self, sample):
        with pytest.raises(ValueError):
            Tracer("t", sample=sample)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer("t", capacity=0)


class TestRingMode:
    """No trace_dir: a bounded ring that drops the oldest and counts it."""

    def test_drops_oldest_and_counts(self):
        tracer = Tracer("ring", capacity=4)
        for i in range(10):
            tracer.record("tid", f"stage.{i}", float(i), 0.001)
        assert tracer.spans_recorded == 10
        assert tracer.spans_dropped == 6
        spans = tracer.spans()
        assert len(spans) == 4
        assert [s["span"] for s in spans] == [
            "stage.6", "stage.7", "stage.8", "stage.9"
        ]
        # seq is global, not per-buffer: survivors keep their stamps
        assert [s["seq"] for s in spans] == [7, 8, 9, 10]

    def test_summary_counts_buffered_spans(self):
        tracer = Tracer("ring", capacity=8)
        for _ in range(3):
            tracer.record("tid", "a.b", 0.0, 0.0)
        summary = tracer.summary()
        assert summary["by_span"] == {"a.b": 3}
        assert summary["spans_recorded"] == 3
        assert summary["spans_flushed"] == 0


class TestFlush:
    def test_every_span_lands_in_seq_order(self, tmp_path):
        """More spans than capacity forces mid-run background flushes;
        nothing may be lost or reordered across batch boundaries."""
        tracer = Tracer(
            "w0", trace_dir=str(tmp_path), capacity=128, sample=1.0
        )
        total = 1000
        for i in range(total):
            tracer.record("tid", "worker.step", float(i), 0.0001, i=i)
        tracer.close()
        spans = list(read_spans(str(tmp_path / "w0.ndjson")))
        assert len(spans) == total
        assert [s["seq"] for s in spans] == list(range(1, total + 1))
        assert [s["i"] for s in spans] == list(range(total))
        assert tracer.spans_flushed == total
        assert tracer.spans_dropped == 0

    def test_spans_recorded_survives_close(self, tmp_path):
        tracer = Tracer("w0", trace_dir=str(tmp_path))
        tracer.record("tid", "a.b", 0.0, 0.0)
        tracer.close()
        assert tracer.spans_recorded == 1
        tracer.record("tid", "a.b", 0.0, 0.0)
        tracer.close()
        assert tracer.spans_recorded == 2
        assert tracer.spans_flushed == 2

    def test_summary_merges_flushed_and_buffered(self, tmp_path):
        tracer = Tracer("w0", trace_dir=str(tmp_path))
        tracer.record("tid", "a.b", 0.0, 0.0)
        tracer.flush()
        tracer.record("tid", "c.d", 0.0, 0.0)  # still buffered
        summary = tracer.summary()
        assert summary["by_span"] == {"a.b": 1, "c.d": 1}
        tracer.close()


class TestNdjsonFidelity:
    """The fast-path formatter and the json fallback must agree."""

    def _roundtrip(self, tmp_path, *records):
        tracer = Tracer("w0", trace_dir=str(tmp_path), sample=1.0)
        for trace_id, span, fields in records:
            tracer.record(trace_id, span, 1.25, 0.000333, **fields)
        tracer.close()
        lines = (tmp_path / "w0.ndjson").read_text().splitlines()
        assert len(lines) == len(records)
        return [json.loads(line) for line in lines]

    def test_plain_fields(self, tmp_path):
        (got,) = self._roundtrip(
            tmp_path, ("abc123", "worker.open", {"session": "s-1",
                                                 "resumed": 0}),
        )
        assert got["trace"] == "abc123"
        assert got["span"] == "worker.open"
        assert got["session"] == "s-1"
        assert got["resumed"] == 0
        assert got["ts"] == 1.25
        assert got["dur_us"] == 333.0
        assert got["seq"] == 1

    def test_bool_float_and_negative_fields(self, tmp_path):
        (got,) = self._roundtrip(
            tmp_path,
            ("t", "x.y", {"ok": True, "bad": False, "ratio": -0.5}),
        )
        assert got["ok"] is True
        assert got["bad"] is False
        assert got["ratio"] == -0.5

    def test_fields_needing_escapes_fall_back_to_real_json(self, tmp_path):
        (got,) = self._roundtrip(
            tmp_path, ("t", "x.y", {"msg": 'say "hi"\\now'}),
        )
        assert got["msg"] == 'say "hi"\\now'

    def test_exotic_field_values_fall_back(self, tmp_path):
        (got,) = self._roundtrip(
            tmp_path, ("t", "x.y", {"workers": ["w0", "w1"], "none": None}),
        )
        assert got["workers"] == ["w0", "w1"]
        assert got["none"] is None

    def test_hostile_trace_id_off_the_wire(self, tmp_path):
        """Foreign OPENs carry unvalidated trace ids; quoting must hold."""
        (got,) = self._roundtrip(tmp_path, ('evil"\\id', "x.y", {}))
        assert got["trace"] == 'evil"\\id'

    def test_component_is_not_repeated_per_line(self, tmp_path):
        """The component lives in the file name, not in 4096 copies."""
        tracer = Tracer("gateway", trace_dir=str(tmp_path))
        tracer.record("t", "gateway.admission", 0.0, 0.0)
        tracer.close()
        raw = (tmp_path / "gateway.ndjson").read_text()
        assert "component" not in raw
        (span,) = read_spans(str(tmp_path))
        assert span["component"] == "gateway"


class TestReadSpans:
    def test_directory_read_merges_files_with_components(self, tmp_path):
        for component in ("client", "gateway", "w0"):
            tracer = Tracer(component, trace_dir=str(tmp_path))
            tracer.record("shared", f"{component}.stage", 0.0, 0.0)
            tracer.close()
        spans = list(read_spans(str(tmp_path)))
        assert {s["component"] for s in spans} == {"client", "gateway", "w0"}
        assert all(s["trace"] == "shared" for s in spans)

    def test_blank_and_torn_lines_tolerated(self, tmp_path):
        path = tmp_path / "w0.ndjson"
        good = '{"trace":"t","span":"a.b","ts":0,"dur_us":1,"seq":1}'
        path.write_text(f"{good}\n\n{good[:20]}")  # blank + torn tail
        spans = list(read_spans(str(path)))
        assert len(spans) == 1
        assert spans[0]["span"] == "a.b"

    def test_empty_directory_yields_nothing(self, tmp_path):
        assert list(read_spans(str(tmp_path))) == []


class TestSpanTimer:
    def test_timed_context_manager_records_duration(self, tmp_path):
        tracer = Tracer("w0", trace_dir=str(tmp_path), sample=1.0)
        with tracer.timed("tid", "gateway.worker_rpc", worker="w3"):
            sum(range(1000))
        tracer.close()
        (span,) = read_spans(str(tmp_path))
        assert span["span"] == "gateway.worker_rpc"
        assert span["worker"] == "w3"
        assert span["dur_us"] >= 0
