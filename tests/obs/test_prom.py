"""Prometheus text exposition: families, cumulative buckets, escaping.

The renderer's output is consumed by greps in CI and by real scrapers,
so these tests pin the text-format contract: ``# TYPE`` headers,
monotone cumulative ``le`` buckets that end at ``+Inf == count``,
escaped label values, and a trailing newline.
"""

from repro.obs.prom import bucket_upper_s, render_exposition
from repro.service.metrics import ServiceMetrics


def _metrics_state():
    metrics = ServiceMetrics()
    metrics.sessions_opened = 4
    metrics.overload_rejections = 2
    metrics.record_advice("prefetch_hit", 1)
    metrics.record_advice("miss", 0)
    for latency_s in (0.0001, 0.0002, 0.0004, 0.01):
        metrics.record_latency("observe", latency_s)
    metrics.record_latency("open", 0.002)
    metrics.record_tenant("acme", "sessions_opened", 3)
    return metrics.to_state()


def _lines(text):
    assert text.endswith("\n")
    return text[:-1].split("\n")


class TestHistogram:
    def test_bucket_upper_bounds_are_monotone(self):
        uppers = [bucket_upper_s(i) for i in range(40)]
        assert uppers == sorted(uppers)
        assert uppers[0] > 1e-6  # first bound sits above the 1us base

    def test_advice_latency_family(self):
        text = render_exposition(_metrics_state())
        lines = _lines(text)
        assert "# TYPE advice_latency histogram" in lines
        bucket_lines = [
            line for line in lines
            if line.startswith("advice_latency_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert bucket_lines[-1].startswith('advice_latency_bucket{le="+Inf"}')
        assert counts[-1] == 4
        assert "advice_latency_count 4" in lines
        (sum_line,) = [
            line for line in lines if line.startswith("advice_latency_sum ")
        ]
        assert abs(float(sum_line.split(" ")[1]) - 0.0107) < 1e-9

    def test_empty_state_still_exposes_the_family(self):
        lines = _lines(render_exposition(None))
        assert "# TYPE advice_latency histogram" in lines
        assert 'advice_latency_bucket{le="+Inf"} 0' in lines
        assert "advice_latency_count 0" in lines


class TestCountersAndLabels:
    def test_every_counter_is_a_family(self):
        lines = _lines(render_exposition(_metrics_state()))
        assert "# TYPE overload_rejections counter" in lines
        assert "overload_rejections 2" in lines
        assert "sessions_opened 4" in lines

    def test_extra_counters_layer_on(self):
        lines = _lines(render_exposition(
            _metrics_state(),
            extra_counters={"breakers_opened": 7},
        ))
        assert "# TYPE breakers_opened counter" in lines
        assert "breakers_opened 7" in lines

    def test_outcomes_are_labelled(self):
        lines = _lines(render_exposition(_metrics_state()))
        assert 'advice_outcomes{outcome="prefetch_hit"} 1' in lines
        assert 'advice_outcomes{outcome="miss"} 1' in lines

    def test_non_advice_commands_get_call_counters(self):
        lines = _lines(render_exposition(_metrics_state()))
        assert 'command_calls{command="open"} 1' in lines
        assert any(
            line.startswith('command_seconds{command="open"}')
            for line in lines
        )

    def test_tenant_counters_are_labelled(self):
        lines = _lines(render_exposition(_metrics_state()))
        assert (
            'tenant_counter{counter="sessions_opened",tenant="acme"} 3'
            in lines
        )


class TestGauges:
    def test_gauges_group_under_one_type_header(self):
        text = render_exposition(gauges=[
            ("breaker_open", {"worker": "w0"}, 1),
            ("breaker_open", {"worker": "w1"}, 0),
            ("brownout_level", None, 2),
        ])
        lines = _lines(text)
        assert lines.count("# TYPE breaker_open gauge") == 1
        assert 'breaker_open{worker="w0"} 1' in lines
        assert 'breaker_open{worker="w1"} 0' in lines
        assert "brownout_level 2" in lines

    def test_label_values_are_escaped(self):
        text = render_exposition(gauges=[
            ("tenant_model_bytes", {"tenant": 'a"b\\c\nd'}, 5),
        ])
        assert (
            'tenant_model_bytes{tenant="a\\"b\\\\c\\nd"} 5' in text
        )

    def test_float_values_render_exactly(self):
        lines = _lines(render_exposition(gauges=[
            ("uptime_s", None, 12.5),
            ("inflight", None, 3.0),
        ]))
        assert "uptime_s 12.5" in lines
        assert "inflight 3" in lines  # integral floats render as ints
