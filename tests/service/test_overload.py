"""Overload protection units + shed-under-flood fuzz.

Layered like the module itself: pure-logic units (admission guard,
brownout hysteresis, circuit breaker under a fake clock), one event-loop
test for the lag watchdog, and a raw-socket flood mirroring
``test_fuzz.py`` — every flooded OPEN must draw either a clean
``OpenReply`` or a clean ``E_OVERLOAD`` carrying ``retry_after_s``, and
the server must serve normally the moment pressure lifts.
"""

import asyncio
import json
import time

import pytest

from repro.service import protocol
from repro.service.overload import (
    TIER_CAP_PREFETCH,
    TIER_DROP_LOGS,
    TIER_NORMAL,
    TIER_SHED,
    TIER_WIDEN_CHECKPOINTS,
    AdmissionGuard,
    BreakerPolicy,
    BrownoutController,
    CircuitBreaker,
    LoopLagWatchdog,
    OverloadPolicy,
)
from repro.service.server import BackgroundServer, PrefetchService


class TestProtocol:
    def test_overload_error_round_trips_with_retry_hint(self):
        reply = protocol.ErrorReply(
            id=9, error=protocol.E_OVERLOAD,
            message="server overloaded; retry in 0.5s",
            retry_after_s=0.5,
        )
        wire = protocol.encode_reply(reply)
        doc = json.loads(wire)
        assert doc["error"] == "overloaded"
        assert doc["retry_after_s"] == 0.5
        decoded = protocol.decode_reply(wire)
        assert decoded == reply

    def test_retry_hint_is_omitted_when_absent(self):
        reply = protocol.ErrorReply(
            id=1, error=protocol.E_OVERLOAD, message="x"
        )
        doc = json.loads(protocol.encode_reply(reply))
        assert "retry_after_s" not in doc
        assert protocol.decode_reply(
            protocol.encode_reply(reply)
        ).retry_after_s is None


class TestAdmissionGuard:
    def test_no_watermark_never_sheds(self):
        guard = AdmissionGuard()
        for _ in range(100):
            guard.begin()
        assert not guard.shed_open()
        assert guard.peak_inflight == 100

    def test_sheds_at_watermark_and_recovers_below_it(self):
        guard = AdmissionGuard(OverloadPolicy(max_inflight=2))
        assert not guard.shed_open()
        guard.begin()
        assert not guard.shed_open()
        guard.begin()
        assert guard.shed_open()  # at the watermark: shed new OPENs
        guard.end()
        assert not guard.shed_open()

    def test_brownout_shed_tier_overrides_watermark(self):
        guard = AdmissionGuard(OverloadPolicy(max_inflight=1000))
        guard.brownout.level = TIER_SHED
        assert guard.shed_open()

    def test_degradations_follow_the_tier(self):
        policy = OverloadPolicy(prefetch_cap=3, checkpoint_widen=4.0)
        guard = AdmissionGuard(policy)
        assert guard.prefetch_cap is None
        assert not guard.drop_logs
        assert guard.checkpoint_interval(1.0) == 1.0
        guard.brownout.level = TIER_CAP_PREFETCH
        assert guard.prefetch_cap == 3
        guard.brownout.level = TIER_DROP_LOGS
        assert guard.drop_logs
        guard.brownout.level = TIER_WIDEN_CHECKPOINTS
        assert guard.checkpoint_interval(1.0) == 4.0


class TestBrownoutHysteresis:
    POLICY = OverloadPolicy(
        lag_enter_s=0.05, lag_exit_s=0.02,
        enter_consecutive=3, exit_consecutive=4,
    )

    def test_steps_up_only_after_consecutive_hot_samples(self):
        ctl = BrownoutController(self.POLICY)
        assert ctl.observe(0.1) is None
        assert ctl.observe(0.1) is None
        assert ctl.observe(0.1) == TIER_CAP_PREFETCH
        assert ctl.level == TIER_CAP_PREFETCH
        assert ctl.transitions == 1

    def test_cool_sample_resets_the_hot_streak(self):
        ctl = BrownoutController(self.POLICY)
        ctl.observe(0.1)
        ctl.observe(0.1)
        ctl.observe(0.0)  # streak broken
        assert ctl.observe(0.1) is None
        assert ctl.observe(0.1) is None
        assert ctl.observe(0.1) == TIER_CAP_PREFETCH

    def test_dead_band_freezes_both_streaks(self):
        ctl = BrownoutController(self.POLICY)
        ctl.observe(0.1)
        ctl.observe(0.1)
        for _ in range(50):  # between exit and enter: no movement
            assert ctl.observe(0.03) is None
        assert ctl.level == TIER_NORMAL

    def test_steps_down_after_consecutive_cool_samples(self):
        ctl = BrownoutController(self.POLICY)
        for _ in range(3):
            ctl.observe(0.1)
        assert ctl.level == TIER_CAP_PREFETCH
        for _ in range(3):
            assert ctl.observe(0.0) is None
        assert ctl.observe(0.0) == TIER_NORMAL
        assert ctl.level == TIER_NORMAL
        assert ctl.transitions == 2

    def test_level_saturates_at_shed_and_normal(self):
        ctl = BrownoutController(self.POLICY)
        for _ in range(100):
            ctl.observe(0.1)
        assert ctl.level == TIER_SHED
        for _ in range(100):
            ctl.observe(0.0)
        assert ctl.level == TIER_NORMAL


class TestWatchdog:
    def test_watchdog_measures_loop_lag_and_steps_the_guard(self):
        """Block the loop with a synchronous sleep: the probe wakes late,
        the guard's brownout level rises."""
        policy = OverloadPolicy(
            brownout=True, probe_interval_s=0.01,
            lag_enter_s=0.03, lag_exit_s=0.005, enter_consecutive=1,
        )
        guard = AdmissionGuard(policy)
        transitions = []
        watchdog = LoopLagWatchdog(
            guard, on_transition=lambda lvl, lag: transitions.append(lvl)
        )

        async def scenario():
            task = asyncio.create_task(watchdog.run())
            try:
                for _ in range(3):
                    await asyncio.sleep(0)  # let the probe go to sleep
                    time.sleep(0.08)  # hold the loop hostage
                    await asyncio.sleep(0.02)  # let the probe fire
            finally:
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task

        asyncio.run(scenario())
        assert watchdog.probes >= 1
        assert watchdog.last_lag_s >= 0.0
        assert guard.level >= TIER_CAP_PREFETCH
        assert transitions and transitions[0] == TIER_CAP_PREFETCH


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            BreakerPolicy(**kwargs), clock=lambda: clock["now"]
        )
        return breaker, clock

    def test_trips_after_consecutive_failures_only(self):
        breaker, _ = self._breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.record_failure() is True  # third consecutive
        assert breaker.state == "open"
        assert breaker.times_opened == 1

    def test_open_fast_fails_until_cooldown_then_probes_once(self):
        breaker, clock = self._breaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        assert breaker.blocked
        assert not breaker.allow()
        clock["now"] = 4.9
        assert not breaker.allow()
        clock["now"] = 5.0
        assert not breaker.blocked
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe at a time
        assert breaker.record_success() is True
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens_immediately(self):
        breaker, clock = self._breaker(failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure()
        clock["now"] = 1.0
        assert breaker.allow()
        assert breaker.record_failure() is True  # probe failed: reopen
        assert breaker.state == "open"
        assert breaker.opened_at == 1.0
        assert breaker.times_opened == 2
        assert not breaker.allow()

    def test_blocked_consumes_no_probe_slot(self):
        breaker, clock = self._breaker(failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure()
        clock["now"] = 1.0
        for _ in range(10):
            assert not breaker.blocked  # cooled down: placement may retry
        assert breaker.state == "open"  # ...without starting the probe
        assert breaker.allow()
        assert not breaker.allow()


OPEN_LINE = (
    b'{"v": 3, "id": %d, "cmd": "open",'
    b' "policy": "no-prefetch", "cache_size": 8}\n'
)


async def _raw_connect(port):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    hello = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
    assert hello["ok"] and hello["cmd"] == "hello"
    return reader, writer


class TestShedUnderFlood:
    def test_flooded_opens_get_clean_overload_replies(self):
        """Pin the guard at its watermark and flood OPENs: every one is
        refused with a parseable E_OVERLOAD + retry_after_s, nothing
        wedges, and service resumes the moment pressure lifts."""
        server = BackgroundServer(service=PrefetchService(
            identity="w0",
            overload=OverloadPolicy(max_inflight=1, shed_retry_after_s=0.25),
        )).start().wait_ready()
        service = server.service

        async def flood_one(port, request_id):
            reader, writer = await _raw_connect(port)
            try:
                writer.write(OPEN_LINE % request_id)
                await writer.drain()
                return json.loads(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
            finally:
                writer.close()
                await writer.wait_closed()

        async def scenario():
            # Hold the server at the watermark so the flood outcome is
            # deterministic: an int bump is safe across the loop thread.
            service.overload.begin()
            try:
                replies = await asyncio.gather(*[
                    flood_one(server.port, i) for i in range(32)
                ])
            finally:
                service.overload.end()
            # Pressure lifted: a fresh OPEN must succeed on the spot.
            after = await flood_one(server.port, 99)
            return replies, after

        try:
            replies, after = asyncio.run(scenario())
        finally:
            server.stop()

        for reply in replies:
            assert reply["ok"] is False
            assert reply["error"] == protocol.E_OVERLOAD
            assert reply["retry_after_s"] == 0.25
            assert "Traceback" not in reply["message"]
        assert after["ok"] is True and after["cmd"] == "open"
        assert service.metrics.overload_rejections == 32
        assert service.metrics.errors == 0  # backoff, not fault

    def test_shed_spares_resumes_and_admitted_sessions(self):
        """Only brand-new OPENs are sheddable: observes on an admitted
        session flow at full service while the watermark refuses OPENs."""
        service = PrefetchService(
            identity="w0", overload=OverloadPolicy(max_inflight=1)
        )
        service.overload.begin()
        try:
            shed = service.shed_reply(protocol.OpenRequest(id=1))
            assert shed is not None
            assert shed.error == protocol.E_OVERLOAD
            assert shed.retry_after_s == service.overload.policy.shed_retry_after_s
            resume = protocol.OpenRequest(id=2, resume="s-live")
            assert service.shed_reply(resume) is None
            observe = protocol.ObserveRequest(id=3, session="s", block=7)
            assert service.shed_reply(observe) is None
        finally:
            service.overload.end()

    def test_concurrent_open_flood_is_answered_consistently(self):
        """No pinning: under a real race the books must still balance —
        every reply is a clean open or a clean shed, and the shed count
        matches the metric exactly."""
        server = BackgroundServer(service=PrefetchService(
            identity="w0", overload=OverloadPolicy(max_inflight=2),
        )).start().wait_ready()

        async def one(request_id):
            reader, writer = await _raw_connect(server.port)
            try:
                writer.write(OPEN_LINE % request_id)
                await writer.drain()
                return json.loads(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
            finally:
                writer.close()
                await writer.wait_closed()

        async def scenario():
            return await asyncio.gather(*[one(i) for i in range(48)])

        try:
            replies = asyncio.run(scenario())
        finally:
            server.stop()

        accepted = [r for r in replies if r["ok"]]
        rejected = [r for r in replies if not r["ok"]]
        assert len(accepted) + len(rejected) == 48
        for reply in rejected:
            assert reply["error"] == protocol.E_OVERLOAD
            assert reply["retry_after_s"] > 0
        assert (
            server.service.metrics.overload_rejections == len(rejected)
        )
        assert server.service.overload.inflight == 0  # books balanced
