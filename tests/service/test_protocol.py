"""Wire-protocol unit tests: a round trip for every message type."""

import json

import pytest

from repro.service import protocol
from repro.service.protocol import (
    CloseReply,
    CloseRequest,
    ErrorReply,
    HelloReply,
    ObserveReply,
    ObserveRequest,
    OpenReply,
    OpenRequest,
    ProtocolError,
    StatsReply,
    StatsRequest,
    decode_reply,
    decode_request,
    encode_reply,
    encode_request,
)
from repro.service.session import PrefetchAdvice
from repro.sim.engine import PrefetchDecision

ADVICE = PrefetchAdvice(
    block=17, period=3, outcome="miss", stall_ms=0.25,
    prefetch=(PrefetchDecision(18, 0.5, 1, "tree"),
              PrefetchDecision(21, 0.125, 2, "tree")),
    s=1.5,
)

REQUESTS = [
    OpenRequest(id=1, policy="tree", cache_size=512,
                params={"t_cpu": 20.0, "t_disk": 0.1},
                policy_kwargs={"max_tree_nodes": 4096}),
    OpenRequest(id=2),
    ObserveRequest(id=3, session="s1", block=42),
    StatsRequest(id=4, session="s1"),
    CloseRequest(id=5, session="s1"),
]

REPLIES = [
    HelloReply(id=0, max_sessions=64),
    OpenReply(id=1, session="s1", policy="tree", cache_size=512),
    ObserveReply(id=3, session="s1", advice=ADVICE),
    StatsReply(id=4, session="s1", stats={"accesses": 10, "miss_rate": 40.0}),
    CloseReply(id=5, session="s1", stats={"accesses": 10}),
    ErrorReply(id=6, error=protocol.E_UNKNOWN_SESSION, message="nope"),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "request_msg", REQUESTS, ids=lambda r: f"{r.cmd}-{r.id}"
    )
    def test_request_round_trip(self, request_msg):
        assert decode_request(encode_request(request_msg)) == request_msg

    @pytest.mark.parametrize(
        "reply_msg", REPLIES, ids=lambda r: f"{r.cmd}-{r.id}"
    )
    def test_reply_round_trip(self, reply_msg):
        assert decode_reply(encode_reply(reply_msg)) == reply_msg

    def test_one_line_per_message(self):
        for message in REQUESTS:
            encoded = encode_request(message)
            assert encoded.endswith(b"\n")
            assert encoded.count(b"\n") == 1

    def test_wire_is_plain_json_with_version(self):
        obj = json.loads(encode_request(REQUESTS[0]))
        assert obj["v"] == protocol.PROTOCOL_VERSION
        assert obj["cmd"] == "open"
        obj = json.loads(encode_reply(REPLIES[-1]))
        assert obj["ok"] is False


class TestRejects:
    def test_invalid_json(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_request(b"{nope\n")

    def test_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_request(b"[1, 2]\n")

    def test_version_mismatch(self):
        line = json.dumps({"v": 99, "cmd": "open", "id": 1})
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(line)
        assert excinfo.value.code == protocol.E_BAD_VERSION

    def test_missing_version(self):
        line = json.dumps({"cmd": "open", "id": 1})
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_unknown_command(self):
        line = json.dumps({"v": 1, "cmd": "launch", "id": 1})
        with pytest.raises(ProtocolError, match="unknown command"):
            decode_request(line)

    def test_observe_requires_block(self):
        line = json.dumps({"v": 1, "cmd": "observe", "id": 1,
                           "session": "s1"})
        with pytest.raises(ProtocolError, match="observe requires"):
            decode_request(line)

    def test_stats_without_session_is_server_level(self):
        # v3 additive change: a session-less STATS is the server-level
        # probe a fleet supervisor/gateway uses, not a protocol error.
        line = json.dumps({"v": 1, "cmd": "stats", "id": 1})
        request = decode_request(line)
        assert request.session is None

    def test_close_requires_session(self):
        line = json.dumps({"v": 1, "cmd": "close", "id": 1})
        with pytest.raises(ProtocolError, match="close requires"):
            decode_request(line)

    def test_unknown_reply(self):
        line = json.dumps({"v": 1, "cmd": "launch", "id": 1, "ok": True})
        with pytest.raises(ProtocolError, match="unknown reply"):
            decode_reply(line)

    def test_oversized_line(self):
        line = b" " * (protocol.MAX_LINE_BYTES + 1)
        with pytest.raises(ProtocolError, match="MAX_LINE_BYTES"):
            decode_request(line)

    def test_non_integer_id(self):
        line = json.dumps({"v": 1, "cmd": "open", "id": "abc"})
        with pytest.raises(ProtocolError, match="id must be an integer"):
            decode_request(line)
