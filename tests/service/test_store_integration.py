"""Serving from the model store: OPEN model=, checkpoints, protocol v2.

End-to-end through real sockets: a session resumed from a ``session``-kind
registry snapshot must serve the exact advice the original would have, and
a ``model``-kind snapshot must warm-start the requested policy.
"""

import pytest

from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import BackgroundServer, PrefetchService
from repro.service.session import PrefetchSession
from repro.store import (
    ModelStore,
    model_snapshot,
    read_snapshot,
    snapshot_session,
)


def lcg_trace(n, seed=7, universe=200):
    x = seed
    out = []
    for _ in range(n):
        x = (x * 1103515245 + 12345) % (2 ** 31)
        out.append(x % universe)
    return out


REFS = lcg_trace(300)
SPLIT = len(REFS) // 2


@pytest.fixture
def store(tmp_path):
    """A registry holding a half-trained session and its bare model."""
    registry = ModelStore(tmp_path / "models")
    session = PrefetchSession(policy="tree", cache_size=64)
    for block in REFS[:SPLIT]:
        session.observe(block)
    registry.save("resume", snapshot_session(session))
    registry.save("warm", model_snapshot(session.simulator.policy.model()))
    return registry


class TestOpenWithModel:
    def test_session_resume_parity_over_the_wire(self, store):
        continuous = PrefetchSession(policy="tree", cache_size=64)
        want = [continuous.observe(b).as_dict() for b in REFS]

        service = PrefetchService(store=store)
        with BackgroundServer(service=service) as server:
            with ServiceClient.connect(port=server.port) as client:
                session_id = client.open(model="resume")
                got = [client.observe(session_id, b).as_dict()
                       for b in REFS[SPLIT:]]
        assert got == want[SPLIT:]

    def test_model_warm_start(self, store):
        service = PrefetchService(store=store)
        with BackgroundServer(service=service) as server:
            with ServiceClient.connect(port=server.port) as client:
                session_id = client.open(policy="tree", model="warm@1")
                stats = client.stats(session_id)
                assert stats["model_items"] > 0
                assert stats["period"] == 0  # engine state starts cold

    def test_unknown_model_is_clean_error(self, store):
        service = PrefetchService(store=store)
        with BackgroundServer(service=service) as server:
            with ServiceClient.connect(port=server.port) as client:
                with pytest.raises(ServiceError, match="no model named"):
                    client.open(model="missing")
                # the connection survives the failed OPEN
                assert client.open() is not None

    def test_model_without_store_is_clean_error(self):
        with BackgroundServer() as server:
            with ServiceClient.connect(port=server.port) as client:
                with pytest.raises(ServiceError, match="model store"):
                    client.open(model="resume")

    def test_default_model_applies_to_bare_open(self, store):
        continuous = PrefetchSession(policy="tree", cache_size=64)
        want = [continuous.observe(b).as_dict() for b in REFS]

        service = PrefetchService(store=store, default_model="resume")
        with BackgroundServer(service=service) as server:
            with ServiceClient.connect(port=server.port) as client:
                session_id = client.open()
                got = [client.observe(session_id, b).as_dict()
                       for b in REFS[SPLIT:]]
        assert got == want[SPLIT:]


class TestCheckpointing:
    def test_checkpoint_writes_resumable_sessions(self, store, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        service = PrefetchService(store=store)
        with BackgroundServer(service=service) as server:
            with ServiceClient.connect(port=server.port) as client:
                session_id = client.open(model="resume")
                for block in REFS[SPLIT:SPLIT + 50]:
                    client.observe(session_id, block)
                written = service.checkpoint_sessions(str(ckpt_dir))
        assert written == 1
        assert service.metrics.checkpoints_written == 1
        snapshot = read_snapshot(ckpt_dir / f"{session_id}.snap")
        assert snapshot.kind == "session"
        assert snapshot.counts["references"] == SPLIT + 50

        # the checkpoint resumes exactly where the live session was
        from repro.store.session_state import restore_session

        continuous = PrefetchSession(policy="tree", cache_size=64)
        want = [continuous.observe(b).as_dict() for b in REFS]
        resumed = restore_session(snapshot)
        got = [resumed.observe(b).as_dict() for b in REFS[SPLIT + 50:]]
        assert got == want[SPLIT + 50:]

    def test_checkpoint_with_no_sessions_writes_nothing(self, tmp_path):
        service = PrefetchService()
        assert service.checkpoint_sessions(str(tmp_path / "empty")) == 0

    def test_clean_close_deletes_the_checkpoint(self, tmp_path):
        """A closed session can never be resumed, so its snapshot is
        garbage-collected on CLOSE (and counted)."""
        ckpt_dir = tmp_path / "ckpts"
        service = PrefetchService(checkpoint_dir=str(ckpt_dir))
        with BackgroundServer(service=service) as server:
            with ServiceClient.connect(port=server.port) as client:
                session_id = client.open(policy="tree", cache_size=64)
                for block in REFS[:40]:
                    client.observe(session_id, block)
                assert service.checkpoint_sessions(str(ckpt_dir)) == 1
                path = ckpt_dir / f"{session_id}.snap"
                assert path.exists()
                client.close_session(session_id)
                assert not path.exists()
        assert service.metrics.checkpoints_deleted == 1
        assert service.metrics.as_dict()["checkpoints_deleted"] == 1

    def test_close_without_checkpoint_deletes_nothing(self, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        service = PrefetchService(checkpoint_dir=str(ckpt_dir))
        with BackgroundServer(service=service) as server:
            with ServiceClient.connect(port=server.port) as client:
                session_id = client.open(policy="no-prefetch", cache_size=8)
                client.close_session(session_id)
        assert service.metrics.checkpoints_deleted == 0

    def test_metrics_expose_checkpoint_counter(self):
        assert PrefetchService().metrics.as_dict()["checkpoints_written"] == 0


class TestProtocolV2:
    def test_v1_request_still_accepted(self):
        request = protocol.decode_request(
            b'{"v":1,"cmd":"open","id":1,"policy":"tree","cache_size":64}\n'
        )
        assert request.model is None
        assert request.policy == "tree"

    def test_v2_open_carries_model(self):
        request = protocol.decode_request(
            b'{"v":2,"cmd":"open","id":1,"model":"tree-cad@3"}\n'
        )
        assert request.model == "tree-cad@3"

    def test_open_round_trips_model(self):
        request = protocol.OpenRequest(id=1, model="m@2")
        assert protocol.decode_request(
            protocol.encode_request(request)) == request

    def test_model_omitted_from_wire_when_unset(self):
        line = protocol.encode_request(protocol.OpenRequest(id=1))
        assert b'"model"' not in line

    @pytest.mark.parametrize("version", [0, 4, None, "two"])
    def test_out_of_range_versions_rejected(self, version):
        import json

        line = json.dumps({"v": version, "cmd": "open", "id": 1}) + "\n"
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_request(line.encode())
        assert excinfo.value.code == protocol.E_BAD_VERSION

    def test_version_constants(self):
        assert protocol.MIN_PROTOCOL_VERSION == 1
        assert protocol.PROTOCOL_VERSION == 3
