"""Malformed-input fuzz: every garbage line gets one clean error line.

Each case runs against both a bare :class:`PrefetchService` and an
:class:`AdvisoryGateway` fronting one — the gateway speaks the same
protocol and must be exactly as unkillable.  The contract under test:

* a malformed line is answered with a single ``ErrorReply`` line (the
  oversized case may instead close the connection after the error);
* the server never writes a traceback or non-JSON bytes;
* the same connection (or at worst a fresh one) still serves valid
  requests afterwards — no wedged handler, no poisoned state.
"""

import asyncio
import json

import pytest

from repro.cluster import AdvisoryGateway, StaticWorkerDirectory
from repro.service import protocol
from repro.service.server import BackgroundServer, PrefetchService

# (name, payload line, codes acceptable in the error reply)
CASES = [
    ("garbage-text", b"this is not json\n", {protocol.E_BAD_REQUEST}),
    ("binary-noise", b"\x00\xff\xfe\x01\n", {protocol.E_BAD_REQUEST}),
    ("truncated-json", b'{"v": 3, "id": 1, "cmd": "open"\n',
     {protocol.E_BAD_REQUEST}),
    ("json-array", b'[1, 2, 3]\n', {protocol.E_BAD_REQUEST}),
    ("json-scalar", b'42\n', {protocol.E_BAD_REQUEST}),
    ("unknown-command", b'{"v": 3, "id": 1, "cmd": "explode"}\n',
     {protocol.E_BAD_REQUEST}),
    ("bad-version", b'{"v": 99, "id": 1, "cmd": "open"}\n',
     {protocol.E_BAD_VERSION}),
    ("missing-version", b'{"id": 1, "cmd": "open"}\n',
     {protocol.E_BAD_VERSION}),
    ("non-integer-id", b'{"v": 3, "id": "one", "cmd": "open"}\n',
     {protocol.E_BAD_REQUEST}),
    ("observe-sans-block",
     b'{"v": 3, "id": 1, "cmd": "observe", "session": "s1"}\n',
     {protocol.E_BAD_REQUEST}),
    ("open-bad-session-id",
     b'{"v": 3, "id": 1, "cmd": "open", "policy": "no-prefetch",'
     b' "cache_size": 8, "session_id": "../../etc/passwd"}\n',
     {protocol.E_BAD_REQUEST}),
]

OPEN_LINE = (
    b'{"v": 3, "id": 7, "cmd": "open",'
    b' "policy": "no-prefetch", "cache_size": 8}\n'
)


class _Target:
    """A port to fuzz plus the machinery behind it."""

    def __init__(self, flavor):
        self.flavor = flavor
        self.port = None
        self._server = None
        self._gateway = None

    async def __aenter__(self):
        self._server = BackgroundServer(
            service=PrefetchService(identity="w0")
        ).start().wait_ready()
        if self.flavor == "bare":
            self.port = self._server.port
        else:
            directory = StaticWorkerDirectory()
            directory.register("w0", "127.0.0.1", self._server.port)
            self._gateway = AdvisoryGateway(directory, request_timeout_s=5.0)
            await self._gateway.start(port=0)
            self.port = self._gateway.port
        return self

    async def __aexit__(self, *exc_info):
        if self._gateway is not None:
            await self._gateway.aclose()
        await asyncio.to_thread(self._server.stop)


async def _raw_connect(port):
    reader, writer = await asyncio.open_connection(
        "127.0.0.1", port, limit=protocol.MAX_LINE_BYTES + 1024
    )
    hello = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
    assert hello["ok"] and hello["cmd"] == "hello"
    return reader, writer


def _assert_clean_error(line, codes):
    """The reply must be one parseable protocol error, not a traceback."""
    assert line, "server closed without replying"
    reply = json.loads(line)  # raises if the server leaked non-JSON
    assert reply["ok"] is False
    assert reply["error"] in codes, reply
    assert "\n" not in reply["message"]
    assert "Traceback" not in reply["message"]


@pytest.mark.parametrize("flavor", ["bare", "gateway"])
@pytest.mark.parametrize(
    "payload,codes", [c[1:] for c in CASES], ids=[c[0] for c in CASES]
)
def test_malformed_line_gets_one_error_line(flavor, payload, codes):
    async def scenario():
        async with _Target(flavor) as target:
            reader, writer = await _raw_connect(target.port)
            writer.write(payload)
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), 5.0)
            _assert_clean_error(line, codes)
            # The same connection is not wedged: a valid OPEN still works.
            writer.write(OPEN_LINE)
            await writer.drain()
            reply = json.loads(
                await asyncio.wait_for(reader.readline(), 5.0)
            )
            assert reply["ok"] and reply["id"] == 7
            writer.close()
            await writer.wait_closed()

    asyncio.run(scenario())


@pytest.mark.parametrize("flavor", ["bare", "gateway"])
def test_oversized_line_errors_then_disconnects(flavor):
    async def scenario():
        async with _Target(flavor) as target:
            reader, writer = await _raw_connect(target.port)
            writer.write(b'{"pad": "' + b"x" * protocol.MAX_LINE_BYTES)
            writer.write(b'"}\n')
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), 5.0)
            _assert_clean_error(line, {protocol.E_BAD_REQUEST})
            # Overflow poisons framing, so the server hangs up...
            assert await asyncio.wait_for(reader.read(), 5.0) == b""
            writer.close()
            await writer.wait_closed()
            # ...but a fresh connection serves normally.
            reader, writer = await _raw_connect(target.port)
            writer.write(OPEN_LINE)
            await writer.drain()
            reply = json.loads(
                await asyncio.wait_for(reader.readline(), 5.0)
            )
            assert reply["ok"] and reply["id"] == 7
            writer.close()
            await writer.wait_closed()

    asyncio.run(scenario())


@pytest.mark.parametrize("flavor", ["bare", "gateway"])
def test_fuzz_burst_never_wedges_the_server(flavor):
    """Many bad lines in one write, interleaved with good ones: every
    good request is answered, every bad line draws exactly one error."""

    async def scenario():
        async with _Target(flavor) as target:
            reader, writer = await _raw_connect(target.port)
            bad = [payload for _, payload, _ in CASES]
            writer.write(b"".join(bad) + OPEN_LINE)
            await writer.drain()
            replies = []
            for _ in range(len(bad) + 1):
                replies.append(json.loads(
                    await asyncio.wait_for(reader.readline(), 5.0)
                ))
            assert [r["ok"] for r in replies] == [False] * len(bad) + [True]
            writer.close()
            await writer.wait_closed()

    asyncio.run(scenario())
