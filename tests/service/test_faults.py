"""Resilience under injected faults: chaos proxy, resume, drain, degrade.

The central claim of the resilience layer is *decision parity*: whatever
the network does — resets, delays, truncated or garbage reply lines, even
a server kill and restart — a resilient client's advice stream is
bit-identical to a fault-free run.  Session determinism makes that
checkable, so every test here checks it.
"""

import asyncio
import os
import signal
import socket
import subprocess
import sys

import pytest

from repro.service import protocol
from repro.service.client import (
    AsyncServiceClient,
    ResilientAsyncClient,
    RetryPolicy,
    ServiceClient,
)
from repro.service.faults import ChaosProxy, ChaosStats, FaultPlan
from repro.service.server import (
    BackgroundServer,
    PrefetchService,
    ServiceLimits,
    bound_port,
    drain_service,
)
from repro.service.session import PrefetchSession
from repro.store import ModelStore, model_snapshot
from repro.traces.synthetic import make_trace

CACHE = 64


def _blocks(refs, name="cad", seed=1999):
    return make_trace(name, num_references=refs, seed=seed).as_list()


def _fault_free_advice(blocks):
    """Ground truth: the offline session's advice stream, as dicts."""
    session = PrefetchSession(policy="tree", cache_size=CACHE)
    return [session.observe(block).as_dict() for block in blocks]


def _retry(**overrides):
    """A fast, deterministic retry policy for loopback tests."""
    defaults = dict(max_attempts=10, base_delay_s=0.01, max_delay_s=0.1,
                    per_rpc_timeout_s=5.0, overall_deadline_s=30.0, seed=7)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


async def _with_server(coro, **service_kwargs):
    service = PrefetchService(**service_kwargs)
    server = await service.start("127.0.0.1", 0)
    try:
        return await coro(service, bound_port(server))
    finally:
        server.close()
        await server.wait_closed()


class TestFaultPlan:
    def test_rejects_nonpositive_intervals(self):
        with pytest.raises(ValueError, match="reset_every"):
            FaultPlan(reset_every=0)
        with pytest.raises(ValueError, match="delay_s"):
            FaultPlan(delay_s=-1.0)

    def test_injects_anything(self):
        assert not FaultPlan().injects_anything
        assert FaultPlan(garbage_every=3).injects_anything

    def test_drops_counts_resets_and_truncations(self):
        stats = ChaosStats(resets_injected=2, truncations_injected=3)
        assert stats.drops_injected == 5
        assert stats.as_dict()["drops_injected"] == 5


class TestChaosParity:
    """Resets + delays + corrupt lines; the advice stream must not care."""

    def test_resets_resume_decision_identically(self):
        blocks = _blocks(400)
        want = _fault_free_advice(blocks)

        async def scenario(service, port):
            plan = FaultPlan(reset_every=45, delay_every=17, delay_s=0.005)
            async with ChaosProxy(port=port, plan=plan) as proxy:
                client = ResilientAsyncClient(port=proxy.port, retry=_retry())
                async with client:
                    await client.open(policy="tree", cache_size=CACHE)
                    got = [
                        (await client.observe(block)).as_dict()
                        for block in blocks
                    ]
                    final = await client.close_session()
                return got, final, proxy.stats, client

        got, final, stats, client = asyncio.run(_with_server(scenario))
        assert got == want
        assert final["accesses"] == len(blocks)
        # the run actually exercised the fault path
        assert stats.resets_injected > 0
        assert client.retries > 0
        assert client.resumes > 0

    def test_garbage_and_truncated_lines_are_survived(self):
        blocks = _blocks(300)
        want = _fault_free_advice(blocks)

        async def scenario(service, port):
            plan = FaultPlan(garbage_every=31, truncate_every=53)
            async with ChaosProxy(port=port, plan=plan) as proxy:
                client = ResilientAsyncClient(port=proxy.port, retry=_retry())
                async with client:
                    await client.open(policy="tree", cache_size=CACHE)
                    got = [
                        (await client.observe(block)).as_dict()
                        for block in blocks
                    ]
                    await client.close_session()
                return got, proxy.stats, service.metrics.as_dict()

        got, stats, metrics = asyncio.run(_with_server(scenario))
        assert got == want
        assert stats.garbage_injected > 0
        assert stats.truncations_injected > 0
        assert metrics["sessions_resumed"] > 0

    def test_duplicate_observe_is_served_from_cache(self):
        """A retried duplicate of the last OBSERVE must not fold twice."""

        async def scenario(service, port):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                session = await client.open(policy="tree", cache_size=CACHE)
                first = await client.observe(session, 42, seq=0)
                again = await client.observe(session, 42, seq=0)
                period = service.sessions[session].observations
                return first, again, period, service.metrics.as_dict()

        first, again, period, metrics = asyncio.run(_with_server(scenario))
        assert first == again
        assert period == 1  # the duplicate did not advance the session
        assert metrics["duplicates_served"] == 1

    def test_seq_gap_is_rejected(self):
        async def scenario(service, port):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                session = await client.open(policy="tree", cache_size=CACHE)
                await client.observe(session, 1, seq=0)
                from repro.service.client import ServiceError
                with pytest.raises(ServiceError) as excinfo:
                    await client.observe(session, 3, seq=5)
                return excinfo.value.code

        assert asyncio.run(_with_server(scenario)) == protocol.E_SEQ


class TestServerKillResume:
    def test_mid_replay_kill_resumes_from_checkpoint(self, tmp_path):
        """Kill the server mid-replay; a restarted server on the same port
        with the same checkpoint directory continues the session with
        bit-identical advice, including the stale tail replayed from the
        client's journal."""
        blocks = _blocks(500)
        want = _fault_free_advice(blocks)
        ckpt = str(tmp_path / "ckpts")

        service1 = PrefetchService(checkpoint_dir=ckpt)
        server1 = BackgroundServer(service=service1).start().wait_ready()
        port = server1.port

        async def scenario():
            client = ResilientAsyncClient(port=port, retry=_retry())
            got = []
            async with client:
                await client.open(policy="tree", cache_size=CACHE)
                for block in blocks[:300]:
                    got.append((await client.observe(block)).as_dict())
                # checkpoint now, then keep going so the checkpoint is
                # stale when the server dies: resume must replay the tail
                assert service1.checkpoint_sessions(ckpt) == 1
                for block in blocks[300:350]:
                    got.append((await client.observe(block)).as_dict())
                await asyncio.to_thread(server1.stop)
                service2 = PrefetchService(checkpoint_dir=ckpt)
                # wait_ready closes the restart race: the rebind on a
                # fixed port can lag the old socket's teardown, and the
                # client reconnects the instant start() returns.
                server2 = await asyncio.to_thread(
                    lambda: BackgroundServer(
                        service=service2, port=port
                    ).start().wait_ready()
                )
                try:
                    for block in blocks[350:]:
                        got.append((await client.observe(block)).as_dict())
                    final = await client.close_session()
                finally:
                    await asyncio.to_thread(server2.stop)
            return got, final, client, service2.metrics.as_dict()

        got, final, client, metrics2 = asyncio.run(scenario())
        assert got == want
        assert final["accesses"] == len(blocks)
        assert client.retries > 0
        assert metrics2["sessions_resumed"] == 1

    def test_detached_session_resumes_without_checkpoint_dir(self):
        """An abrupt disconnect parks the session in the in-memory
        detached table; a plain reconnect + resume picks it up."""
        blocks = _blocks(200)
        want = _fault_free_advice(blocks)

        async def scenario(service, port):
            client1 = await AsyncServiceClient.connect("127.0.0.1", port)
            reply = await client1.open_session(policy="tree",
                                               cache_size=CACHE)
            got = [
                (await client1.observe(reply.session, block)).as_dict()
                for block in blocks[:120]
            ]
            # vanish without CLOSE
            client1._writer.transport.abort()
            await asyncio.sleep(0.05)
            assert service.metrics.sessions_detached == 1

            client2 = await AsyncServiceClient.connect("127.0.0.1", port)
            resumed = await client2.open_session(resume=reply.session)
            assert resumed.resumed
            assert resumed.period == 120
            got += [
                (await client2.observe(resumed.session, block)).as_dict()
                for block in blocks[120:]
            ]
            await client2.aclose()
            return got

        assert asyncio.run(_with_server(scenario)) == want

    def test_resume_of_unknown_session_is_clean_error(self):
        async def scenario(service, port):
            from repro.service.client import ServiceError
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                with pytest.raises(ServiceError, match="no detached session"):
                    await client.open_session(resume="s999")
            return True

        assert asyncio.run(_with_server(scenario))


class TestDegradedMode:
    def test_bad_model_degrades_instead_of_rejecting(self, tmp_path):
        registry = ModelStore(tmp_path / "models")
        trained = PrefetchSession(policy="tree", cache_size=CACHE)
        for block in _blocks(100):
            trained.observe(block)
        registry.save("warm", model_snapshot(trained.simulator.policy.model()))

        async def scenario(service, port):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                # cb-ppm's model kind does not match the stored tree model,
                # so the warm start fails -> degraded no-prefetch session
                reply = await client.open_session(policy="cb-ppm",
                                                  model="warm")
                advice = await client.observe(reply.session, 7)
                stats = await client.stats(reply.session)
                return reply, advice, stats, service.metrics.as_dict()

        reply, advice, stats, metrics = asyncio.run(
            _with_server(scenario, store=ModelStore(tmp_path / "models"))
        )
        assert reply.degraded
        assert reply.policy == "no-prefetch"
        assert advice.prefetch == ()
        assert stats["degraded"] is True
        assert metrics["degraded_sessions"] == 1
        assert metrics["sessions_rejected"] == 0


class TestDrain:
    def test_drain_checkpoints_every_open_session(self, tmp_path):
        ckpt = tmp_path / "drain"

        async def scenario(service, port):
            server = await service.start("127.0.0.1", 0)
            clients = []
            for offset in range(3):
                client = await AsyncServiceClient.connect(
                    "127.0.0.1", bound_port(server)
                )
                session = await client.open(policy="tree", cache_size=CACHE)
                for block in _blocks(50, seed=offset + 1):
                    await client.observe(session, block)
                clients.append((client, session))
            drained = await drain_service(
                service, server, checkpoint_dir=str(ckpt)
            )
            # drained connections read EOF, not a hang
            for client, _ in clients:
                assert await client._reader.readline() == b""
            return drained, service.metrics.as_dict()

        service = PrefetchService()
        drained, metrics = asyncio.run(scenario(service, 0))
        assert drained == 3
        assert metrics["drained_sessions"] == 3
        assert len(list(ckpt.glob("*.snap"))) == 3

    def test_sigterm_drains_the_real_daemon(self, tmp_path):
        """End-to-end: ``repro serve`` under SIGTERM checkpoints every open
        session and says so before exiting."""
        ckpt = tmp_path / "ckpts"
        repo = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--checkpoint-dir", str(ckpt), "--checkpoint-every-s", "60"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            port = int(banner.split(":")[-1].split()[0])
            client = ServiceClient.connect(port=port, timeout=10.0)
            session = client.open(policy="tree", cache_size=CACHE)
            for block in _blocks(40):
                client.observe(session, block)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=20)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "drained 1 session(s)" in out
        assert (ckpt / f"{session}.snap").exists()


class TestTimeouts:
    def test_idle_connection_is_reaped(self):
        async def scenario(service, port):
            client = await AsyncServiceClient.connect("127.0.0.1", port)
            session = await client.open(policy="tree", cache_size=CACHE)
            assert session
            # send nothing; the server must hang up on its own
            eof = await asyncio.wait_for(client._reader.readline(), 5.0)
            await client.aclose()
            return eof, service.metrics.as_dict()

        eof, metrics = asyncio.run(_with_server(
            scenario, limits=ServiceLimits(idle_timeout_s=0.2)
        ))
        assert eof == b""
        assert metrics["timeouts"] == 1
        assert metrics["live_sessions"] == 0  # reaped, not leaked

    def test_sync_client_surfaces_read_timeout(self):
        """A listener that accepts but never speaks must raise a clean
        TimeoutError, not hang the caller."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            with pytest.raises(TimeoutError):
                ServiceClient.connect(
                    port=listener.getsockname()[1], timeout=0.3
                )
        finally:
            listener.close()


class TestBackgroundServerStop:
    def test_stop_raises_when_thread_refuses_to_die(self):
        server = BackgroundServer().start()
        real_thread = server._thread

        class WedgedThread:
            def join(self, timeout=None):
                pass

            def is_alive(self):
                return True

        server._thread = WedgedThread()
        try:
            with pytest.raises(RuntimeError, match="did not stop"):
                server.stop()
        finally:
            server._thread = real_thread
            server.stop()
        assert not real_thread.is_alive()


class TestChaosCLI:
    def test_chaos_subcommand_reports_zero_lost_sessions(self, capsys):
        with BackgroundServer() as server:
            from repro.cli import main

            rc = main([
                "chaos", "--trace", "cad", "--refs", "300",
                "--port", str(server.port), "--clients", "1",
                "--cache", str(CACHE), "--reset-every", "40",
            ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sessions_lost=0" in out
        chaos_line = next(
            line for line in out.splitlines() if line.startswith("chaos:")
        )
        drops = int(chaos_line.split("drops_injected=")[1].split()[0])
        retries = int(chaos_line.split("retries=")[1].split()[0])
        assert drops > 0
        assert retries > 0
