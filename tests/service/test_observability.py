"""Server-level STATS observability: identity satellites, Prometheus.

The server-level snapshot is the single source for ``repro top``, the
``repro metrics`` scrape, and the greppable serve/fleet summary lines,
so its identity fields (``uptime_s``/``proto_version``/``pid``) and the
``format="prometheus"`` exposition are contract, not decoration.
"""

import asyncio
import os

import pytest

from repro.cluster import AdvisoryGateway, StaticWorkerDirectory
from repro.service import protocol
from repro.service.client import (
    AsyncServiceClient, ServiceClient, ServiceError,
)
from repro.service.server import BackgroundServer, PrefetchService

REQUIRED_FAMILIES = (
    "advice_latency",
    "overload_rejections",
    "brownout_level",
)


class TestIdentitySatellites:
    def test_server_stats_carries_uptime_proto_pid(self):
        with BackgroundServer() as server:
            with ServiceClient.connect(port=server.port) as client:
                stats = client.server_stats()
        assert stats["proto_version"] == protocol.PROTOCOL_VERSION
        assert stats["pid"] == os.getpid()  # in-process server
        assert isinstance(stats["uptime_s"], float)
        assert stats["uptime_s"] >= 0.0

    def test_uptime_advances(self):
        with BackgroundServer() as server:
            with ServiceClient.connect(port=server.port) as client:
                first = client.server_stats()["uptime_s"]
                import time
                time.sleep(0.05)
                second = client.server_stats()["uptime_s"]
        assert second > first


class TestPrometheusStats:
    def _scrape(self, *, traffic=True):
        with BackgroundServer() as server:
            with ServiceClient.connect(port=server.port) as client:
                if traffic:
                    sid = client.open(policy="tree", cache_size=64)
                    for block in range(20):
                        client.observe(sid, block)
                    client.close_session(sid)
                return client.server_stats(format="prometheus")

    def test_exposition_present_with_required_families(self):
        stats = self._scrape()
        exposition = stats["exposition"]
        for family in REQUIRED_FAMILIES:
            assert f"# TYPE {family} " in exposition, family
        assert "# TYPE advice_latency histogram" in exposition
        assert 'advice_latency_bucket{le="+Inf"} 20' in exposition
        assert "advice_latency_count 20" in exposition
        assert exposition.endswith("\n")

    def test_exposition_carries_liveness_gauges(self):
        exposition = self._scrape()["exposition"]
        for gauge in ("uptime_s", "inflight", "live_sessions",
                      "model_bytes"):
            assert f"# TYPE {gauge} gauge" in exposition, gauge

    def test_plain_stats_has_no_exposition(self):
        stats = self._scrape(traffic=False)
        assert "exposition" in stats
        with BackgroundServer() as server:
            with ServiceClient.connect(port=server.port) as client:
                assert "exposition" not in client.server_stats()

    def test_unknown_format_is_a_bad_request(self):
        with BackgroundServer() as server:
            with ServiceClient.connect(port=server.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.server_stats(format="openmetrics2")
        assert excinfo.value.code == protocol.E_BAD_REQUEST


class TestFleetPrometheus:
    def test_gateway_exposition_merges_fleet_and_labels_workers(self):
        async def scenario():
            directory = StaticWorkerDirectory()
            workers = []
            for i in range(2):
                server = BackgroundServer(service=PrefetchService(
                    identity=f"w{i}",
                )).start().wait_ready()
                workers.append(server)
                directory.register(f"w{i}", "127.0.0.1", server.port)
            gateway = AdvisoryGateway(directory, request_timeout_s=5.0)
            await gateway.start(port=0)
            try:
                async with await AsyncServiceClient.connect(
                    port=gateway.port
                ) as client:
                    sid = await client.open(policy="tree", cache_size=64)
                    for block in range(15):
                        await client.observe(sid, block)
                    stats = await client.server_stats(format="prometheus")
            finally:
                await gateway.aclose()
                for server in workers:
                    await asyncio.to_thread(server.stop)
            return stats

        stats = asyncio.run(scenario())
        exposition = stats["exposition"]
        for family in REQUIRED_FAMILIES + ("breakers_opened",):
            assert f"# TYPE {family} " in exposition, family
        assert "advice_latency_count 15" in exposition
        assert "workers_live 2" in exposition
        # per-worker gauges carry the worker label
        for worker in ("w0", "w1"):
            assert f'live_sessions{{worker="{worker}"}}' in exposition
            assert f'breaker_open{{worker="{worker}"}} 0' in exposition
        # colliding gateway counters are prefixed, so the bare family
        # stays the fleet-summed number
        assert "# TYPE gateway_sessions_opened counter" in exposition
