"""PrefetchSession: lifecycle, guard rails, and determinism parity.

The parity tests are the subsystem's anchor: the advice streamed out of an
online session must be *identical* to the prefetch decisions the offline
:class:`Simulator` makes on the same trace, for every online-capable
policy.  If these pass, the daemon is the paper's simulator, served.
"""

import pytest

from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.service.session import (
    OFFLINE_ONLY_POLICIES,
    PrefetchAdvice,
    PrefetchSession,
    SessionError,
)
from repro.sim.engine import Simulator
from repro.traces.synthetic import make_trace

CACHE = 256


def _blocks(name="cad", refs=3000, seed=1999):
    return make_trace(name, num_references=refs, seed=seed).as_list()


class TestParity:
    @pytest.mark.parametrize("policy,policy_kwargs", [
        ("tree", {}),
        ("next-limit", {}),
        ("tree-next-limit", {}),
        ("no-prefetch", {}),
        ("tree-threshold", {"threshold": 0.05}),
        ("cb-lz", {}),
    ])
    def test_decisions_match_offline_simulator(self, policy, policy_kwargs):
        blocks = _blocks()
        offline = Simulator(PAPER_PARAMS, make_policy(policy, **policy_kwargs),
                            CACHE, record_decisions=True)
        offline_stats = offline.run(blocks)

        session = PrefetchSession(policy=policy, cache_size=CACHE,
                                  policy_kwargs=policy_kwargs)
        streamed = []
        for block in blocks:
            streamed.extend(session.observe(block).prefetch)
        final = session.close()

        assert tuple(streamed) == tuple(offline.decision_log)
        assert final["miss_rate"] == offline_stats.miss_rate
        assert final["prefetches_issued"] == offline_stats.prefetches_issued
        assert final["elapsed_time"] == offline_stats.elapsed_time

    def test_parity_across_traces(self):
        for name in ("snake", "sitar"):
            blocks = _blocks(name, refs=2000)
            offline = Simulator(PAPER_PARAMS, make_policy("tree"), CACHE,
                                record_decisions=True)
            offline.run(blocks)
            session = PrefetchSession(policy="tree", cache_size=CACHE)
            streamed = []
            for block in blocks:
                streamed.extend(session.observe(block).prefetch)
            assert tuple(streamed) == tuple(offline.decision_log), name

    def test_seeded_sessions_are_deterministic(self):
        blocks = _blocks(refs=1500)
        runs = []
        for _ in range(2):
            session = PrefetchSession(policy="tree", cache_size=CACHE)
            runs.append([session.observe(b) for b in blocks])
        assert runs[0] == runs[1]


class TestLifecycle:
    def test_advice_shape(self):
        session = PrefetchSession(policy="tree", cache_size=64)
        advice = session.observe(7)
        assert isinstance(advice, PrefetchAdvice)
        assert advice.block == 7
        assert advice.period == 1
        assert advice.outcome == "miss"  # cold cache
        assert advice.s >= 0.0
        # wire round trip of the advice payload
        assert PrefetchAdvice.from_dict(advice.as_dict()) == advice

    def test_stats_snapshot_is_live_and_nondestructive(self):
        session = PrefetchSession(policy="tree", cache_size=64)
        for block in (1, 2, 3, 1, 2):
            session.observe(block)
        first = session.stats_snapshot()
        assert first["accesses"] == 5
        assert first["period"] == 5
        assert first["elapsed_time"] > 0.0
        session.observe(9)
        assert session.stats_snapshot()["accesses"] == 6
        assert not session.closed

    def test_close_is_idempotent_and_final(self):
        session = PrefetchSession(policy="tree", cache_size=64)
        session.observe(1)
        final = session.close()
        assert session.closed
        assert final == session.close()
        assert final == session.stats_snapshot()
        with pytest.raises(SessionError, match="closed"):
            session.observe(2)

    def test_observation_limit(self):
        session = PrefetchSession(policy="tree", cache_size=64,
                                  max_observations=3)
        for block in (1, 2, 3):
            session.observe(block)
        with pytest.raises(SessionError, match="limit"):
            session.observe(4)

    def test_custom_params_flow_through(self):
        fast = SystemParams(t_cpu=1.0, t_disk=0.05)
        session = PrefetchSession(policy="tree", cache_size=64, params=fast)
        assert session.simulator.params.t_cpu == 1.0


class TestRejections:
    @pytest.mark.parametrize("policy", sorted(OFFLINE_ONLY_POLICIES))
    def test_offline_only_policies_rejected(self, policy):
        with pytest.raises(SessionError, match="online"):
            PrefetchSession(policy=policy)

    def test_unknown_policy(self):
        with pytest.raises(SessionError, match="unknown policy"):
            PrefetchSession(policy="magic")

    def test_bad_cache_size(self):
        with pytest.raises(SessionError, match="cache_size"):
            PrefetchSession(policy="tree", cache_size=0)

    def test_bad_observation_limit(self):
        with pytest.raises(SessionError, match="max_observations"):
            PrefetchSession(policy="tree", max_observations=0)
