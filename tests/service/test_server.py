"""Server integration tests: concurrency, isolation, limits, metrics.

Async tests drive the real asyncio server over loopback TCP via
``asyncio.run``; blocking-client tests use :class:`BackgroundServer`, the
same daemon-thread harness the examples and benchmarks use.
"""

import asyncio
import json

import pytest

from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.service import protocol
from repro.service.client import (
    AsyncServiceClient,
    ServiceClient,
    ServiceError,
)
from repro.service.replay import replay, replay_async
from repro.service.server import (
    BackgroundServer,
    PrefetchService,
    ServiceLimits,
    bound_port,
)
from repro.sim.engine import Simulator
from repro.traces.synthetic import make_trace

CACHE = 128


def _blocks(name="cad", refs=1200, seed=1999):
    return make_trace(name, num_references=refs, seed=seed).as_list()


async def _with_server(coro, **service_kwargs):
    """Run ``coro(service, port)`` against a live loopback server."""
    service = PrefetchService(**service_kwargs)
    server = await service.start("127.0.0.1", 0)
    try:
        return await coro(service, bound_port(server))
    finally:
        server.close()
        await server.wait_closed()


class TestConcurrentSessions:
    def test_isolated_trees_and_deterministic_advice(self):
        """N clients replaying different seeded traces against one server
        get advice identical to N independent offline simulators."""
        traces = {
            name: _blocks(name, refs=800, seed=11 + index)
            for index, name in enumerate(("cad", "snake", "sitar", "cello"))
        }

        async def scenario(service, port):
            async def one_client(blocks):
                async with await AsyncServiceClient.connect(
                    "127.0.0.1", port
                ) as client:
                    session = await client.open(policy="tree",
                                                cache_size=CACHE)
                    decisions = []
                    for block in blocks:
                        advice = await client.observe(session, block)
                        decisions.extend(advice.prefetch)
                    final = await client.close_session(session)
                    return decisions, final

            results = await asyncio.gather(*(
                one_client(blocks) for blocks in traces.values()
            ))
            return dict(zip(traces, results))

        online = asyncio.run(_with_server(scenario))

        for name, blocks in traces.items():
            offline = Simulator(PAPER_PARAMS, make_policy("tree"), CACHE,
                                record_decisions=True)
            offline_stats = offline.run(blocks)
            decisions, final = online[name]
            assert tuple(decisions) == tuple(offline.decision_log), name
            assert final["miss_rate"] == offline_stats.miss_rate, name
            assert final["accesses"] == len(blocks), name

    def test_sessions_share_nothing(self):
        """Two sessions fed the same stream evolve identical, independent
        state; a third fed garbage does not perturb them."""

        async def scenario(service, port):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                a = await client.open(policy="tree", cache_size=CACHE)
                b = await client.open(policy="tree", cache_size=CACHE)
                noise = await client.open(policy="tree", cache_size=CACHE)
                stream = _blocks(refs=400)
                advice_a, advice_b = [], []
                for index, block in enumerate(stream):
                    advice_a.append(await client.observe(a, block))
                    await client.observe(noise, 7_000_000 + index)
                    advice_b.append(await client.observe(b, block))
                return advice_a, advice_b

        advice_a, advice_b = asyncio.run(_with_server(scenario))
        assert advice_a == advice_b

    def test_multiple_sessions_per_connection_counted(self):
        async def scenario(service, port):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                for _ in range(3):
                    await client.open(policy="tree", cache_size=32)
                return service.metrics.live_sessions

        assert asyncio.run(_with_server(scenario)) == 3


class TestLimitsAndErrors:
    def test_server_session_limit(self):
        limits = ServiceLimits(max_sessions=2)

        async def scenario(service, port):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                await client.open(cache_size=32)
                await client.open(cache_size=32)
                with pytest.raises(ServiceError) as excinfo:
                    await client.open(cache_size=32)
                return excinfo.value.code, service.metrics.sessions_rejected

        code, rejected = asyncio.run(_with_server(scenario, limits=limits))
        assert code == protocol.E_LIMIT
        assert rejected == 1

    def test_per_connection_session_limit(self):
        limits = ServiceLimits(max_sessions_per_connection=1)

        async def scenario(service, port):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                await client.open(cache_size=32)
                with pytest.raises(ServiceError) as excinfo:
                    await client.open(cache_size=32)
                return excinfo.value.code

        assert asyncio.run(_with_server(scenario, limits=limits)) == (
            protocol.E_LIMIT
        )

    def test_unknown_session_and_bad_policy(self):
        async def scenario(service, port):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                with pytest.raises(ServiceError) as unknown:
                    await client.observe("s999", 1)
                with pytest.raises(ServiceError) as offline_only:
                    await client.open(policy="perfect-selector")
                with pytest.raises(ServiceError) as bad_param:
                    await client.open(params={"warp_speed": 9})
                return (unknown.value.code, offline_only.value.code,
                        bad_param.value.code)

        codes = asyncio.run(_with_server(scenario))
        assert codes == (protocol.E_UNKNOWN_SESSION,
                         protocol.E_SESSION_ERROR,
                         protocol.E_BAD_REQUEST)

    def test_malformed_line_keeps_connection_alive(self):
        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await reader.readline()  # hello
            writer.write(b"{not json\n")
            await writer.drain()
            error = json.loads(await reader.readline())
            # The connection survives and still serves valid requests.
            writer.write(protocol.encode_request(
                protocol.OpenRequest(id=7, cache_size=32)
            ))
            await writer.drain()
            opened = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return error, opened

        error, opened = asyncio.run(_with_server(scenario))
        assert error["ok"] is False
        assert error["error"] == protocol.E_BAD_REQUEST
        assert opened["ok"] is True and opened["id"] == 7

    def test_disconnect_reaps_sessions(self):
        async def scenario(service, port):
            client = await AsyncServiceClient.connect("127.0.0.1", port)
            await client.open(cache_size=32)
            await client.open(cache_size=32)
            assert service.metrics.live_sessions == 2
            await client.aclose()
            # Let the server observe EOF and clean up.
            for _ in range(50):
                if service.metrics.live_sessions == 0:
                    break
                await asyncio.sleep(0.01)
            return service.metrics.live_sessions, len(service.sessions)

        live, table = asyncio.run(_with_server(scenario))
        assert live == 0
        assert table == 0


class TestParityThroughWire:
    def test_server_advice_equals_offline_decisions(self):
        blocks = _blocks(refs=1000)
        offline = Simulator(PAPER_PARAMS, make_policy("tree"), CACHE,
                            record_decisions=True)
        offline.run(blocks)

        async def scenario(service, port):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", port
            ) as client:
                session = await client.open(policy="tree", cache_size=CACHE)
                streamed = []
                for block in blocks:
                    advice = await client.observe(session, block)
                    streamed.extend(advice.prefetch)
                return streamed

        streamed = asyncio.run(_with_server(scenario))
        assert tuple(streamed) == tuple(offline.decision_log)


class TestBlockingClientAndMetrics:
    def test_blocking_client_full_lifecycle(self):
        with BackgroundServer() as server:
            with ServiceClient.connect(port=server.port) as client:
                assert client.hello.protocol == protocol.PROTOCOL_VERSION
                session = client.open(policy="tree", cache_size=64)
                outcomes = [client.observe(session, block).outcome
                            for block in (1, 2, 3, 1, 2)]
                snapshot = client.stats(session)
                final = client.close_session(session)
            assert outcomes[0] == "miss"
            assert "demand_hit" in outcomes  # 1 and 2 recur
            assert snapshot["accesses"] == 5
            assert final["accesses"] == 5
            metrics = server.metrics_snapshot()
            assert metrics["sessions_opened"] == 1
            assert metrics["advice_issued"] == 5
            assert metrics["command_latency"]["observe"]["count"] == 5
            assert metrics["command_latency"]["observe"]["p99_ms"] > 0.0

    def test_metrics_track_advice_accuracy(self):
        blocks = _blocks(refs=600)
        with BackgroundServer() as server:
            replay(blocks, port=server.port, clients=2, cache_size=CACHE)
            metrics = server.metrics_snapshot()
        outcomes = metrics["outcomes"]
        assert sum(outcomes.values()) == metrics["advice_issued"] == 1200
        resolved = outcomes["prefetch_hit"] + outcomes["miss"]
        if resolved:
            assert metrics["advice_accuracy"] == pytest.approx(
                outcomes["prefetch_hit"] / resolved, abs=1e-3
            )
        assert metrics["live_sessions"] == 0  # replay closes its sessions


class TestReplayHarness:
    def test_replay_reports_throughput_and_percentiles(self):
        blocks = _blocks(refs=300)

        async def scenario(service, port):
            return await replay_async(
                blocks, port=port, clients=4, cache_size=CACHE,
            )

        report = asyncio.run(_with_server(scenario))
        assert report.requests == 4 * len(blocks)
        assert report.advice_per_second > 0
        latency = report.latency
        assert 0 < latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        # identical streams -> identical per-session results
        assert len(set(report.per_client_miss_rate)) == 1

    def test_replay_disjoint_streams(self):
        blocks = _blocks(refs=200)

        async def scenario(service, port):
            return await replay_async(
                blocks, port=port, clients=3, cache_size=CACHE, disjoint=True,
            )

        report = asyncio.run(_with_server(scenario))
        assert report.requests == 3 * len(blocks)
        # disjoint offsets change the ids, not the stream shape, so the
        # per-client miss rates still agree
        assert len(set(report.per_client_miss_rate)) == 1

    def test_replay_rejects_bad_input(self):
        with pytest.raises(ValueError, match="clients"):
            replay([1, 2, 3], clients=0)
        with pytest.raises(ValueError, match="empty"):
            replay([], clients=1)
