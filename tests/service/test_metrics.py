"""ServiceMetrics aggregation: merge algebra and histogram fidelity.

The gateway folds workers' metrics in arbitrary order as they answer, so
``merge`` must be associative and commutative, and the histogram state
shipped over STATS must preserve buckets — otherwise fleet percentiles
would be an average of averages instead of the real distribution.
"""

import json
import random

import pytest

from repro.service.metrics import LatencyHistogram, ServiceMetrics


def _sample_metrics(seed, *, commands=("open", "observe")):
    rng = random.Random(seed)
    metrics = ServiceMetrics()
    metrics.connections_opened = rng.randrange(100)
    metrics.connections_closed = rng.randrange(100)
    metrics.sessions_opened = rng.randrange(100)
    metrics.sessions_closed = rng.randrange(100)
    metrics.errors = rng.randrange(10)
    for _ in range(rng.randrange(200)):
        metrics.record_advice(
            rng.choice(["demand_hit", "prefetch_hit", "miss"]),
            rng.randrange(3),
        )
    for command in commands:
        for _ in range(rng.randrange(300)):
            metrics.record_latency(command, rng.expovariate(1000.0))
    return metrics


def _canon(metrics):
    """Order-independent comparable form, full fidelity."""
    return json.dumps(metrics.to_state(), sort_keys=True)


class TestMerge:
    def test_counters_and_outcomes_sum(self):
        a, b = _sample_metrics(1), _sample_metrics(2)
        opened = a.sessions_opened + b.sessions_opened
        advice = a.advice_issued + b.advice_issued
        misses = a.outcomes["miss"] + b.outcomes["miss"]
        a.merge(b)
        assert a.sessions_opened == opened
        assert a.advice_issued == advice
        assert a.outcomes["miss"] == misses

    def test_merge_returns_self(self):
        a = _sample_metrics(1)
        assert a.merge(_sample_metrics(2)) is a

    def test_commutative(self):
        ab = _sample_metrics(1).merge(_sample_metrics(2))
        ba = _sample_metrics(2).merge(_sample_metrics(1))
        assert _canon(ab) == _canon(ba)

    def test_associative(self):
        left = _sample_metrics(1).merge(
            _sample_metrics(2).merge(_sample_metrics(3))
        )
        right = _sample_metrics(1).merge(_sample_metrics(2)).merge(
            _sample_metrics(3)
        )
        assert _canon(left) == _canon(right)

    def test_identity_element(self):
        a = _sample_metrics(4)
        assert _canon(ServiceMetrics().merge(a)) == _canon(_sample_metrics(4))
        assert _canon(a.merge(ServiceMetrics())) == _canon(_sample_metrics(4))

    def test_disjoint_commands_union(self):
        a = _sample_metrics(5, commands=("open",))
        b = _sample_metrics(6, commands=("close",))
        a.merge(b)
        assert set(a.command_latency) == {"open", "close"}

    def test_merge_equals_combined_recording(self):
        """Merging two halves == recording everything in one instance."""
        rng = random.Random(7)
        events = [
            (rng.choice(["demand_hit", "prefetch_hit", "miss"]),
             rng.expovariate(1000.0))
            for _ in range(400)
        ]
        whole = ServiceMetrics()
        first, second = ServiceMetrics(), ServiceMetrics()
        for i, (outcome, latency) in enumerate(events):
            whole.record_advice(outcome, 1)
            whole.record_latency("observe", latency)
            part = first if i < 200 else second
            part.record_advice(outcome, 1)
            part.record_latency("observe", latency)
        merged = first.merge(second)
        assert merged.outcomes == whole.outcomes
        assert merged.advice_issued == whole.advice_issued
        merged_hist = merged.command_latency["observe"]
        whole_hist = whole.command_latency["observe"]
        assert merged_hist._counts == whole_hist._counts
        assert merged_hist.count == whole_hist.count
        assert merged_hist.max_s == whole_hist.max_s
        # float sums in a different order agree only to rounding error
        assert merged_hist.total_s == pytest.approx(whole_hist.total_s)


class TestHistogramState:
    def test_round_trip_is_lossless(self):
        histogram = LatencyHistogram()
        rng = random.Random(8)
        for _ in range(1000):
            histogram.record(rng.expovariate(500.0))
        # through JSON, like the STATS wire hop
        state = json.loads(json.dumps(histogram.to_state()))
        restored = LatencyHistogram.from_state(state)
        assert restored.count == histogram.count
        assert restored.total_s == histogram.total_s
        assert restored.max_s == histogram.max_s
        assert restored._counts == histogram._counts
        for p in (50, 95, 99):
            assert restored.percentile_ms(p) == histogram.percentile_ms(p)

    def test_state_buckets_are_sparse(self):
        histogram = LatencyHistogram()
        histogram.record(0.001)
        histogram.record(0.001)
        state = histogram.to_state()
        assert len(state["buckets"]) == 1
        assert sum(state["buckets"].values()) == 2

    def test_empty_round_trip(self):
        restored = LatencyHistogram.from_state(LatencyHistogram().to_state())
        assert restored.count == 0
        assert restored.percentile_ms(99) == 0.0

    def test_merged_percentiles_match_combined_recording(self):
        """The whole point of shipping buckets: a merge of two shards has
        the same percentiles as one histogram that saw every sample."""
        rng = random.Random(9)
        samples = [rng.expovariate(200.0) for _ in range(2000)]
        whole = LatencyHistogram()
        shard_a, shard_b = LatencyHistogram(), LatencyHistogram()
        for i, sample in enumerate(samples):
            whole.record(sample)
            (shard_a if i % 2 else shard_b).record(sample)
        shard_a.merge(shard_b)
        for p in (50, 90, 95, 99, 100):
            assert shard_a.percentile_ms(p) == whole.percentile_ms(p)
        assert shard_a.count == whole.count
        assert shard_a.max_ms == whole.max_ms


class TestFreshOperandIdentity:
    """Regression: merging an idle worker must be a byte-level no-op.

    A fresh worker answering STATS ships zero-count histograms, empty
    tenant maps, and (after a wire hop) possibly zero-valued outcome
    keys.  ``merge`` used to materialise those as empty entries on the
    gateway side, so a fleet with one idle worker produced a different
    ``to_state`` form — and a different exposition — than the same
    fleet without it.
    """

    def test_zero_count_histogram_operand_adds_no_command(self):
        a = _sample_metrics(11, commands=("observe",))
        before = _canon(a)
        idle = ServiceMetrics()
        idle.command_latency["close"] = LatencyHistogram()  # count == 0
        a.merge(idle)
        assert _canon(a) == before
        assert "close" not in a.command_latency

    def test_zero_valued_novel_outcome_adds_no_key(self):
        a = _sample_metrics(12)
        before = _canon(a)
        other = ServiceMetrics()
        other.outcomes["exotic_outcome"] = 0
        a.merge(other)
        assert _canon(a) == before

    def test_empty_tenant_map_entry_adds_no_tenant(self):
        a = _sample_metrics(13)
        before = _canon(a)
        other = ServiceMetrics()
        other.per_tenant["ghost"] = {}
        other.per_tenant["ghost2"] = {"sessions_opened": 0}
        a.merge(other)
        assert _canon(a) == before
        assert "ghost" not in a.per_tenant
        assert "ghost2" not in a.per_tenant

    def test_wire_round_tripped_fresh_state_is_identity(self):
        """The exact gateway path: a fresh worker's to_state through
        JSON, from_state'd, then merged into live fleet totals."""
        a = _sample_metrics(14)
        before = _canon(a)
        fresh = ServiceMetrics.from_state(
            json.loads(json.dumps(ServiceMetrics().to_state()))
        )
        a.merge(fresh)
        assert _canon(a) == before

    def test_zero_count_merge_still_sums_into_existing_command(self):
        """The skip only applies to commands the target does not track:
        an existing histogram still absorbs the (empty) operand."""
        a = ServiceMetrics()
        a.record_latency("observe", 0.001)
        idle = ServiceMetrics()
        idle.command_latency["observe"] = LatencyHistogram()
        a.merge(idle)
        assert a.command_latency["observe"].count == 1
