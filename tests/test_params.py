"""Unit tests for the system-model parameters."""

import pytest

from repro.params import PAPER_PARAMS, SystemParams


class TestPaperConstants:
    def test_section_8_1_values(self):
        assert PAPER_PARAMS.t_hit == 0.243
        assert PAPER_PARAMS.t_driver == 0.580
        assert PAPER_PARAMS.t_disk == 15.0
        assert PAPER_PARAMS.t_cpu == 50.0

    def test_t_miss(self):
        """T_miss = T_driver + T_disk + T_hit (Section 6.2)."""
        assert PAPER_PARAMS.t_miss == pytest.approx(0.58 + 15.0 + 0.243)


class TestSystemParams:
    def test_access_period_compute(self):
        p = SystemParams()
        assert p.access_period_compute(2.0) == pytest.approx(
            50.0 + 0.243 + 2 * 0.58
        )

    def test_access_period_compute_validation(self):
        with pytest.raises(ValueError):
            SystemParams().access_period_compute(-1.0)

    def test_bytes_to_blocks(self):
        p = SystemParams(block_size=8192)
        assert p.bytes_to_blocks(30 * 1024 * 1024) == 3840
        assert p.bytes_to_blocks(5 * 1024 * 1024) == 640

    def test_with_t_cpu(self):
        p = PAPER_PARAMS.with_t_cpu(640.0)
        assert p.t_cpu == 640.0
        assert p.t_disk == PAPER_PARAMS.t_disk
        assert PAPER_PARAMS.t_cpu == 50.0  # original untouched

    def test_immutable(self):
        with pytest.raises(Exception):
            PAPER_PARAMS.t_disk = 1.0  # type: ignore[misc]

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemParams(t_disk=0.0)
        with pytest.raises(ValueError):
            SystemParams(t_hit=-1.0)
        with pytest.raises(ValueError):
            SystemParams(block_size=0)
        with pytest.raises(ValueError):
            SystemParams().bytes_to_blocks(-1)

    def test_as_dict(self):
        d = SystemParams().as_dict()
        assert d["t_disk"] == 15.0
        assert set(d) == {"t_hit", "t_driver", "t_disk", "t_cpu", "block_size"}

    def test_hashable(self):
        assert hash(SystemParams()) == hash(SystemParams())
