"""Regression tests on the paper's qualitative claims (Section 9).

Small/medium simulations asserting the *shape* results that define the
paper; the full-scale versions live in ``benchmarks/``.  Each claim cites
the paper section it reproduces.
"""

import pytest

from repro.params import PAPER_PARAMS
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.traces.synthetic import make_trace

REFS = 15_000
CACHE = 512


@pytest.fixture(scope="module")
def runs():
    """Miss rates for the main policies on all four workloads."""
    table = {}
    for trace_name in ("cello", "snake", "cad", "sitar"):
        trace = make_trace(trace_name, num_references=REFS)
        blocks = trace.as_list()
        table[trace_name] = {
            policy: simulate(PAPER_PARAMS, make_policy(policy), blocks, CACHE)
            for policy in (
                "no-prefetch", "next-limit", "tree", "tree-next-limit"
            )
        }
    return table


def reduction(base, other):
    return 100.0 * (base.miss_rate - other.miss_rate) / max(base.miss_rate, 1e-9)


class TestSection91MainComparison:
    def test_prefetching_always_helps_where_claimed(self, runs):
        """'In all cases, the prefetching strategies offer significant
        performance improvements over the system that performs no
        prefetching' (with CAD's next-limit as the stated exception)."""
        for trace in ("cello", "snake", "sitar"):
            base = runs[trace]["no-prefetch"]
            assert reduction(base, runs[trace]["tree-next-limit"]) > 10.0

    def test_cad_next_limit_useless(self, runs):
        """CAD: 'the next-limit scheme performs no better than the
        no-prefetch scheme'."""
        base = runs["cad"]["no-prefetch"]
        assert abs(reduction(base, runs["cad"]["next-limit"])) < 8.0

    def test_cad_tree_effective(self, runs):
        """CAD: tree-based prediction reduces misses substantially."""
        base = runs["cad"]["no-prefetch"]
        assert reduction(base, runs["cad"]["tree"]) > 10.0

    def test_sitar_next_limit_dominates(self, runs):
        """sitar: one-block lookahead cuts misses dramatically (paper 73%)."""
        base = runs["sitar"]["no-prefetch"]
        assert reduction(base, runs["sitar"]["next-limit"]) > 50.0

    def test_sitar_tree_adds_little_over_next_limit(self, runs):
        """sitar: 'tree-next-limit and next-limit perform similarly'."""
        nl = runs["sitar"]["next-limit"].miss_rate
        tnl = runs["sitar"]["tree-next-limit"].miss_rate
        assert abs(nl - tnl) < 6.0

    def test_gains_additive_cello_snake(self, runs):
        """Section 9.1: combined reduction ~ sum of individual reductions."""
        for trace in ("cello", "snake"):
            base = runs[trace]["no-prefetch"].miss_rate
            tree_gain = base - runs[trace]["tree"].miss_rate
            nl_gain = base - runs[trace]["next-limit"].miss_rate
            combined = base - runs[trace]["tree-next-limit"].miss_rate
            # Combined captures most of the summed gain and is at least
            # comparable to the better individual scheme.
            assert combined > 0.6 * max(tree_gain, nl_gain)
            assert combined < (tree_gain + nl_gain) + 10.0


class TestSection92TreeBehaviour:
    def test_less_prefetching_at_larger_caches(self):
        """Figure 8: prefetch volume falls as the cache grows."""
        trace = make_trace("cad", num_references=REFS).as_list()
        small = simulate(PAPER_PARAMS, make_policy("tree"), trace, 128)
        large = simulate(PAPER_PARAMS, make_policy("tree"), trace, 4096)
        assert large.prefetches_per_period <= small.prefetches_per_period

    def test_candidates_cached_rises_with_cache(self):
        """Figure 7: more candidates already resident at larger caches."""
        trace = make_trace("cad", num_references=REFS).as_list()
        small = simulate(PAPER_PARAMS, make_policy("tree"), trace, 128)
        large = simulate(PAPER_PARAMS, make_policy("tree"), trace, 4096)
        assert (
            large.candidates_already_cached_rate
            >= small.candidates_already_cached_rate - 5.0
        )

    def test_cad_leads_prefetch_hit_rate(self, runs):
        """Figure 9: CAD's prefetch-cache hit rate tops cello's."""
        assert (
            runs["cad"]["tree"].prefetch_cache_hit_rate
            > runs["cello"]["tree"].prefetch_cache_hit_rate
        )

    def test_cad_leads_mean_probability(self, runs):
        """Figure 10: CAD prefetches carry higher average probability."""
        assert (
            runs["cad"]["tree"].mean_prefetched_probability
            > runs["cello"]["tree"].mean_prefetched_probability
        )


class TestSection94Predictability:
    def test_cello_least_predictable(self, runs):
        """Table 2: cello's prediction accuracy trails all other traces."""
        acc = {t: runs[t]["tree"].prediction_accuracy for t in runs}
        assert acc["cello"] == min(acc.values())

    def test_lvc_ordering(self, runs):
        """Table 3: cello < snake < CAD/sitar, in both LVC measures."""
        for metric in ("lvc_repeat_rate", "lvc_repeat_rate_nonroot"):
            vals = {t: getattr(runs[t]["tree"], metric) for t in runs}
            assert vals["cello"] < vals["snake"]
            assert vals["snake"] < max(vals["cad"], vals["sitar"])


class TestSection95Oracle:
    def test_perfect_selector_beats_tree(self):
        """Figure 15: considerable headroom in candidate selection."""
        trace = make_trace("cad", num_references=REFS).as_list()
        tree = simulate(PAPER_PARAMS, make_policy("tree"), trace, CACHE)
        oracle = simulate(
            PAPER_PARAMS, make_policy("perfect-selector"), trace, CACHE
        )
        assert oracle.miss_rate < tree.miss_rate


class TestSection97CostBenefit:
    def test_tree_matches_best_threshold(self):
        """Figure 17 / Table 4: the untuned tree is close to the best-tuned
        tree-threshold configuration."""
        trace = make_trace("cad", num_references=REFS).as_list()
        tree = simulate(PAPER_PARAMS, make_policy("tree"), trace, CACHE)
        best = min(
            simulate(
                PAPER_PARAMS,
                make_policy("tree-threshold", threshold=t),
                trace,
                CACHE,
            ).miss_rate
            for t in (0.002, 0.025, 0.1, 0.4)
        )
        assert tree.miss_rate <= best + 6.0

    def test_threshold_choice_matters(self):
        """Table 4: a bad threshold costs real misses."""
        trace = make_trace("cad", num_references=REFS).as_list()
        misses = [
            simulate(
                PAPER_PARAMS,
                make_policy("tree-threshold", threshold=t),
                trace,
                CACHE,
            ).miss_rate
            for t in (0.002, 0.025, 0.1, 0.4)
        ]
        assert max(misses) > min(misses)
