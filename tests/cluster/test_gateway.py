"""Gateway behavior with in-process workers: parity, routing, failover.

Workers here are :class:`BackgroundServer` instances registered in a
:class:`StaticWorkerDirectory`, so death and recovery are driven
explicitly — the subprocess supervisor has its own tests in
``test_fleet.py``.
"""

import asyncio

import pytest

from repro.cluster import AdvisoryGateway, StaticWorkerDirectory
from repro.service import protocol
from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.faults import ChaosProxy, FaultPlan
from repro.service.server import BackgroundServer, PrefetchService
from repro.service.session import PrefetchSession
from repro.traces.synthetic import make_trace

CACHE = 64


def _blocks(refs, name="cad", seed=1999):
    return make_trace(name, num_references=refs, seed=seed).as_list()


def _fault_free_advice(blocks):
    session = PrefetchSession(policy="tree", cache_size=CACHE)
    return [session.observe(block).as_dict() for block in blocks]


class _Fleet:
    """N BackgroundServer workers + a gateway, wired synchronously."""

    def __init__(self, count, checkpoint_dir=None, **gateway_kwargs):
        self.checkpoint_dir = checkpoint_dir
        self.directory = StaticWorkerDirectory()
        self.workers = {}
        for i in range(count):
            worker_id = f"w{i}"
            server = BackgroundServer(service=PrefetchService(
                identity=worker_id, checkpoint_dir=checkpoint_dir,
            )).start().wait_ready()
            self.workers[worker_id] = server
            self.directory.register(worker_id, "127.0.0.1", server.port)
        self.gateway = AdvisoryGateway(
            self.directory, request_timeout_s=5.0,
            checkpoint_dir=checkpoint_dir, **gateway_kwargs
        )

    async def __aenter__(self):
        await self.gateway.start(port=0)
        return self

    async def __aexit__(self, *exc_info):
        await self.gateway.aclose()
        for server in self.workers.values():
            await asyncio.to_thread(server.stop)

    def kill(self, worker_id, *, checkpoint_first=False):
        server = self.workers[worker_id]
        if checkpoint_first:
            assert self.checkpoint_dir is not None
            server.service.checkpoint_sessions(self.checkpoint_dir)
        server.stop()
        self.directory.mark_down(worker_id)


class TestParity:
    def test_gateway_advice_is_bit_identical_to_bare_server(self):
        """The acceptance criterion: same trace, same advice bytes."""
        blocks = _blocks(400)

        async def through_gateway():
            async with _Fleet(3) as fleet:
                client = await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                )
                assert client.hello.server == "repro.gateway"
                async with client:
                    sid = await client.open(policy="tree", cache_size=CACHE)
                    got = [
                        (await client.observe(sid, block)).as_dict()
                        for block in blocks
                    ]
                    final = await client.close_session(sid)
                return got, final

        got, final = asyncio.run(through_gateway())
        assert got == _fault_free_advice(blocks)
        assert final["accesses"] == len(blocks)

    def test_sessions_spread_across_workers(self):
        async def scenario():
            async with _Fleet(3) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    for _ in range(24):
                        await client.open(policy="no-prefetch", cache_size=8)
                    placed = {
                        session.worker_id
                        for session in fleet.gateway.sessions.values()
                    }
                return placed

        assert len(asyncio.run(scenario())) > 1

    def test_replay_load_generator_works_unchanged(self):
        """The stock replay client needs zero changes to use a fleet."""
        from repro.service.replay import replay_async

        blocks = _blocks(300)

        async def scenario():
            async with _Fleet(2) as fleet:
                return await replay_async(
                    blocks, port=fleet.gateway.port, clients=3,
                    policy="tree", cache_size=CACHE,
                )

        report = asyncio.run(scenario())
        assert report.requests == 3 * len(blocks)
        assert report.clients == 3


class TestFailover:
    def test_worker_death_resumes_from_checkpoint_on_successor(
        self, tmp_path
    ):
        """Advice parity across a mid-stream worker kill."""
        blocks = _blocks(400)
        ckpt = str(tmp_path / "ckpt")

        async def scenario():
            async with _Fleet(2, checkpoint_dir=ckpt) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    sid = await client.open(policy="tree", cache_size=CACHE)
                    got = [
                        (await client.observe(sid, block)).as_dict()
                        for block in blocks[:250]
                    ]
                    victim = fleet.gateway.sessions[sid].worker_id
                    fleet.kill(victim, checkpoint_first=True)
                    # keep observing straight through the failover
                    got += [
                        (await client.observe(sid, block)).as_dict()
                        for block in blocks[250:]
                    ]
                    final = await client.close_session(sid)
                    moved_to = victim  # session record is gone post-close
                    stats = fleet.gateway.stats
                    return got, final, victim, moved_to, stats

        got, final, victim, _, stats = asyncio.run(scenario())
        assert got == _fault_free_advice(blocks)
        assert final["accesses"] == len(blocks)
        assert stats.failovers_resumed == 1
        assert stats.failovers_degraded == 0
        assert stats.sessions_lost == 0

    def test_stale_checkpoint_tail_is_replayed_from_journal(self, tmp_path):
        """Checkpoint early, keep folding, then kill: the journal must
        replay the un-checkpointed tail decision-identically."""
        blocks = _blocks(300)
        ckpt = str(tmp_path / "ckpt")

        async def scenario():
            async with _Fleet(2, checkpoint_dir=ckpt) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    sid = await client.open(policy="tree", cache_size=CACHE)
                    got = []
                    for i, block in enumerate(blocks):
                        if i == 100:
                            victim = fleet.gateway.sessions[sid].worker_id
                            fleet.workers[victim].service.\
                                checkpoint_sessions(ckpt)
                        if i == 200:
                            fleet.kill(victim)
                        got.append(
                            (await client.observe(sid, block)).as_dict()
                        )
                    await client.close_session(sid)
                    return got, fleet.gateway.stats

        got, stats = asyncio.run(scenario())
        assert got == _fault_free_advice(blocks)
        assert stats.failovers_resumed == 1
        assert stats.sessions_lost == 0

    def test_no_checkpoint_falls_back_to_degraded(self):
        """Without a checkpoint dir the session survives as a degraded
        no-prefetch session rebuilt from the gateway journal — advice
        stops, the session does not error."""
        blocks = _blocks(200)

        async def scenario():
            async with _Fleet(2) as fleet:  # no checkpoint_dir
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    sid = await client.open(policy="tree", cache_size=CACHE)
                    for block in blocks[:100]:
                        await client.observe(sid, block)
                    fleet.kill(fleet.gateway.sessions[sid].worker_id)
                    advice = [
                        await client.observe(sid, block)
                        for block in blocks[100:]
                    ]
                    stats_snapshot = await client.stats(sid)
                    final = await client.close_session(sid)
                    return advice, stats_snapshot, final, \
                        fleet.gateway.stats

        advice, snapshot, final, stats = asyncio.run(scenario())
        assert stats.failovers_degraded == 1
        assert stats.sessions_lost == 0
        assert snapshot["policy"] == "no-prefetch"
        assert snapshot["degraded"]
        # the rebuilt session kept the full history
        assert final["accesses"] == len(blocks)
        assert all(not a.prefetch for a in advice)

    def test_eager_failover_moves_idle_sessions(self, tmp_path):
        """A session idle at kill time is moved by the membership event,
        not by its next request."""
        ckpt = str(tmp_path / "ckpt")

        async def scenario():
            async with _Fleet(2, checkpoint_dir=ckpt) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    sid = await client.open(policy="tree", cache_size=CACHE)
                    for block in _blocks(50):
                        await client.observe(sid, block)
                    victim = fleet.gateway.sessions[sid].worker_id
                    fleet.kill(victim, checkpoint_first=True)
                    for _ in range(100):  # idle: no requests in flight
                        await asyncio.sleep(0.02)
                        if fleet.gateway.sessions[sid].worker_id != victim:
                            break
                    return victim, fleet.gateway.sessions[sid].worker_id

        victim, now_on = asyncio.run(scenario())
        assert now_on != victim

    def test_session_with_no_state_anywhere_is_lost_cleanly(self):
        """Kill every checkpointless path: the client gets a one-line
        error, the gateway stays up, other sessions are unaffected."""

        async def scenario():
            async with _Fleet(2) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    sid = await client.open(policy="tree", cache_size=CACHE)
                    for block in _blocks(30):
                        await client.observe(sid, block)
                    victim = fleet.gateway.sessions[sid].worker_id
                    # Sabotage the degraded path too: kill BOTH workers,
                    # then bring only a fresh one up for later traffic.
                    for worker_id in list(fleet.workers):
                        fleet.kill(worker_id)
                    with pytest.raises((ServiceError, ConnectionError)):
                        await client.observe(sid, 1)
                    return fleet.gateway.stats

        stats = asyncio.run(scenario())
        assert stats.sessions_lost == 1


class TestReattach:
    def test_dropped_client_resumes_its_session(self):
        """Client vanishes without CLOSE; a new connection resumes the
        orphaned session by id and continues where it left off."""
        blocks = _blocks(200)

        async def scenario():
            async with _Fleet(2) as fleet:
                client1 = await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                )
                sid = await client1.open(policy="tree", cache_size=CACHE)
                got = [
                    (await client1.observe(sid, block)).as_dict()
                    for block in blocks[:120]
                ]
                client1._writer.transport.abort()  # vanish
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    if fleet.gateway.stats.sessions_orphaned:
                        break
                client2 = await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                )
                resumed = await client2.open_session(resume=sid)
                assert resumed.resumed
                assert resumed.period == 120
                got += [
                    (await client2.observe(sid, block)).as_dict()
                    for block in blocks[120:]
                ]
                await client2.close_session(sid)
                await client2.aclose()
                return got, fleet.gateway.stats

        got, stats = asyncio.run(scenario())
        assert got == _fault_free_advice(blocks)
        assert stats.sessions_reattached == 1

    def test_resume_of_attached_session_is_rejected(self):
        async def scenario():
            async with _Fleet(1) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    sid = await client.open(policy="no-prefetch", cache_size=8)
                    with pytest.raises(ServiceError) as excinfo:
                        await client.open_session(resume=sid)
                    return excinfo.value.code

        assert asyncio.run(scenario()) == protocol.E_SESSION_ERROR


class TestChaosBetweenGatewayAndWorker:
    def test_faulty_worker_link_fails_over_not_out(self, tmp_path):
        """A ChaosProxy in front of one worker corrupts the gateway's
        upstream replies; the gateway must absorb the faults via
        failover while the client sees only clean protocol."""
        blocks = _blocks(300)
        ckpt = str(tmp_path / "ckpt")

        async def scenario():
            async with _Fleet(2, checkpoint_dir=ckpt) as fleet:
                # Re-register w0 behind a reply-corrupting proxy.
                behind = fleet.workers["w0"].port
                plan = FaultPlan(reset_every=40)
                async with ChaosProxy(port=behind, plan=plan) as proxy:
                    fleet.directory.register("w0", "127.0.0.1", proxy.port)
                    fleet.gateway._links.pop("w0", None)
                    async with await AsyncServiceClient.connect(
                        port=fleet.gateway.port
                    ) as client:
                        sids = [
                            await client.open(
                                policy="tree", cache_size=CACHE
                            )
                            for _ in range(4)
                        ]
                        got = {sid: [] for sid in sids}
                        for block in blocks:
                            for sid in sids:
                                advice = await client.observe(sid, block)
                                got[sid].append(advice.as_dict())
                        for sid in sids:
                            await client.close_session(sid)
                    return got, proxy.stats, fleet.gateway.stats

        got, proxy_stats, gateway_stats = asyncio.run(scenario())
        want = _fault_free_advice(blocks)
        for sid, advice in got.items():
            assert advice == want, f"{sid} diverged"
        assert proxy_stats.resets_injected > 0  # chaos actually fired
        assert gateway_stats.sessions_lost == 0


class TestFleetStats:
    def test_server_level_stats_aggregates_workers(self):
        async def scenario():
            async with _Fleet(3) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    sids = [
                        await client.open(policy="no-prefetch", cache_size=8)
                        for _ in range(9)
                    ]
                    for sid in sids:
                        await client.observe(sid, 1)
                    stats = await client.server_stats()
                return stats

        stats = asyncio.run(scenario())
        assert stats["server"] == "repro.gateway"
        assert stats["workers"] == 3
        assert stats["fleet"]["sessions_opened"] == 9
        assert stats["fleet"]["advice_issued"] == 9
        per_worker = stats["per_worker"]
        assert set(per_worker) == {"w0", "w1", "w2"}
        assert sum(w["sessions_opened"] for w in per_worker.values()) == 9
        assert stats["gateway"]["sessions_opened"] == 9

    def test_worker_identity_in_direct_stats(self):
        async def scenario():
            async with _Fleet(1) as fleet:
                worker_port = fleet.workers["w0"].port
                async with await AsyncServiceClient.connect(
                    port=worker_port
                ) as client:
                    return await client.server_stats()

        stats = asyncio.run(scenario())
        assert stats["server"] == "repro.service"
        assert stats["worker"] == "w0"
        assert "metrics_state" in stats


class TestJournalCompaction:
    def test_journal_is_bounded_by_durable_checkpoints(self, tmp_path):
        """Once a checkpoint has proven a prefix durable, the gateway
        drops that prefix from the per-session journal — and a later
        failover still replays the tail decision-identically from the
        compacted journal."""
        blocks = _blocks(400)
        ckpt = str(tmp_path / "ckpt")

        async def scenario():
            async with _Fleet(
                2, checkpoint_dir=ckpt, journal_compact_after=64
            ) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    sid = await client.open(policy="tree", cache_size=CACHE)
                    got = [
                        (await client.observe(sid, block)).as_dict()
                        for block in blocks[:200]
                    ]
                    victim = fleet.gateway.sessions[sid].worker_id
                    # the periodic checkpoint tick, fired by hand
                    fleet.workers[victim].service.checkpoint_sessions(ckpt)
                    got += [
                        (await client.observe(sid, block)).as_dict()
                        for block in blocks[200:300]
                    ]
                    session = fleet.gateway.sessions[sid]
                    offset = session.journal_offset
                    kept = len(session.journal)
                    compactions = fleet.gateway.stats.journal_compactions
                    # Failover must work from the compacted journal: no
                    # fresh checkpoint, so the tail comes from it alone.
                    fleet.kill(victim)
                    got += [
                        (await client.observe(sid, block)).as_dict()
                        for block in blocks[300:]
                    ]
                    final = await client.close_session(sid)
                    stats = fleet.gateway.stats
                return got, final, offset, kept, compactions, stats

        got, final, offset, kept, compactions, stats = asyncio.run(scenario())
        assert got == _fault_free_advice(blocks)
        assert final["accesses"] == len(blocks)
        # The checkpoint covered periods [0, 200): exactly that prefix
        # was dropped, and only once — re-reads of the same snapshot are
        # no-ops.
        assert offset == 200
        assert kept == 100
        assert compactions == 1
        assert stats.failovers_resumed == 1
        assert stats.sessions_lost == 0

    def test_uncheckpointed_journal_is_never_compacted(self):
        """No checkpoint dir: the journal may grow past the threshold
        but nothing is dropped — every entry might still be needed."""

        async def scenario():
            async with _Fleet(2, journal_compact_after=16) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    sid = await client.open(policy="no-prefetch",
                                            cache_size=8)
                    for block in range(40):
                        await client.observe(sid, block)
                    session = fleet.gateway.sessions[sid]
                    return (session.journal_offset, len(session.journal),
                            fleet.gateway.stats.journal_compactions)

        offset, kept, compactions = asyncio.run(scenario())
        assert offset == 0
        assert kept == 40
        assert compactions == 0
