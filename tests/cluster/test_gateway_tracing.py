"""Trace propagation through the gateway: full paths, failover lineage.

The acceptance criterion for the tracing layer: spans written by three
separate components (replay client, gateway, worker) into one trace
directory must reassemble into a complete
client -> gateway -> worker -> predictor timing breakdown for a sampled
request, and a gateway failover must keep the session's trace lineage —
the resumed session's spans ride the original trace id and the break
itself is recorded as a ``gateway.failover`` span with ``failover=1``.
"""

import asyncio

from repro.cluster import AdvisoryGateway, StaticWorkerDirectory
from repro.obs.trace import Tracer, derive_trace_id, read_spans
from repro.service.client import AsyncServiceClient
from repro.service.replay import replay_async
from repro.service.server import BackgroundServer, PrefetchService
from repro.traces.synthetic import make_trace

CACHE = 64


def _blocks(refs):
    return make_trace("cad", num_references=refs, seed=1999).as_list()


class _TracedFleet:
    """Workers + gateway, every component tracing into one directory."""

    def __init__(self, count, trace_dir, *, seed=0, checkpoint_dir=None):
        self.trace_dir = trace_dir
        self.checkpoint_dir = checkpoint_dir
        self.directory = StaticWorkerDirectory()
        self.workers = {}
        for i in range(count):
            worker_id = f"w{i}"
            server = BackgroundServer(service=PrefetchService(
                identity=worker_id, checkpoint_dir=checkpoint_dir,
                tracer=Tracer(
                    worker_id, trace_dir=trace_dir, sample=1.0, seed=seed,
                ),
            )).start().wait_ready()
            self.workers[worker_id] = server
            self.directory.register(worker_id, "127.0.0.1", server.port)
        self.gateway = AdvisoryGateway(
            self.directory, request_timeout_s=5.0,
            checkpoint_dir=checkpoint_dir,
            tracer=Tracer(
                "gateway", trace_dir=trace_dir, sample=1.0, seed=seed,
            ),
        )

    async def __aenter__(self):
        await self.gateway.start(port=0)
        return self

    async def __aexit__(self, *exc_info):
        await self.gateway.aclose()
        for server in self.workers.values():
            await asyncio.to_thread(server.stop)

    def kill(self, worker_id, *, checkpoint_first=False):
        server = self.workers[worker_id]
        if checkpoint_first:
            server.service.checkpoint_sessions(self.checkpoint_dir)
        server.stop()
        self.directory.mark_down(worker_id)


def _by_trace(trace_dir):
    grouped = {}
    for span in read_spans(str(trace_dir)):
        grouped.setdefault(span["trace"], []).append(span)
    return grouped


class TestFullPath:
    def test_spans_reconstruct_client_gateway_worker_path(self, tmp_path):
        """One traced replay session yields every hop's spans under one
        trace id — the complete per-request timing breakdown."""
        blocks = _blocks(60)

        async def scenario():
            client_tracer = Tracer(
                "client", trace_dir=str(tmp_path), sample=1.0, seed=7,
            )
            async with _TracedFleet(2, str(tmp_path)) as fleet:
                report = await replay_async(
                    blocks, port=fleet.gateway.port, clients=1,
                    policy="tree", cache_size=CACHE, tracer=client_tracer,
                )
            client_tracer.close()
            return report

        report = asyncio.run(scenario())
        assert report.requests == len(blocks)

        # The client minted the id: deterministic from (seed, c0:s0).
        trace_id = derive_trace_id(7, "c0:s0")
        grouped = _by_trace(tmp_path)
        assert trace_id in grouped, sorted(grouped)
        spans = grouped[trace_id]

        by_name = {}
        for span in spans:
            by_name.setdefault(span["span"], []).append(span)

        # every hop of the path, client -> gateway -> worker -> predictor
        for stage in (
            "client.open", "gateway.admission", "gateway.ring_lookup",
            "gateway.worker_rpc", "gateway.reply_relay",
            "worker.open", "worker.predictor_step", "client.rpc",
        ):
            assert stage in by_name, f"missing {stage}: {sorted(by_name)}"

        # the worker's spans name the component that served the session
        worker_components = {
            span["component"] for span in by_name["worker.predictor_step"]
        }
        assert len(worker_components) == 1
        assert worker_components < set(f"w{i}" for i in range(2))

        # per-request coverage: each of the 60 observes produced a client
        # rpc span, a gateway relay span, and a predictor step
        assert len(by_name["client.rpc"]) == len(blocks)
        assert len(by_name["worker.predictor_step"]) == len(blocks)
        assert len(by_name["gateway.worker_rpc"]) >= len(blocks)

        # timing nests: the predictor step is a fraction of the client's
        # end-to-end rpc time for the same request count
        predictor_s = sum(
            span["dur_us"] for span in by_name["worker.predictor_step"]
        )
        rpc_s = sum(span["dur_us"] for span in by_name["client.rpc"])
        assert 0 < predictor_s < rpc_s

    def test_unsampled_sessions_leave_no_spans(self, tmp_path):
        blocks = _blocks(20)

        async def scenario():
            client_tracer = Tracer(
                "client", trace_dir=str(tmp_path), sample=0.0, seed=7,
            )
            async with _TracedFleet(1, str(tmp_path)) as fleet:
                # gateway/worker sample at 1.0 but follow the client's
                # head decision: no trace field on OPEN means the
                # gateway mints its own id instead — so force the
                # whole-path-off case via gateway sample 0 too
                fleet.gateway.tracer.sample = 0.0
                fleet.workers["w0"].service.tracer.sample = 0.0
                await replay_async(
                    blocks, port=fleet.gateway.port, clients=1,
                    policy="tree", cache_size=CACHE, tracer=client_tracer,
                )
            client_tracer.close()

        asyncio.run(scenario())
        assert list(read_spans(str(tmp_path))) == []


class TestFailoverLineage:
    def test_resumed_session_keeps_trace_id_and_records_failover(
        self, tmp_path
    ):
        """A mid-stream worker kill must not fork the trace: the
        successor worker's spans join the original id, and the gateway
        records the break as ``gateway.failover`` with ``failover=1``."""
        blocks = _blocks(120)
        trace_dir = tmp_path / "traces"
        ckpt = str(tmp_path / "ckpt")
        trace_id = "feedfacecafe0001"

        async def scenario():
            async with _TracedFleet(
                2, str(trace_dir), checkpoint_dir=ckpt
            ) as fleet:
                async with await AsyncServiceClient.connect(
                    port=fleet.gateway.port
                ) as client:
                    reply = await client.open_session(
                        policy="tree", cache_size=CACHE, trace=trace_id,
                    )
                    assert reply.trace == trace_id  # echo: spans join
                    sid = reply.session
                    for block in blocks[:60]:
                        await client.observe(sid, block)
                    victim = fleet.gateway.sessions[sid].worker_id
                    fleet.kill(victim, checkpoint_first=True)
                    for block in blocks[60:]:
                        await client.observe(sid, block)
                    await client.close_session(sid)
                    return victim, fleet.gateway.stats

        victim, stats = asyncio.run(scenario())
        assert stats.failovers_resumed == 1

        spans = _by_trace(trace_dir).get(trace_id, [])
        assert spans, "no spans recorded for the session's trace id"

        failover = [s for s in spans if s["span"] == "gateway.failover"]
        assert len(failover) == 1
        assert failover[0]["failover"] == 1
        assert failover[0]["component"] == "gateway"

        # both the victim and its successor served under the SAME trace
        steps = [s for s in spans if s["span"] == "worker.predictor_step"]
        served_by = {s["component"] for s in steps}
        assert victim in served_by
        assert len(served_by) == 2, served_by
        assert len(steps) == len(blocks)

        # the successor's resume shows up as a worker.open with resumed=1
        opens = [s for s in spans if s["span"] == "worker.open"]
        assert {s["component"] for s in opens} == served_by
        assert any(s["resumed"] == 1 for s in opens)
