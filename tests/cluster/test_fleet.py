"""Full-stack fleet tests: real ``repro serve`` subprocesses under a
WorkerSupervisor, fronted by an AdvisoryGateway.

These are the slowest tests in the tree (each spawns interpreters), so
the scenarios are few and each one earns its keep: supervisor restart
mechanics, and the headline acceptance run — a replay that SIGKILLs a
worker mid-stream and still loses zero sessions.
"""

import asyncio
import os
import signal

import pytest

from repro.cluster import AdvisoryGateway, WorkerSupervisor
from repro.service.client import AsyncServiceClient
from repro.service.session import PrefetchSession
from repro.traces.synthetic import make_trace

CACHE = 64


def _blocks(refs, name="cad", seed=1999):
    return make_trace(name, num_references=refs, seed=seed).as_list()


def _fault_free_advice(blocks):
    session = PrefetchSession(policy="tree", cache_size=CACHE)
    return [session.observe(block).as_dict() for block in blocks]


def _fast_supervisor(**kwargs):
    kwargs.setdefault("probe_interval_s", 0.2)
    kwargs.setdefault("restart_backoff_s", 0.05)
    return WorkerSupervisor(kwargs.pop("count", 2), **kwargs)


async def _wait_for(predicate, *, timeout_s=30.0, interval_s=0.05):
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not predicate():
        if asyncio.get_running_loop().time() >= deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval_s)


class TestSupervisor:
    def test_spawns_and_serves(self):
        async def scenario():
            async with _fast_supervisor(count=2) as supervisor:
                endpoints = supervisor.endpoints()
                assert set(endpoints) == {"w0", "w1"}
                _, port = endpoints["w0"]
                async with await AsyncServiceClient.connect(
                    port=port
                ) as client:
                    stats = await client.server_stats()
                return stats

        stats = asyncio.run(scenario())
        assert stats["worker"] == "w0"

    def test_sigkill_triggers_restart_on_fresh_port(self):
        async def scenario():
            events = []
            async with _fast_supervisor(count=2) as supervisor:
                supervisor.add_listener(
                    lambda wid, up: events.append((wid, up))
                )
                victim = supervisor.workers["w0"]
                old_pid = victim.proc.pid
                os.kill(old_pid, signal.SIGKILL)
                await _wait_for(
                    lambda: supervisor.workers_restarted >= 1
                    and victim.up
                )
                assert victim.proc.pid != old_pid
                # restarted worker actually serves
                _, port = supervisor.endpoints()["w0"]
                async with await AsyncServiceClient.connect(
                    port=port
                ) as client:
                    stats = await client.server_stats()
                assert stats["worker"] == "w0"
                return events, supervisor.workers_restarted

        events, restarted = asyncio.run(scenario())
        assert restarted == 1
        assert ("w0", False) in events and ("w0", True) in events

    def test_stop_terminates_all_workers(self):
        async def scenario():
            supervisor = _fast_supervisor(count=2)
            await supervisor.start()
            pids = [w.proc.pid for w in supervisor.workers.values()]
            await supervisor.stop()
            return pids

        for pid in asyncio.run(scenario()):
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


class TestAcceptance:
    def test_replay_survives_worker_sigkill(self, tmp_path):
        """ISSUE acceptance: mid-replay SIGKILL of one worker completes
        with sessions_lost=0 and decision-identical advice, sessions
        failing over to the successor via the shared checkpoint dir."""
        blocks = _blocks(600)
        ckpt = str(tmp_path / "ckpt")

        async def scenario():
            supervisor = _fast_supervisor(
                count=3, checkpoint_dir=ckpt, checkpoint_every_s=0.2,
            )
            async with supervisor:
                gateway = AdvisoryGateway(supervisor, request_timeout_s=10.0)
                await gateway.start(port=0)
                try:
                    async with await AsyncServiceClient.connect(
                        port=gateway.port
                    ) as client:
                        sids = [
                            await client.open(
                                policy="tree", cache_size=CACHE
                            )
                            for _ in range(6)
                        ]
                        got = {sid: [] for sid in sids}
                        for i, block in enumerate(blocks):
                            if i == len(blocks) // 2:
                                # let periodic checkpointing cover the
                                # prefix, then murder a loaded worker
                                await asyncio.sleep(0.5)
                                victim_id = gateway.sessions[
                                    sids[0]
                                ].worker_id
                                victim = supervisor.workers[victim_id]
                                os.kill(victim.proc.pid, signal.SIGKILL)
                            for sid in sids:
                                advice = await client.observe(sid, block)
                                got[sid].append(advice.as_dict())
                        for sid in sids:
                            await client.close_session(sid)
                    return (
                        got,
                        gateway.stats,
                        supervisor.workers_restarted,
                    )
                finally:
                    await gateway.aclose()

        got, stats, restarted = asyncio.run(scenario())
        want = _fault_free_advice(blocks)
        for sid, advice in got.items():
            assert advice == want, f"{sid} diverged after failover"
        assert stats.sessions_lost == 0
        assert stats.failovers_degraded == 0
        assert stats.failovers_resumed >= 1
        assert restarted >= 1
