"""Consistent-hash ring: determinism, balance, succession."""

import os
import subprocess
import sys

import pytest

import repro

from repro.cluster.ring import DEFAULT_VNODES, HashRing

KEYS = [f"g{i}" for i in range(1000)]


class TestPlacement:
    def test_deterministic_across_instances(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # insertion order is irrelevant
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_deterministic_across_processes(self):
        """Placement must not depend on PYTHONHASHSEED."""
        script = (
            "from repro.cluster.ring import HashRing\n"
            "r = HashRing(['w0', 'w1', 'w2'])\n"
            "print(''.join(r.owner(f'g{i}')[-1] for i in range(64)))\n"
        )
        src = os.path.dirname(os.path.dirname(repro.__file__))
        runs = set()
        for seed in ("1", "2"):
            env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=seed)
            runs.add(subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            ).stdout)
        assert len(runs) == 1

    def test_balance_within_factor_two(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        spread = ring.spread(KEYS)
        assert set(spread) == {"w0", "w1", "w2", "w3"}
        assert min(spread.values()) > 0
        assert max(spread.values()) <= 2 * min(spread.values())

    def test_single_node_owns_everything(self):
        ring = HashRing(["w0"])
        assert all(ring.owner(k) == "w0" for k in KEYS[:50])

    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        assert ring.owner("g1") is None
        assert ring.preference("g1") == []

    def test_vnodes_validation(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)


class TestSuccession:
    def test_removal_moves_only_the_dead_nodes_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {k: ring.owner(k) for k in KEYS}
        ring.remove("w1")
        after = {k: ring.owner(k) for k in KEYS}
        moved = [k for k in KEYS if before[k] != after[k]]
        assert moved  # something was on w1
        assert all(before[k] == "w1" for k in moved)
        assert "w1" not in set(after.values())

    def test_exclude_matches_removal(self):
        """exclude= must route exactly like remove() would — it is the
        failover path before the ring has been told about the death."""
        ring = HashRing(["w0", "w1", "w2"])
        excluded = [ring.owner(k, exclude={"w1"}) for k in KEYS]
        ring.remove("w1")
        removed = [ring.owner(k) for k in KEYS]
        assert excluded == removed

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in KEYS[:50]:
            preference = ring.preference(key)
            assert preference[0] == ring.owner(key)
            assert sorted(preference) == ["w0", "w1", "w2"]

    def test_readd_restores_placement(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {k: ring.owner(k) for k in KEYS}
        ring.remove("w2")
        ring.add("w2")
        assert {k: ring.owner(k) for k in KEYS} == before

    def test_membership_helpers(self):
        ring = HashRing(["w0"], vnodes=DEFAULT_VNODES)
        assert "w0" in ring and len(ring) == 1
        ring.add("w0")  # idempotent
        assert len(ring) == 1
        ring.remove("missing")  # no-op
        assert ring.nodes == frozenset({"w0"})
