"""Per-worker circuit breakers at the gateway: trip, route around, close.

Workers are :class:`BackgroundServer` instances behind a
:class:`StaticWorkerDirectory`, mirroring ``test_gateway.py`` — but here
the directory is deliberately *not* told about deaths: the breaker is
the detection path under test.
"""

import asyncio

from repro.cluster import AdvisoryGateway, StaticWorkerDirectory
from repro.service.client import AsyncServiceClient
from repro.service.overload import BreakerPolicy
from repro.service.replay import replay_async
from repro.service.server import BackgroundServer, PrefetchService
from repro.service.session import PrefetchSession
from repro.traces.synthetic import make_trace

CACHE = 64


def _blocks(refs, name="cad", seed=1999):
    return make_trace(name, num_references=refs, seed=seed).as_list()


def _fault_free_advice(blocks):
    session = PrefetchSession(policy="tree", cache_size=CACHE)
    return [session.observe(block).as_dict() for block in blocks]


class _Fleet:
    """Two workers + a gateway; deaths are never reported to the
    directory, so only the breaker can notice them."""

    def __init__(self, checkpoint_dir=None, **gateway_kwargs):
        self.checkpoint_dir = checkpoint_dir
        self.directory = StaticWorkerDirectory()
        self.workers = {}
        for i in range(2):
            worker_id = f"w{i}"
            server = BackgroundServer(service=PrefetchService(
                identity=worker_id, checkpoint_dir=checkpoint_dir,
            )).start().wait_ready()
            self.workers[worker_id] = server
            self.directory.register(worker_id, "127.0.0.1", server.port)
        self.gateway = AdvisoryGateway(
            self.directory, request_timeout_s=5.0, **gateway_kwargs
        )

    async def __aenter__(self):
        await self.gateway.start(port=0)
        return self

    async def __aexit__(self, *exc_info):
        await self.gateway.aclose()
        for server in self.workers.values():
            await asyncio.to_thread(server.stop)

    def silent_kill(self, worker_id, *, checkpoint_first=True):
        """Stop a worker without telling the directory."""
        server = self.workers[worker_id]
        if checkpoint_first:
            assert self.checkpoint_dir is not None
            server.service.checkpoint_sessions(self.checkpoint_dir)
        server.stop()


def test_dead_worker_trips_breaker_and_sessions_resume_on_successor(
    tmp_path,
):
    """Kill a worker silently: the first failed call trips its breaker,
    every session it held fails over to the ring successor from the
    checkpoint, and new OPENs route around the open breaker."""
    blocks = _blocks(300)
    ckpt = str(tmp_path / "ckpt")

    async def scenario():
        async with _Fleet(
            checkpoint_dir=ckpt,
            breaker=BreakerPolicy(failure_threshold=1, cooldown_s=30.0),
        ) as fleet:
            async with await AsyncServiceClient.connect(
                port=fleet.gateway.port
            ) as client:
                sid = await client.open(policy="tree", cache_size=CACHE)
                got = [
                    (await client.observe(sid, block)).as_dict()
                    for block in blocks[:150]
                ]
                victim = fleet.gateway.sessions[sid].worker_id
                fleet.silent_kill(victim)
                got += [
                    (await client.observe(sid, block)).as_dict()
                    for block in blocks[150:]
                ]
                # With the breaker open, a fresh OPEN must avoid the
                # dead worker without waiting out a connect failure.
                sid2 = await client.open(policy="no-prefetch", cache_size=8)
                placed = fleet.gateway.sessions[sid2].worker_id
                final = await client.close_session(sid)
                stats = fleet.gateway.stats
                breaker = fleet.gateway._breaker(victim)
                return got, final, victim, placed, stats, breaker.state

    got, final, victim, placed, stats, state = asyncio.run(scenario())
    assert got == _fault_free_advice(blocks)
    assert final["accesses"] == len(blocks)
    assert placed != victim
    assert state == "open"
    assert stats.breakers_opened == 1
    assert stats.failovers_resumed >= 1
    assert stats.sessions_lost == 0


def test_kill_mid_replay_with_breaker_open_is_lossless(tmp_path):
    """The acceptance scenario: a worker dies mid-replay, its breaker
    opens, and every session still lands on the ring successor — zero
    lost sessions, zero client-visible errors."""
    blocks = _blocks(500)
    ckpt = str(tmp_path / "ckpt")

    async def scenario():
        async with _Fleet(
            checkpoint_dir=ckpt,
            breaker=BreakerPolicy(failure_threshold=1, cooldown_s=30.0),
        ) as fleet:
            async def assassin():
                await asyncio.sleep(0.3)
                fleet.silent_kill("w0")

            report, _ = await asyncio.gather(
                replay_async(
                    blocks, port=fleet.gateway.port, clients=4,
                    policy="tree", cache_size=CACHE,
                ),
                assassin(),
            )
            return report, fleet.gateway.stats

    report, stats = asyncio.run(scenario())
    assert report.requests == 4 * len(blocks)
    assert stats.sessions_lost == 0
    assert stats.failovers_degraded == 0
    # Deterministic sessions: per-client advice matches the fault-free
    # stream, so the aggregate outcome counts do too.
    expected = {"demand_hit": 0, "prefetch_hit": 0, "miss": 0}
    for advice in _fault_free_advice(blocks):
        expected[advice["outcome"]] += 4
    assert report.outcomes == expected


def test_breaker_closes_after_successful_half_open_probe():
    """Fake clock drives the full cycle inside the gateway: trip by
    hand, cool down, and the next real call is the probe that closes."""
    clock = {"now": 0.0}

    async def scenario():
        async with _Fleet(
            breaker=BreakerPolicy(failure_threshold=2, cooldown_s=10.0),
            breaker_clock=lambda: clock["now"],
        ) as fleet:
            async with await AsyncServiceClient.connect(
                port=fleet.gateway.port
            ) as client:
                sid = await client.open(policy="no-prefetch", cache_size=8)
                worker_id = fleet.gateway.sessions[sid].worker_id
                breaker = fleet.gateway._breaker(worker_id)
                # Trip it by hand: the worker is healthy, we only want
                # the state machine exercised through the live call path.
                breaker.record_failure()
                breaker.record_failure()
                assert breaker.state == "open"
                clock["now"] = 10.0  # cooldown elapses
                advice = await client.observe(sid, 7)  # the probe
                assert advice is not None
                stats = fleet.gateway.stats
                return breaker.state, stats.breakers_closed

    state, closed = asyncio.run(scenario())
    assert state == "closed"
    assert closed == 1
