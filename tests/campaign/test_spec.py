"""Scenario spec parsing: happy paths, hashing, and every rejection."""

import json

import pytest

from repro.campaign.spec import (
    ArrivalSpec,
    ChaosProfile,
    ScenarioError,
    derive_seed,
    load_scenario,
    parse_scenario,
    scenario_hash,
)


def doc(**overrides):
    base = {
        "scenario": {"name": "demo", "seed": 11, "mode": "server"},
        "phase": [
            {"name": "one", "clients": 2, "refs": 100,
             "mix": {"cello": 1.0}},
        ],
    }
    base.update(overrides)
    return base


class TestParse:
    def test_minimal_document(self):
        scenario = parse_scenario(doc())
        assert scenario.name == "demo"
        assert scenario.seed == 11
        assert scenario.mode == "server"
        assert scenario.workers == (2,)
        assert scenario.policy == "tree"
        assert len(scenario.phases) == 1
        assert scenario.phases[0].mix == (("cello", 1.0),)
        assert scenario.tenancy is None

    def test_workers_scalar_becomes_axis(self):
        d = doc()
        d["scenario"]["workers"] = 3
        assert parse_scenario(d).workers == (3,)

    def test_workers_sweep_axis(self):
        d = doc()
        d["scenario"]["workers"] = [1, 2, 4]
        assert parse_scenario(d).workers == (1, 2, 4)

    def test_full_phase(self):
        d = doc()
        d["phase"] = [{
            "name": "busy",
            "clients": 3,
            "refs": 250,
            "sessions_per_client": 2,
            "mix": {"cello": 0.6, "cad": 0.4},
            "mix_end": {"cello": 0.1, "cad": 0.9},
            "arrival": {"curve": "ramp", "over_s": 1.0, "jitter_s": 0.2},
            "chaos": {"reset_every": 40, "delay_every": 11,
                      "delay_ms": 2.0, "max_attempts": 6},
        }]
        phase = parse_scenario(d).phases[0]
        assert phase.sessions_per_client == 2
        assert phase.mix_end == (("cad", 0.9), ("cello", 0.1))
        assert phase.arrival == ArrivalSpec(curve="ramp", over_s=1.0,
                                            jitter_s=0.2)
        assert phase.chaos.reset_every == 40
        assert phase.chaos.max_attempts == 6

    def test_default_phase_name_from_index(self):
        d = doc()
        d["phase"] = [{"mix": {"cad": 1.0}}]
        assert parse_scenario(d).phases[0].name == "phase-0"


class TestHash:
    def test_stable_across_calls(self):
        assert scenario_hash(parse_scenario(doc())) == scenario_hash(
            parse_scenario(doc())
        )
        assert len(scenario_hash(parse_scenario(doc()))) == 64

    @pytest.mark.parametrize("mutate", [
        lambda d: d["scenario"].update(seed=12),
        lambda d: d["scenario"].update(cache_size=2048),
        lambda d: d["scenario"].update(mode="fleet"),
        lambda d: d["scenario"].update(workers=[3]),
        lambda d: d["phase"][0].update(refs=101),
        lambda d: d["phase"][0].update(mix={"cad": 1.0}),
        lambda d: d["phase"][0].update(
            chaos={"reset_every": 9}),
        lambda d: d["phase"][0].update(
            arrival={"curve": "uniform", "over_s": 1.0}),
    ])
    def test_every_field_is_load_bearing(self, mutate):
        changed = doc()
        mutate(changed)
        assert scenario_hash(parse_scenario(changed)) != scenario_hash(
            parse_scenario(doc())
        )

    def test_mix_key_order_is_irrelevant(self):
        a, b = doc(), doc()
        a["phase"][0]["mix"] = {"cello": 0.5, "cad": 0.5}
        b["phase"][0]["mix"] = {"cad": 0.5, "cello": 0.5}
        assert scenario_hash(parse_scenario(a)) == scenario_hash(
            parse_scenario(b)
        )


class TestDeriveSeed:
    def test_deterministic_and_label_sensitive(self):
        assert derive_seed(7, "phase", 0) == derive_seed(7, "phase", 0)
        assert derive_seed(7, "phase", 0) != derive_seed(7, "phase", 1)
        assert derive_seed(7, "phase", 0) != derive_seed(8, "phase", 0)

    def test_known_value_is_platform_stable(self):
        # Pinned: a changed derivation would silently break every
        # committed bundle hash, so lock the function itself down.
        assert derive_seed(1999, "ramp", 0, "mix") == 7397704149006743146


class TestRejections:
    @pytest.mark.parametrize("mutate, message", [
        (lambda d: d.pop("scenario"), "needs a 'scenario'"),
        (lambda d: d.update(extra=1), "unknown keys"),
        (lambda d: d["scenario"].pop("name"), "needs a 'name'"),
        (lambda d: d["scenario"].update(name=""), "non-empty string"),
        (lambda d: d["scenario"].update(mode="cloud"), "mode must be one of"),
        (lambda d: d["scenario"].update(workers=[]), "non-empty list"),
        (lambda d: d["scenario"].update(workers=[2, 2]), "duplicate sweep"),
        (lambda d: d["scenario"].update(workers=[0]), "integer >= 1"),
        (lambda d: d["scenario"].update(policy="oracle"), "unknown policy"),
        (lambda d: d["scenario"].update(cache_size=0), "integer >= 1"),
        (lambda d: d["scenario"].update(seed=-1), "integer >= 0"),
        (lambda d: d.update(phase=[]), "at least one"),
        (lambda d: d["phase"][0].pop("mix"), "needs a 'mix'"),
        (lambda d: d["phase"][0].update(mix={}), "non-empty table"),
        (lambda d: d["phase"][0].update(mix={"vax": 1.0}), "unknown trace"),
        (lambda d: d["phase"][0].update(mix={"cello": 0.0}),
         "at least one weight"),
        (lambda d: d["phase"][0].update(mix={"cello": -1.0}), "must be >= 0"),
        (lambda d: d["phase"][0].update(mix_end={"cad": 1.0}),
         "same traces as mix"),
        (lambda d: d["phase"][0].update(clients=0), "integer >= 1"),
        (lambda d: d["phase"][0].update(surprise=1), "unknown keys"),
        (lambda d: d["phase"][0].update(tolerate_quota="yes"),
         "must be a boolean"),
        (lambda d: d["phase"][0].update(
            arrival={"curve": "exponential"}), "curve must be one of"),
        (lambda d: d["phase"][0].update(
            arrival={"over_s": -1.0}), "must be >= 0"),
        (lambda d: d["phase"][0].update(tenant="acme"),
         "no \\[tenancy\\] section"),
    ])
    def test_malformed_documents(self, mutate, message):
        bad = doc()
        mutate(bad)
        with pytest.raises(ScenarioError, match=message):
            parse_scenario(bad)

    def test_duplicate_phase_names(self):
        d = doc()
        d["phase"] = [
            {"name": "p", "mix": {"cello": 1.0}},
            {"name": "p", "mix": {"cad": 1.0}},
        ]
        with pytest.raises(ScenarioError, match="unique"):
            parse_scenario(d)

    def test_non_table_document(self):
        with pytest.raises(ScenarioError, match="table/object"):
            parse_scenario(["not", "a", "scenario"])


class TestChaosProfileParsing:
    """The chaos table maps onto ChaosProxy's FaultPlan; parse errors
    here are what stands between a typo and a silently fault-free
    'chaos' phase."""

    def chaos_doc(self, table):
        d = doc()
        d["phase"][0]["chaos"] = table
        return d

    def test_profile_maps_onto_fault_plan(self):
        profile = parse_scenario(self.chaos_doc({
            "reset_every": 50, "delay_every": 7, "delay_ms": 2.0,
            "truncate_every": 90, "garbage_every": 120,
        })).phases[0].chaos
        plan = profile.plan()
        assert plan.reset_every == 50
        assert plan.delay_every == 7
        assert plan.delay_s == pytest.approx(0.002)
        assert plan.truncate_every == 90
        assert plan.garbage_every == 120
        assert plan.injects_anything

    def test_defaults(self):
        profile = parse_scenario(
            self.chaos_doc({"reset_every": 10})
        ).phases[0].chaos
        assert profile.delay_ms == 10.0
        assert profile.max_attempts == 8
        assert profile.plan().delay_every is None

    def test_empty_chaos_table_is_rejected(self):
        # A chaos phase that injects nothing is a lie in the scenario
        # file; require at least one fault class or no table at all.
        with pytest.raises(ScenarioError, match="enables no fault class"):
            parse_scenario(self.chaos_doc({}))

    def test_delay_ms_alone_is_rejected(self):
        with pytest.raises(ScenarioError, match="enables no fault class"):
            parse_scenario(self.chaos_doc({"delay_ms": 5.0}))

    @pytest.mark.parametrize("table, message", [
        ({"reset_every": 0}, "integer >= 1"),
        ({"delay_every": -3}, "integer >= 1"),
        ({"reset_every": 10, "delay_ms": -1.0}, "must be >= 0"),
        ({"reset_every": 10, "max_attempts": 0}, "integer >= 1"),
        ({"reset_every": 10, "jitter": True}, "unknown keys"),
        ("hard", "must be a table"),
    ])
    def test_malformed_chaos_tables(self, table, message):
        with pytest.raises(ScenarioError, match=message):
            parse_scenario(self.chaos_doc(table))


class TestTenancySection:
    def tenancy_doc(self):
        d = doc()
        d["tenancy"] = {
            "store": "models",
            "tenants": {"acme": {"model": "base", "max_sessions": 4}},
        }
        d["phase"][0]["tenant"] = "acme"
        return d

    def test_parses_and_snapshots(self):
        scenario = parse_scenario(self.tenancy_doc())
        assert scenario.tenancy.store == "models"
        assert scenario.tenancy.config.spec("acme").max_sessions == 4
        snapshot = scenario.as_dict()["tenancy"]
        assert snapshot["tenants"]["acme"]["model"] == "base"
        assert "name" not in snapshot["tenants"]["acme"]

    def test_unknown_tenant_in_phase(self):
        d = self.tenancy_doc()
        d["phase"][0]["tenant"] = "globex"
        with pytest.raises(ScenarioError, match="not in the"):
            parse_scenario(d)

    def test_tenancy_errors_are_wrapped(self):
        d = self.tenancy_doc()
        d["tenancy"]["tenants"]["acme"].pop("model")
        with pytest.raises(ScenarioError, match="tenancy section.*model"):
            parse_scenario(d)

    def test_store_required(self):
        d = self.tenancy_doc()
        d["tenancy"].pop("store")
        with pytest.raises(ScenarioError, match="needs a 'store'"):
            parse_scenario(d)


class TestLoadScenario:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(doc()), encoding="utf-8")
        assert load_scenario(str(path)).name == "demo"

    def test_toml_round_trip(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "s.toml"
        path.write_text(
            '[scenario]\nname = "demo"\nseed = 11\nmode = "server"\n'
            '[[phase]]\nname = "one"\nclients = 2\nrefs = 100\n'
            'mix = { cello = 1.0 }\n',
            encoding="utf-8",
        )
        toml_scenario = load_scenario(str(path))
        assert scenario_hash(toml_scenario) == scenario_hash(
            parse_scenario(doc())
        )

    def test_committed_examples_parse(self):
        pytest.importorskip("tomllib")
        from pathlib import Path

        examples = Path(__file__).resolve().parents[2] / (
            "examples/campaigns"
        )
        for name in ("diurnal_chaos", "smoke"):
            scenario = load_scenario(str(examples / f"{name}.toml"))
            assert scenario.mode == "fleet"
            assert scenario.workers == (2,)
            assert any(phase.chaos is not None for phase in scenario.phases)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(str(tmp_path / "absent.toml"))

    def test_bad_json(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenario(str(path))

    def test_bad_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "s.toml"
        path.write_text("[scenario\nname=", encoding="utf-8")
        with pytest.raises(ScenarioError, match="not valid TOML"):
            load_scenario(str(path))
