"""End-to-end campaign runs (server mode) and the CLI surface.

The centrepiece is the single-seed determinism audit: every random
stream in a campaign derives from ``scenario.seed``, so running the
same scenario twice — including a chaos phase with injected resets and
delays — must produce byte-identical bundle hashes.  Fleet mode shares
this exact code path behind ``start_fleet`` (exercised by the committed
CI smoke and ``tests/cluster/test_fleet.py``); here we drive the
in-process server target to keep the suite fast and loop-friendly.
"""

import json
import random

import pytest

from repro.campaign import (
    load_bundle,
    parse_scenario,
    run_scenario,
    scenario_hash,
)
from repro.cli import main
from repro.store import ModelStore
from repro.store.models import model_snapshot
from repro.core.tree import PrefetchTree


def scenario_doc(**scenario_overrides):
    doc = {
        "scenario": {"name": "lab", "seed": 17, "mode": "server",
                     "cache_size": 256},
        "phase": [
            {"name": "ramp", "clients": 2, "refs": 120,
             "mix": {"cello": 0.6, "cad": 0.4},
             "mix_end": {"cello": 0.2, "cad": 0.8},
             "arrival": {"curve": "ramp", "over_s": 0.05,
                         "jitter_s": 0.02}},
            {"name": "churn-chaos", "clients": 2, "refs": 80,
             "sessions_per_client": 2,
             "mix": {"snake": 1.0},
             "chaos": {"reset_every": 60, "delay_every": 23,
                       "delay_ms": 1.0}},
        ],
    }
    doc["scenario"].update(scenario_overrides)
    return doc


class TestDeterminismAudit:
    def test_two_runs_identical_bundle_hashes(self, tmp_path):
        scenario = parse_scenario(scenario_doc())
        first = run_scenario(scenario, out_dir=str(tmp_path / "a"))
        second = run_scenario(scenario, out_dir=str(tmp_path / "b"))
        (bundle_a, record_a), = first
        (bundle_b, record_b), = second
        assert bundle_a.bundle_hash == bundle_b.bundle_hash
        assert record_a["sessions_lost"] == 0
        assert record_b["sessions_lost"] == 0
        bundle_a.verify()
        # The chaos phase really injected faults and really retried —
        # determinism is interesting *because* the runs were perturbed.
        chaos = record_a["phases"][1]
        assert chaos["chaos"]["drops_injected"] > 0
        assert chaos["retries"] > 0

    def test_chaos_does_not_change_deterministic_outcomes(self, tmp_path):
        # Same seed, same phases, chaos table removed: the advice stream
        # (requests, outcomes, prefetches) must be identical — the
        # resilience layer guarantees parity, the bundle proves it.
        doc_chaos = scenario_doc()
        doc_calm = scenario_doc()
        doc_calm["phase"][1].pop("chaos")
        (_, chaos_record), = run_scenario(
            parse_scenario(doc_chaos), out_dir=str(tmp_path / "chaos")
        )
        (_, calm_record), = run_scenario(
            parse_scenario(doc_calm), out_dir=str(tmp_path / "calm")
        )
        for noisy, calm in zip(chaos_record["phases"],
                               calm_record["phases"]):
            assert noisy["requests"] == calm["requests"]
            assert noisy["outcomes"] == calm["outcomes"]
            assert (noisy["prefetches_recommended"]
                    == calm["prefetches_recommended"])

    def test_seed_changes_the_bundle(self, tmp_path):
        one = run_scenario(parse_scenario(scenario_doc(seed=17)),
                           out_dir=str(tmp_path / "a"))
        two = run_scenario(parse_scenario(scenario_doc(seed=18)),
                           out_dir=str(tmp_path / "b"))
        assert one[0][0].bundle_hash != two[0][0].bundle_hash


class TestRunRecords:
    def test_phase_accounting(self, tmp_path):
        scenario = parse_scenario(scenario_doc())
        (bundle, record), = run_scenario(
            scenario, out_dir=str(tmp_path / "out")
        )
        ramp, chaos = record["phases"]
        assert ramp["requests"] == 2 * 120
        assert ramp["sessions"] == 2
        assert ramp["churn_opened"] == 2
        assert ramp["churn_closed"] == 2
        assert ramp["chaos"] is None
        # sessions_per_client=2: each client opens/closes two sessions.
        assert chaos["requests"] == 2 * 2 * 80
        assert chaos["sessions"] == 4
        assert chaos["churn_opened"] == 4
        assert chaos["churn_closed"] == 4
        assert sum(ramp["outcomes"].values()) == ramp["requests"]
        assert bundle.path.name == (
            f"lab-{scenario_hash(scenario)[:10]}-w1"
        )

    def test_bundle_files_on_disk(self, tmp_path):
        (bundle, _), = run_scenario(
            parse_scenario(scenario_doc()), out_dir=str(tmp_path / "out")
        )
        for name in ("scenario.json", "results.json", "bundle.json"):
            assert (bundle.path / name).is_file()
        results = json.loads((bundle.path / "results.json").read_text())
        assert results["fleet_metrics"]["advice_issued"] > 0
        assert results["fleet_metrics"]["sessions_opened"] == (
            results["fleet_metrics"]["sessions_closed"]
        )
        assert results["environment"]["python"]


class TestTenancyCampaign:
    def test_tenant_phase_runs_against_shared_base(self, tmp_path):
        store = ModelStore(str(tmp_path / "models"))
        tree = PrefetchTree()
        rng = random.Random(5)
        tree.record_all(rng.randrange(64) for _ in range(3000))
        store.save("acme-base", model_snapshot(tree, base=True))
        doc = scenario_doc()
        doc["tenancy"] = {
            "store": str(tmp_path / "models"),
            "tenants": {"acme": {"model": "acme-base",
                                 "max_sessions": 8}},
        }
        doc["phase"][0]["tenant"] = "acme"
        (bundle, record), = run_scenario(
            parse_scenario(doc), out_dir=str(tmp_path / "out")
        )
        assert record["sessions_lost"] == 0
        assert record["phases"][0]["sessions"] == 2
        bundle.verify()


class TestCampaignCLI:
    def write_scenario(self, tmp_path, doc=None):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(doc or scenario_doc()),
                        encoding="utf-8")
        return str(path)

    def test_run_list_compare_loop(self, tmp_path, capsys):
        scenario = self.write_scenario(tmp_path)
        out_a, out_b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(["campaign", "run", scenario, "--out", out_a,
                     "--quiet"]) == 0
        assert main(["campaign", "run", scenario, "--out", out_b,
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "sessions_lost=0" in out
        assert main(["campaign", "list", "--out", out_a]) == 0
        listing = capsys.readouterr().out
        assert "lab-" in listing and "sessions_lost=0" in listing
        bundle_dir = listing.split(":")[0]
        assert main(["campaign", "compare",
                     f"{out_a}/{bundle_dir}", f"{out_b}/{bundle_dir}"]) == 0
        report = capsys.readouterr().out
        assert "REPRODUCED" in report
        assert "campaign compare: PASS" in report

    def test_compare_flags_regression_nonzero_exit(self, tmp_path, capsys):
        scenario = self.write_scenario(tmp_path)
        out_a = str(tmp_path / "a")
        assert main(["campaign", "run", scenario, "--out", out_a,
                     "--quiet"]) == 0
        capsys.readouterr()
        bundle, = __import__("glob").glob(f"{out_a}/lab-*")
        # Forge a candidate whose deterministic outcome diverged.
        import shutil

        forged = str(tmp_path / "forged")
        shutil.copytree(bundle, forged)
        doc = json.loads((tmp_path / "forged" / "bundle.json").read_text())
        doc["phases"][0]["requests"] += 1
        from repro.campaign.bundle import compute_bundle_hash

        payload = {key: doc[key] for key in
                   ("bundle_format", "scenario", "workers", "phases")}
        doc["bundle_hash"] = compute_bundle_hash(payload)
        (tmp_path / "forged" / "bundle.json").write_text(json.dumps(doc))
        assert main(["campaign", "compare", bundle, forged]) == 1
        report = capsys.readouterr().out
        assert "REGRESSION" in report
        assert "campaign compare: FAIL" in report

    def test_run_rejects_bad_scenario(self, tmp_path, capsys):
        doc = scenario_doc()
        doc["phase"] = []
        scenario = self.write_scenario(tmp_path, doc)
        assert main(["campaign", "run", scenario]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_compare_rejects_non_bundle(self, tmp_path, capsys):
        assert main(["campaign", "compare", str(tmp_path),
                     str(tmp_path)]) == 2
        assert "not a campaign bundle" in capsys.readouterr().err

    def test_list_empty_dir(self, tmp_path, capsys):
        assert main(["campaign", "list", "--out",
                     str(tmp_path / "none")]) == 0
        assert "no campaign bundles" in capsys.readouterr().out


class TestReplayJson:
    def test_replay_json_is_machine_readable(self, capsys):
        from repro.service.server import BackgroundServer

        with BackgroundServer() as server:
            rc = main(["replay", "--trace", "cad", "--refs", "400",
                       "--clients", "2", "--port", str(server.port),
                       "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["requests"] == 800
        assert doc["clients"] == 2
        assert set(doc) >= {"advice_per_second", "latency_p99_ms",
                            "outcomes", "sessions", "retries"}

    def test_json_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["replay", "--trace", "cad", "--json"]
        )
        assert args.json is True
