"""Workload synthesis: determinism, pool disjointness, drift, arrivals."""

import pytest

from repro.campaign.spec import ArrivalSpec, PhaseSpec, parse_scenario
from repro.campaign.workload import (
    _component_pools,
    arrival_delays,
    client_blocks,
    phase_client_blocks,
)


def phase(**overrides):
    base = dict(name="p", clients=2, refs=300,
                mix=(("cad", 0.5), ("cello", 0.5)))
    base.update(overrides)
    return PhaseSpec(**base)


class TestDeterminism:
    def test_same_inputs_same_stream(self):
        assert client_blocks(phase(), 7, 0) == client_blocks(phase(), 7, 0)

    def test_clients_get_distinct_streams(self):
        assert client_blocks(phase(), 7, 0) != client_blocks(phase(), 7, 1)

    def test_seed_changes_stream(self):
        assert client_blocks(phase(), 7, 0) != client_blocks(phase(), 8, 0)

    def test_phase_name_changes_stream(self):
        assert client_blocks(phase(), 7, 0) != client_blocks(
            phase(name="q"), 7, 0
        )

    def test_phase_client_blocks_shape(self):
        streams = phase_client_blocks(phase(clients=3), 7)
        assert len(streams) == 3
        assert all(len(stream) == 300 for stream in streams)


class TestPools:
    def test_component_ranges_are_disjoint(self):
        pools = _component_pools(phase(), 7, 0)
        cad = set(pools["cad"])
        cello = set(pools["cello"])
        assert cad and cello
        assert not (cad & cello)
        assert max(pools["cad"]) < min(pools["cello"])

    def test_stream_only_draws_from_pools(self):
        pools = _component_pools(phase(), 7, 0)
        allowed = set(pools["cad"]) | set(pools["cello"])
        assert set(client_blocks(phase(), 7, 0)) <= allowed

    def test_zero_weight_trace_is_never_drawn(self):
        p = phase(mix=(("cad", 1.0), ("cello", 0.0)))
        pools = _component_pools(p, 7, 0)
        assert set(client_blocks(p, 7, 0)) <= set(pools["cad"])


class TestDrift:
    def test_mix_end_shifts_composition(self):
        p = phase(refs=2000, mix=(("cad", 0.9), ("cello", 0.1)),
                  mix_end=(("cad", 0.1), ("cello", 0.9)))
        pools = _component_pools(p, 7, 0)
        cad = set(pools["cad"])
        stream = client_blocks(p, 7, 0)
        head = sum(1 for b in stream[:500] if b in cad)
        tail = sum(1 for b in stream[-500:] if b in cad)
        # 90% cad at the head drifting to 10% at the tail: the counts
        # must drop decisively, not just statistically wiggle.
        assert head > 350
        assert tail < 150

    def test_drift_is_deterministic(self):
        p = phase(mix_end=(("cad", 0.1), ("cello", 0.9)))
        assert client_blocks(p, 7, 0) == client_blocks(p, 7, 0)


class TestArrivals:
    def test_burst_is_all_zero(self):
        assert arrival_delays(ArrivalSpec(), 4, 7, "p") == [0.0] * 4

    def test_uniform_spacing(self):
        delays = arrival_delays(
            ArrivalSpec(curve="uniform", over_s=2.0), 4, 7, "p"
        )
        assert delays == pytest.approx([0.0, 0.5, 1.0, 1.5])

    def test_ramp_accelerates(self):
        delays = arrival_delays(
            ArrivalSpec(curve="ramp", over_s=1.0), 5, 7, "p"
        )
        gaps = [b - a for a, b in zip(delays, delays[1:])]
        assert all(b < a for a, b in zip(gaps, gaps[1:]))
        assert all(delay <= 1.0 for delay in delays)

    def test_jitter_is_seeded(self):
        spec = ArrivalSpec(curve="uniform", over_s=1.0, jitter_s=0.5)
        assert arrival_delays(spec, 4, 7, "p") == arrival_delays(
            spec, 4, 7, "p"
        )
        assert arrival_delays(spec, 4, 7, "p") != arrival_delays(
            spec, 4, 8, "p"
        )

    def test_jitter_bounded(self):
        spec = ArrivalSpec(jitter_s=0.25)
        for delay in arrival_delays(spec, 16, 7, "p"):
            assert 0.0 <= delay < 0.25


class TestScenarioIntegration:
    def test_streams_are_pure_functions_of_the_scenario(self):
        doc = {
            "scenario": {"name": "w", "seed": 5, "mode": "server"},
            "phase": [{"name": "a", "clients": 3, "refs": 200,
                       "mix": {"snake": 0.5, "sitar": 0.5},
                       "mix_end": {"snake": 0.9, "sitar": 0.1}}],
        }
        one = parse_scenario(doc)
        two = parse_scenario(doc)
        assert phase_client_blocks(one.phases[0], one.seed) == (
            phase_client_blocks(two.phases[0], two.seed)
        )
