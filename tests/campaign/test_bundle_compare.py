"""Bundle write/load/verify and the comparison verdict logic."""

import json

import pytest

from repro.campaign.bundle import (
    BundleError,
    bundle_dir_name,
    compute_bundle_hash,
    deterministic_phase_record,
    list_bundles,
    load_bundle,
    write_bundle,
)
from repro.campaign.compare import compare_bundles, render_comparison
from repro.campaign.spec import parse_scenario


def scenario(seed=11):
    return parse_scenario({
        "scenario": {"name": "demo", "seed": seed, "mode": "server"},
        "phase": [{"name": "one", "clients": 2, "refs": 100,
                   "mix": {"cello": 1.0}}],
    })


def phase_result(**overrides):
    base = {
        "name": "one",
        "clients": 2,
        "refs": 100,
        "quota_tolerant": False,
        "requests": 200,
        "outcomes": {"demand_hit": 20, "prefetch_hit": 5, "miss": 175},
        "prefetches_recommended": 9,
        "sessions": 2,
        "quota_rejected": 0,
        "churn_opened": 2,
        "churn_closed": 2,
        "sessions_lost": 0,
        "wall_seconds": 0.5,
        "advice_per_second": 400.0,
        "latency_p50_ms": 1.0,
        "latency_p95_ms": 2.0,
        "latency_p99_ms": 3.0,
        "retries": 0,
        "resumes": 0,
        "cold_restarts": 0,
        "degraded_clients": 0,
        "chaos": None,
    }
    base.update(overrides)
    return base


def write(tmp_path, sub="a", seed=11, results=None):
    return write_bundle(
        str(tmp_path / sub), scenario(seed), 1,
        [phase_result(**(results or {}))],
        environment={"python": "test"},
    )


class TestBundle:
    def test_write_and_load_round_trip(self, tmp_path):
        bundle = write(tmp_path)
        loaded = load_bundle(str(bundle.path))
        assert loaded.bundle_hash == bundle.bundle_hash
        assert loaded.workers == 1
        assert loaded.deterministic_phases[0]["requests"] == 200
        assert loaded.result_phases[0]["advice_per_second"] == 400.0
        loaded.verify()

    def test_load_accepts_bundle_json_path(self, tmp_path):
        bundle = write(tmp_path)
        loaded = load_bundle(str(bundle.path / "bundle.json"))
        assert loaded.bundle_hash == bundle.bundle_hash

    def test_dir_name_embeds_scenario_hash_and_workers(self, tmp_path):
        bundle = write(tmp_path)
        assert bundle.path.name == bundle_dir_name(scenario(), 1)
        assert bundle.path.name.startswith("demo-")
        assert bundle.path.name.endswith("-w1")

    def test_hash_ignores_wall_clock_fields(self, tmp_path):
        fast = write(tmp_path, "fast")
        slow = write(tmp_path, "slow", results={
            "advice_per_second": 4.0, "latency_p99_ms": 900.0,
            "wall_seconds": 60.0, "retries": 7,
        })
        assert fast.bundle_hash == slow.bundle_hash

    def test_hash_covers_deterministic_fields(self, tmp_path):
        a = write(tmp_path, "a")
        b = write(tmp_path, "b", results={"requests": 201})
        assert a.bundle_hash != b.bundle_hash

    def test_hash_covers_scenario(self, tmp_path):
        assert write(tmp_path, "a").bundle_hash != write(
            tmp_path, "b", seed=12
        ).bundle_hash

    def test_quota_tolerant_phase_hashes_only_losslessness(self):
        volatile = deterministic_phase_record(
            phase_result(quota_tolerant=True, requests=150)
        )
        assert volatile == {"name": "one", "quota_tolerant": True,
                            "sessions_lost": 0}

    def test_verify_catches_tampering(self, tmp_path):
        bundle = write(tmp_path)
        doc = json.loads((bundle.path / "bundle.json").read_text())
        doc["phases"][0]["requests"] = 999
        (bundle.path / "bundle.json").write_text(json.dumps(doc))
        with pytest.raises(BundleError, match="fails verification"):
            load_bundle(str(bundle.path)).verify()

    def test_missing_bundle(self, tmp_path):
        with pytest.raises(BundleError, match="no bundle.json"):
            load_bundle(str(tmp_path))

    def test_list_bundles(self, tmp_path):
        write(tmp_path, "out")
        (tmp_path / "out" / "not-a-bundle").mkdir()
        bundles = list_bundles(str(tmp_path / "out"))
        assert len(bundles) == 1
        assert list_bundles(str(tmp_path / "nowhere")) == []

    def test_rewrite_is_idempotent(self, tmp_path):
        first = write(tmp_path)
        second = write(tmp_path)
        assert first.path == second.path
        assert first.bundle_hash == second.bundle_hash

    def test_hash_is_recomputable(self, tmp_path):
        bundle = write(tmp_path)
        payload = {key: bundle.doc[key] for key in
                   ("bundle_format", "scenario", "workers", "phases")}
        assert compute_bundle_hash(payload) == bundle.bundle_hash


class TestCompare:
    def test_identical_runs_reproduce(self, tmp_path):
        comparison = compare_bundles(write(tmp_path, "a"),
                                     write(tmp_path, "b"))
        assert comparison.reproduced
        assert comparison.scenario_match
        assert comparison.passed()
        assert not comparison.regressions
        text = render_comparison(comparison)
        assert "REPRODUCED" in text
        assert "requests" in text

    def test_deterministic_mismatch_is_regression(self, tmp_path):
        comparison = compare_bundles(
            write(tmp_path, "a"),
            write(tmp_path, "b", results={
                "requests": 150,
                "outcomes": {"demand_hit": 10, "prefetch_hit": 5,
                             "miss": 135},
            }),
        )
        assert not comparison.reproduced
        assert not comparison.passed()
        assert any("requests" in note for note in comparison.regressions)
        assert "REGRESSION" in render_comparison(comparison)

    def test_sessions_lost_is_always_a_regression(self, tmp_path):
        comparison = compare_bundles(
            write(tmp_path, "a", results={"sessions_lost": 1}),
            write(tmp_path, "b", results={"sessions_lost": 1}),
        )
        # Even though baseline and candidate agree (hashes match), a
        # candidate that lost sessions must fail the gate.
        assert comparison.reproduced
        assert not comparison.passed()
        assert any("lost" in note for note in comparison.regressions)

    def test_perf_drift_is_flagged_but_non_fatal(self, tmp_path):
        comparison = compare_bundles(
            write(tmp_path, "a"),
            write(tmp_path, "b", results={"latency_p99_ms": 30.0}),
        )
        assert comparison.passed()
        assert not comparison.passed(fail_on_perf=True)
        assert any("latency_p99_ms" in note
                   for note in comparison.perf_flags)

    def test_perf_within_tolerance_is_clean(self, tmp_path):
        comparison = compare_bundles(
            write(tmp_path, "a"),
            write(tmp_path, "b", results={"latency_p99_ms": 3.3}),
        )
        assert not comparison.perf_flags
        assert "ok:" in render_comparison(comparison)

    def test_throughput_gain_is_not_flagged(self, tmp_path):
        comparison = compare_bundles(
            write(tmp_path, "a"),
            write(tmp_path, "b", results={"advice_per_second": 4000.0}),
        )
        assert not comparison.perf_flags

    def test_different_scenarios_never_regress(self, tmp_path):
        comparison = compare_bundles(
            write(tmp_path, "a", seed=11),
            write(tmp_path, "b", seed=12, results={"requests": 155}),
        )
        assert not comparison.scenario_match
        assert comparison.passed()
        assert "DIFFER" in render_comparison(comparison)

    def test_missing_phase_is_regression(self, tmp_path):
        baseline = write_bundle(
            str(tmp_path / "a"), scenario(), 1,
            [phase_result(),
             phase_result(name="two")],
        )
        candidate = write(tmp_path, "b")
        comparison = compare_bundles(baseline, candidate)
        assert any("missing" in note for note in comparison.regressions)
        assert not comparison.passed()

    def test_quota_tolerant_volatile_fields_not_compared(self, tmp_path):
        a = write(tmp_path, "a", results={"quota_tolerant": True,
                                          "requests": 100})
        b = write(tmp_path, "b", results={"quota_tolerant": True,
                                          "requests": 177})
        comparison = compare_bundles(a, b)
        assert comparison.reproduced
        assert comparison.passed()
