"""One real fleet-mode campaign: gateway + worker subprocesses.

Slow relative to the server-mode tests (subprocess spawn + probe), so
there is exactly one of it: a three-phase scenario — churn, mild chaos,
then a mid-phase ``kill_worker`` — against a live 2-worker fleet,
asserting the run is lossless, sessions fail over to the ring successor,
and the bundle verifies.  The CI campaign smoke job runs the committed
``examples/campaigns/smoke.toml`` through the same path twice and
compares hashes; this test keeps the path honest under plain pytest.
"""

from repro.campaign import parse_scenario, run_scenario


def test_fleet_campaign_end_to_end(tmp_path):
    scenario = parse_scenario({
        "scenario": {"name": "fleet-lab", "seed": 23, "mode": "fleet",
                     "workers": [2], "cache_size": 128},
        "phase": [
            {"name": "ramp", "clients": 3, "refs": 60,
             "mix": {"cello": 0.5, "cad": 0.5},
             "arrival": {"curve": "uniform", "over_s": 0.05}},
            {"name": "chaos", "clients": 2, "refs": 50,
             "sessions_per_client": 2,
             "mix": {"snake": 1.0},
             "chaos": {"reset_every": 70, "delay_every": 29,
                       "delay_ms": 1.0}},
            # Long enough that sessions outlive the 1s checkpoint tick
            # and are still streaming when the worker dies under them.
            {"name": "failover", "clients": 8, "refs": 1500,
             "mix": {"cello": 1.0},
             "kill_worker": "w0", "kill_after_s": 1.3},
        ],
    })
    (bundle, record), = run_scenario(
        scenario, out_dir=str(tmp_path / "out")
    )
    assert record["workers"] == 2
    assert record["sessions_lost"] == 0
    ramp, chaos, failover = record["phases"]
    assert ramp["requests"] == 3 * 60
    assert chaos["requests"] == 2 * 2 * 50
    assert chaos["churn_opened"] == 4
    assert chaos["churn_closed"] == 4
    assert chaos["chaos"]["drops_injected"] >= 1
    # The kill phase: the worker really died, every session it held
    # resumed on the ring successor, and nothing was lost.
    assert failover["failover"] is True
    assert failover["kill_worker"] == "w0"
    assert failover["worker_killed"] is True
    assert failover["failovers_resumed"] > 0
    assert failover["sessions_lost"] == 0
    assert failover["requests"] == 8 * 1500
    bundle.verify()
    # The merged fleet metrics landed in the bundle's results.  The exact
    # advice total is no longer asserted: the killed worker's counters
    # reset when the supervisor respawns it.
    fleet_totals = bundle.results["fleet_metrics"]["fleet"]
    assert fleet_totals["advice_issued"] >= 380
    assert bundle.results["fleet_metrics"]["gateway"]["sessions_lost"] == 0
    assert len(bundle.results["fleet_metrics"]["per_worker"]) == 2
