"""Property-based tests (hypothesis) for the core data structures.

Invariants checked:

* LZ tree: structural invariants after any access sequence, with or without
  a node budget; weight laws; parse determinism.
* LRU cache: capacity bound, recency order, hit iff previously inserted and
  not evicted (cross-checked against a model dict).
* Stack-distance profiler: agrees with a brute-force LRU stack; histogram
  mass conservation.
* Cost model: stall monotonicity, benefit bounds, eviction-cost positivity.
* Simulator: conservation laws for every policy on arbitrary traces.
"""

import math
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.ghost import StackDistanceProfiler
from repro.cache.lru import LRUCache
from repro.core import costbenefit as cb
from repro.core.candidates import iter_candidates
from repro.core.tree import PrefetchTree
from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.sim.engine import simulate

small_blocks = st.integers(min_value=0, max_value=15)
traces = st.lists(small_blocks, min_size=0, max_size=300)
wide_traces = st.lists(st.integers(min_value=0, max_value=500),
                       min_size=0, max_size=300)


class TestTreeProperties:
    @given(traces)
    @settings(max_examples=150, deadline=None)
    def test_invariants_unbounded(self, blocks):
        tree = PrefetchTree()
        tree.record_all(blocks)
        tree.check_invariants()

    @given(traces, st.integers(min_value=1, max_value=20))
    @settings(max_examples=150, deadline=None)
    def test_invariants_bounded(self, blocks, budget):
        tree = PrefetchTree(max_nodes=budget)
        tree.record_all(blocks)
        tree.check_invariants()
        assert tree.node_count <= budget

    @given(traces)
    @settings(max_examples=100, deadline=None)
    def test_counter_laws(self, blocks):
        tree = PrefetchTree()
        tree.record_all(blocks)
        s = tree.stats
        assert s.accesses == len(blocks)
        assert s.predictable + s.nodes_created == s.accesses
        # Every completed substring created a node; the final substring may
        # still be in progress (parse pointer below the root).
        assert s.nodes_created <= s.substrings <= s.nodes_created + 1
        assert tree.root.weight == s.substrings
        assert s.lvc_repeats <= s.lvc_opportunities <= s.accesses
        assert s.lvc_repeats_nonroot <= s.lvc_repeats

    @given(traces)
    @settings(max_examples=100, deadline=None)
    def test_parse_deterministic(self, blocks):
        t1, t2 = PrefetchTree(), PrefetchTree()
        t1.record_all(blocks)
        t2.record_all(blocks)
        assert t1.node_count == t2.node_count
        assert t1.root.weight == t2.root.weight

    @given(traces)
    @settings(max_examples=100, deadline=None)
    def test_child_weights_bounded_by_parent(self, blocks):
        tree = PrefetchTree()
        tree.record_all(blocks)
        for node in tree.iter_nodes():
            total_child = sum(c.weight for c in node.children.values())
            # Each traversal into a child also passed through the parent.
            assert total_child <= node.weight + len(node.children)

    @given(traces)
    @settings(max_examples=100, deadline=None)
    def test_candidate_probabilities_valid(self, blocks):
        tree = PrefetchTree()
        tree.record_all(blocks)
        for cand in iter_candidates(tree, max_depth=4, min_probability=1e-9):
            assert 0.0 < cand.probability <= 1.0 + 1e-9
            assert cand.probability <= cand.parent_probability + 1e-9

    @given(traces)
    @settings(max_examples=60, deadline=None)
    def test_depth1_candidates_sum_to_at_most_one(self, blocks):
        tree = PrefetchTree()
        tree.record_all(blocks)
        total = sum(p for _, p in tree.next_probabilities())
        assert total <= 1.0 + 1e-9


class TestLRUProperties:
    @given(wide_traces, st.integers(min_value=1, max_value=16))
    @settings(max_examples=150, deadline=None)
    def test_against_model(self, blocks, capacity):
        cache = LRUCache(capacity)
        model = OrderedDict()
        for b in blocks:
            hit = cache.access(b)
            model_hit = b in model
            assert hit == model_hit
            if model_hit:
                model.move_to_end(b)
            else:
                cache.insert(b)
                model[b] = None
                if len(model) > capacity:
                    model.popitem(last=False)
            assert len(cache) == len(model)
            assert cache.lru_block() == next(iter(model))

    @given(wide_traces, st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded(self, blocks, capacity):
        cache = LRUCache(capacity)
        for b in blocks:
            if not cache.access(b):
                cache.insert(b)
            assert len(cache) <= capacity


class TestProfilerProperties:
    @staticmethod
    def brute(blocks, max_depth):
        stack = OrderedDict()
        out = []
        for b in blocks:
            if b in stack:
                d = 0
                for candidate in reversed(stack):
                    d += 1
                    if candidate == b:
                        break
                out.append(d if d <= max_depth else None)
                del stack[b]
            else:
                out.append(None)
            stack[b] = None
            while len(stack) > max_depth:
                stack.popitem(last=False)
        return out

    @given(wide_traces, st.integers(min_value=1, max_value=12))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, blocks, depth):
        p = StackDistanceProfiler(max_depth=depth)
        got = [p.record(b) for b in blocks]
        assert got == self.brute(blocks, depth)

    @given(wide_traces)
    @settings(max_examples=100, deadline=None)
    def test_histogram_mass_conservation(self, blocks):
        p = StackDistanceProfiler(max_depth=8)
        for b in blocks:
            p.record(b)
        assert sum(p.histogram()) + p.cold_references == p.references
        if blocks:
            assert 0.0 <= p.cumulative_hit_rate(8) <= 1.0


class TestCostModelProperties:
    probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    depths = st.integers(min_value=1, max_value=50)
    esses = st.floats(min_value=0.0, max_value=32.0, allow_nan=False)
    tcpus = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)

    @given(depths, esses, tcpus)
    @settings(max_examples=200, deadline=None)
    def test_stall_bounds_and_monotonicity(self, depth, s, tcpu):
        params = SystemParams(t_cpu=tcpu)
        stall = cb.t_stall(params, depth, s)
        assert 0.0 <= stall <= params.t_disk
        assert cb.t_stall(params, depth + 1, s) <= stall + 1e-12

    @given(probs, probs, depths, esses)
    @settings(max_examples=200, deadline=None)
    def test_benefit_bounded_by_disk_time(self, p1, p2, depth, s):
        p_b, p_x = min(p1, p2), max(p1, p2)
        b = cb.benefit(PAPER_PARAMS, p_b, p_x, depth, s)
        assert b <= PAPER_PARAMS.t_disk + 1e-9
        assert b >= -PAPER_PARAMS.t_disk - 1e-9

    @given(probs, depths, esses)
    @settings(max_examples=200, deadline=None)
    def test_eviction_cost_nonnegative(self, p, depth, s):
        cost = cb.cost_prefetch_eviction(PAPER_PARAMS, p, depth, s)
        assert cost >= 0.0 or cost == math.inf

    @given(probs, probs)
    @settings(max_examples=200, deadline=None)
    def test_overhead_within_driver_time(self, p1, p2):
        p_b, p_x = min(p1, p2), max(p1, p2)
        oh = cb.prefetch_overhead(PAPER_PARAMS, p_b, p_x)
        assert 0.0 <= oh <= PAPER_PARAMS.t_driver + 1e-12


class TestSimulatorProperties:
    policy_names = st.sampled_from(
        ["no-prefetch", "next-limit", "tree", "tree-next-limit",
         "tree-lvc", "perfect-selector"]
    )

    @given(wide_traces, st.integers(min_value=1, max_value=32), policy_names)
    @settings(max_examples=60, deadline=None)
    def test_conservation(self, blocks, cache_size, policy):
        stats = simulate(PAPER_PARAMS, make_policy(policy), blocks, cache_size)
        stats.check_conservation()
        assert stats.accesses == len(blocks)
        assert 0.0 <= stats.miss_rate <= 100.0
        assert stats.elapsed_time >= 0.0

    @given(wide_traces, st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_bounded(self, blocks, cache_size):
        from repro.sim.engine import Simulator

        sim = Simulator(PAPER_PARAMS, make_policy("tree"), cache_size)
        for i, b in enumerate(blocks):
            sim.step(b)
            assert sim.cache.occupancy <= cache_size
        sim.finalize()

    @given(wide_traces, st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_no_prefetch_equals_plain_lru(self, blocks, cache_size):
        stats = simulate(PAPER_PARAMS, make_policy("no-prefetch"), blocks,
                         cache_size)
        lru = LRUCache(cache_size)
        misses = 0
        for b in blocks:
            if not lru.access(b):
                misses += 1
                lru.insert(b)
        assert stats.misses == misses


class TestPredictorProperties:
    predictor_names = st.sampled_from(
        ["lz", "ppm", "prob-graph", "markov", "last-successor"]
    )

    @given(wide_traces, predictor_names)
    @settings(max_examples=80, deadline=None)
    def test_predictions_always_valid(self, blocks, name):
        from repro.predictors import make_predictor

        p = make_predictor(name)
        for b in blocks:
            outcome = p.update(b)
            assert isinstance(outcome, bool)
        preds = p.predictions()
        seen_blocks = [blk for blk, _ in preds]
        assert len(seen_blocks) == len(set(seen_blocks))  # no duplicates
        probs = [prob for _, prob in preds]
        assert all(0.0 < prob <= 1.0 + 1e-9 for prob in probs)
        assert probs == sorted(probs, reverse=True)
        assert p.memory_items() >= 0

    @given(traces)
    @settings(max_examples=60, deadline=None)
    def test_graph_window1_equals_markov(self, blocks):
        from repro.predictors.graph import ProbabilityGraphPredictor
        from repro.predictors.markov import MarkovPredictor

        g = ProbabilityGraphPredictor(lookahead=1, min_probability=1e-9,
                                      max_successors=64)
        m = MarkovPredictor(min_probability=1e-9, max_successors=64)
        g_out = [g.update(b) for b in blocks]
        m_out = [m.update(b) for b in blocks]
        assert g_out == m_out
        assert dict(g.predictions()) == pytest.approx(dict(m.predictions()))

    @given(wide_traces, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_ppm_bounded_blend(self, blocks, order):
        from repro.predictors.ppm import PPMPredictor

        p = PPMPredictor(max_order=order, min_probability=1e-9)
        for b in blocks:
            p.update(b)
        total = sum(prob for _, prob in p.predictions())
        assert total <= 1.0 + 1e-6


class TestPrefetchCacheCheapList:
    """The amortised min-cost cache must match a brute-force scan under any
    interleaving of inserts, removals, refreshes and period advances."""

    ops = st.lists(
        st.tuples(
            st.sampled_from(["insert", "take", "evict", "refresh", "query",
                             "advance"]),
            st.integers(min_value=0, max_value=30),   # block
            st.floats(min_value=0.01, max_value=1.0), # probability
            st.integers(min_value=1, max_value=6),    # depth
        ),
        min_size=1, max_size=120,
    )

    @given(ops, st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, operations, s):
        from repro.cache.prefetch_cache import PrefetchCache, PrefetchEntry

        pc = PrefetchCache(PAPER_PARAMS, capacity=64)
        period = 0
        for op, block, prob, depth in operations:
            if op == "insert" and block not in pc and not pc.is_full:
                pc.insert(PrefetchEntry(
                    block=block, probability=prob, depth=depth,
                    issue_period=period, arrival_time=0.0,
                ))
            elif op == "take" and block in pc:
                pc.take(block)
            elif op == "evict" and block in pc:
                pc.evict(block)
            elif op == "refresh":
                pc.refresh(block, prob, depth, period)
            elif op == "advance":
                period += 1
            elif op == "query":
                got = pc.min_cost_entry(period, s)
                if len(pc) == 0:
                    assert got is None
                else:
                    brute = min(
                        (pc.eviction_cost(e, period, s), repr(e.block))
                        for e in pc
                    )
                    assert got is not None
                    assert got[1] == pytest.approx(brute[0])
