"""The paper's LZ78 prefetch tree behind the generic predictor interface.

Thin adapter over :class:`repro.core.tree.PrefetchTree`; used by the
predictor-comparison benchmarks so the tree competes with the alternative
models under identical policy machinery.  (The full *tree* policy in
:mod:`repro.policies.tree` remains the faithful reproduction - it also uses
multi-level candidates when the prefetch horizon allows.)
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.tree import PrefetchTree
from repro.predictors.base import Block, Prediction, Predictor


class LZPredictor(Predictor):
    """Depth-1 predictions from the LZ78 parse tree."""

    name = "lz"

    def __init__(self, max_nodes: Optional[int] = None) -> None:
        self.tree = PrefetchTree(max_nodes=max_nodes)

    def update(self, block: Block) -> bool:
        return self.tree.record_access(block).predictable

    def predictions(self) -> List[Prediction]:
        cur = self.tree.current
        weight = cur.weight
        if weight <= 0 or not cur.children:
            return []
        preds = [
            (b, child.weight / weight)
            for b, child in self.tree.iter_relevant_children(cur)
        ]
        preds.sort(key=lambda item: -item[1])
        return preds

    def memory_items(self) -> int:
        return self.tree.node_count

    # ----------------------------------------------------------- snapshots

    snapshot_kind = "lz"

    def snapshot_state(self):
        meta, items = self.tree.snapshot_state()
        return {"tree": meta}, items

    def restore_state(self, meta, items) -> None:
        self.tree.restore_state(meta["tree"], items)
