"""Multi-order context model (PPM-style), after Kroeger & Long [8].

"Predicting File System Actions from Prior Events" models the access
stream with a finite multi-order context model borrowed from PPM data
compression: for every context (the last ``o`` accesses, ``o`` up to
``max_order``) it counts which block followed.  Prediction blends the
orders, trusting longer (more specific) contexts more.

Implementation notes:

* Contexts are stored as ``dict[tuple, Counter-like dict]``; each order has
  its own table.
* Blending: orders are consulted from longest to shortest; order ``o``
  receives the probability mass not claimed by longer orders, scaled by an
  escape factor proportional to how often the longer contexts mispredicted
  (simple PPM-C-like escape: ``distinct / (total + distinct)``).
* Memory is bounded per order with LRU eviction of whole contexts, the
  analogue of the paper's LRU-of-substrings tree cap (Section 9.3).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.predictors.base import Block, Prediction, Predictor


class _ContextTable:
    """Successor counts per context, with LRU-bounded context population."""

    __slots__ = ("max_contexts", "_table")

    def __init__(self, max_contexts: Optional[int]) -> None:
        self.max_contexts = max_contexts
        self._table: "OrderedDict[Tuple, Dict[Block, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._table)

    def successors(self, context: Tuple) -> Optional[Dict[Block, int]]:
        entry = self._table.get(context)
        if entry is not None:
            self._table.move_to_end(context)
        return entry

    def record(self, context: Tuple, block: Block) -> None:
        entry = self._table.get(context)
        if entry is None:
            entry = {}
            self._table[context] = entry
            if (
                self.max_contexts is not None
                and len(self._table) > self.max_contexts
            ):
                self._table.popitem(last=False)
        else:
            self._table.move_to_end(context)
        entry[block] = entry.get(block, 0) + 1


class PPMPredictor(Predictor):
    """Blended multi-order context prediction.

    Parameters
    ----------
    max_order:
        Longest context length (Kroeger & Long found order 2-4 effective).
    max_contexts_per_order:
        LRU bound on retained contexts per order (``None`` = unbounded).
    min_probability:
        Predictions below this blended probability are dropped.
    """

    name = "ppm"

    def __init__(
        self,
        max_order: int = 3,
        *,
        max_contexts_per_order: Optional[int] = None,
        min_probability: float = 1e-3,
    ) -> None:
        if max_order < 1:
            raise ValueError(f"max_order must be >= 1, got {max_order!r}")
        if min_probability <= 0.0:
            raise ValueError(
                f"min_probability must be > 0, got {min_probability!r}"
            )
        self.max_order = max_order
        self.min_probability = min_probability
        self._tables = [
            _ContextTable(max_contexts_per_order) for _ in range(max_order)
        ]
        self._history: Deque[Block] = deque(maxlen=max_order)
        self._last_predictions: Dict[Block, float] = {}

    def _context(self, order: int) -> Optional[Tuple]:
        if len(self._history) < order:
            return None
        if order == 0:
            return ()
        return tuple(list(self._history)[-order:])

    def update(self, block: Block) -> bool:
        predicted = block in self._last_predictions
        for order in range(1, self.max_order + 1):
            context = self._context(order)
            if context is not None:
                self._tables[order - 1].record(context, block)
        self._history.append(block)
        self._last_predictions = dict(self.predictions())
        return predicted

    def predictions(self) -> List[Prediction]:
        """Blend orders longest-first with PPM-C-like escape mass."""
        blended: Dict[Block, float] = {}
        remaining = 1.0
        for order in range(self.max_order, 0, -1):
            context = self._context(order)
            if context is None:
                continue
            successors = self._tables[order - 1].successors(context)
            if not successors:
                continue
            total = sum(successors.values())
            distinct = len(successors)
            escape = distinct / (total + distinct)
            claimed = remaining * (1.0 - escape)
            for blk, count in successors.items():
                blended[blk] = blended.get(blk, 0.0) + claimed * count / total
            remaining *= escape
            if remaining < self.min_probability:
                break
        preds = [
            (blk, p) for blk, p in blended.items() if p >= self.min_probability
        ]
        preds.sort(key=lambda item: -item[1])
        return preds

    def memory_items(self) -> int:
        return sum(len(t) for t in self._tables)

    # ----------------------------------------------------------- snapshots

    snapshot_kind = "ppm"

    def snapshot_state(self):
        """Items are ``[order, context, [[successor, count], ...]]`` in
        each table's LRU order (oldest first), so restore reproduces the
        exact eviction order of the live model."""
        items = []
        for order, table in enumerate(self._tables, start=1):
            for context, successors in table._table.items():
                items.append(
                    [order, list(context), [[b, c] for b, c in successors.items()]]
                )
        meta = {
            "max_order": self.max_order,
            "min_probability": self.min_probability,
            "max_contexts_per_order": (
                self._tables[0].max_contexts if self._tables else None
            ),
            "history": list(self._history),
        }
        return meta, items

    def restore_state(self, meta, items) -> None:
        self.max_order = meta["max_order"]
        self.min_probability = meta["min_probability"]
        self._tables = [
            _ContextTable(meta["max_contexts_per_order"])
            for _ in range(self.max_order)
        ]
        for order, context, successors in items:
            self._tables[order - 1]._table[tuple(context)] = {
                b: c for b, c in successors
            }
        self._history = deque(meta["history"], maxlen=self.max_order)
        # Recomputing is exact: update() ends with this same call, so the
        # tables' LRU order already reflects its move_to_ends.
        self._last_predictions = dict(self.predictions())
