"""Probability graph predictor, after Griffioen & Appleton [6].

"Reducing File System Latency Using a Predictive Approach" builds a
*probability graph*: a node per block, and a directed edge ``a -> b``
counted every time ``b`` is referenced within a small *lookahead window*
after ``a``.  Unlike the LZ tree, which conditions on an exact path, the
graph aggregates all near-future co-occurrence, making it robust to
interleaving but blind to ordering beyond the window.

Predictions for the current block are its out-edges' relative frequencies:
``p(b | a) = count(a -> b) / total_out(a)``.

Memory is bounded two ways, mirroring the original paper's practical
concerns: an LRU cap on the node population and a per-node cap on tracked
successors (weakest edge evicted first).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

from repro.predictors.base import Block, Prediction, Predictor


class _NodeEdges:
    """Out-edges of one block with a bounded successor set."""

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts: Dict[Block, int] = {}
        self.total = 0

    def record(self, successor: Block, max_successors: int) -> None:
        counts = self.counts
        if successor in counts:
            counts[successor] += 1
        else:
            if len(counts) >= max_successors:
                weakest = min(counts, key=counts.get)
                # Replace only if the newcomer could plausibly matter;
                # evicting a strong edge for a one-off would thrash.
                if counts[weakest] > 1:
                    self.total += 1
                    return
                del counts[weakest]
            counts[successor] = 1
        self.total += 1


class ProbabilityGraphPredictor(Predictor):
    """Windowed co-occurrence graph over the reference stream.

    Parameters
    ----------
    lookahead:
        Window size: an access to ``b`` credits edges from each of the
        previous ``lookahead`` distinct accesses.  1 reduces to a
        first-order Markov chain.
    max_nodes:
        LRU bound on tracked blocks (``None`` = unbounded).
    max_successors:
        Cap on out-edges per node.
    min_probability:
        Drop predictions below this probability.
    """

    name = "prob-graph"

    def __init__(
        self,
        lookahead: int = 2,
        *,
        max_nodes: Optional[int] = None,
        max_successors: int = 16,
        min_probability: float = 1e-3,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead!r}")
        if max_successors < 1:
            raise ValueError(
                f"max_successors must be >= 1, got {max_successors!r}"
            )
        if min_probability <= 0.0:
            raise ValueError(
                f"min_probability must be > 0, got {min_probability!r}"
            )
        self.lookahead = lookahead
        self.max_nodes = max_nodes
        self.max_successors = max_successors
        self.min_probability = min_probability
        self._nodes: "OrderedDict[Block, _NodeEdges]" = OrderedDict()
        self._window: Deque[Block] = deque(maxlen=lookahead)
        self._current: Optional[Block] = None

    def _node(self, block: Block) -> _NodeEdges:
        node = self._nodes.get(block)
        if node is None:
            node = _NodeEdges()
            self._nodes[block] = node
            if self.max_nodes is not None and len(self._nodes) > self.max_nodes:
                self._nodes.popitem(last=False)
        else:
            self._nodes.move_to_end(block)
        return node

    def update(self, block: Block) -> bool:
        predicted = False
        current = self._current
        if current is not None:
            node = self._nodes.get(current)
            if node is not None and block in node.counts:
                predicted = True
        for predecessor in self._window:
            if predecessor != block:
                self._node(predecessor).record(block, self.max_successors)
        self._window.append(block)
        self._current = block
        return predicted

    def predictions(self) -> List[Prediction]:
        if self._current is None:
            return []
        node = self._nodes.get(self._current)
        if node is None or node.total == 0:
            return []
        preds = [
            (blk, count / node.total)
            for blk, count in node.counts.items()
            if count / node.total >= self.min_probability
        ]
        preds.sort(key=lambda item: -item[1])
        return preds

    def memory_items(self) -> int:
        return sum(len(n.counts) for n in self._nodes.values())

    # ----------------------------------------------------------- snapshots

    snapshot_kind = "prob-graph"

    def snapshot_state(self):
        items = [
            [block, node.total, [[b, c] for b, c in node.counts.items()]]
            for block, node in self._nodes.items()
        ]
        meta = {
            "lookahead": self.lookahead,
            "max_nodes": self.max_nodes,
            "max_successors": self.max_successors,
            "min_probability": self.min_probability,
            "window": list(self._window),
            "current": self._current,
        }
        return meta, items

    def restore_state(self, meta, items) -> None:
        self.lookahead = meta["lookahead"]
        self.max_nodes = meta["max_nodes"]
        self.max_successors = meta["max_successors"]
        self.min_probability = meta["min_probability"]
        self._nodes = OrderedDict()
        for block, total, counts in items:
            node = _NodeEdges()
            node.total = total
            node.counts = {b: c for b, c in counts}
            self._nodes[block] = node
        self._window = deque(meta["window"], maxlen=self.lookahead)
        self._current = meta["current"]
