"""First-order Markov and last-successor predictors.

Two classical baselines that bracket the sophisticated models:

* :class:`MarkovPredictor` - a first-order Markov chain (successor counts
  per block); equivalent to the probability graph with a window of 1, but
  kept separate as the canonical minimal probabilistic model.
* :class:`LastSuccessorPredictor` - predicts exactly the block that
  followed the current block last time (probability taken as its observed
  repeat rate).  This is the predictor analogue of the paper's
  *last visited child* study (Section 9.6, Table 3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.predictors.base import Block, Prediction, Predictor


class MarkovPredictor(Predictor):
    """First-order Markov chain over the block stream."""

    name = "markov"

    def __init__(
        self,
        *,
        max_nodes: Optional[int] = None,
        max_successors: int = 16,
        min_probability: float = 1e-3,
    ) -> None:
        if max_successors < 1:
            raise ValueError(
                f"max_successors must be >= 1, got {max_successors!r}"
            )
        if min_probability <= 0.0:
            raise ValueError(
                f"min_probability must be > 0, got {min_probability!r}"
            )
        self.max_nodes = max_nodes
        self.max_successors = max_successors
        self.min_probability = min_probability
        self._counts: "OrderedDict[Block, Dict[Block, int]]" = OrderedDict()
        self._totals: Dict[Block, int] = {}
        self._current: Optional[Block] = None

    def update(self, block: Block) -> bool:
        predicted = False
        current = self._current
        if current is not None and current != block:
            # Self-transitions are skipped: a repeat access is already a
            # cache hit, so "predicting" it can never drive a prefetch
            # (the probability graph makes the same choice).
            successors = self._counts.get(current)
            predicted = bool(successors) and block in successors
            if successors is None:
                successors = {}
                self._counts[current] = successors
                self._totals[current] = 0
                if self.max_nodes is not None and len(self._counts) > self.max_nodes:
                    evicted, _ = self._counts.popitem(last=False)
                    del self._totals[evicted]
            else:
                self._counts.move_to_end(current)
            if block in successors:
                successors[block] += 1
            elif len(successors) < self.max_successors:
                successors[block] = 1
            self._totals[current] = self._totals.get(current, 0) + 1
        self._current = block
        return predicted

    def predictions(self) -> List[Prediction]:
        current = self._current
        if current is None:
            return []
        successors = self._counts.get(current)
        total = self._totals.get(current, 0)
        if not successors or total == 0:
            return []
        preds = [
            (blk, count / total)
            for blk, count in successors.items()
            if count / total >= self.min_probability
        ]
        preds.sort(key=lambda item: -item[1])
        return preds

    def memory_items(self) -> int:
        return sum(len(s) for s in self._counts.values())

    # ----------------------------------------------------------- snapshots

    snapshot_kind = "markov"

    def snapshot_state(self):
        items = [
            [block, self._totals[block], [[b, c] for b, c in successors.items()]]
            for block, successors in self._counts.items()
        ]
        meta = {
            "max_nodes": self.max_nodes,
            "max_successors": self.max_successors,
            "min_probability": self.min_probability,
            "current": self._current,
        }
        return meta, items

    def restore_state(self, meta, items) -> None:
        self.max_nodes = meta["max_nodes"]
        self.max_successors = meta["max_successors"]
        self.min_probability = meta["min_probability"]
        self._counts = OrderedDict()
        self._totals = {}
        for block, total, successors in items:
            self._counts[block] = {b: c for b, c in successors}
            self._totals[block] = total
        self._current = meta["current"]


class LastSuccessorPredictor(Predictor):
    """Predicts the previously observed successor of the current block."""

    name = "last-successor"

    def __init__(self, *, max_nodes: Optional[int] = None) -> None:
        self.max_nodes = max_nodes
        # block -> (last successor, repeats, opportunities)
        self._last: "OrderedDict[Block, Tuple[Block, int, int]]" = OrderedDict()
        self._current: Optional[Block] = None

    def update(self, block: Block) -> bool:
        predicted = False
        current = self._current
        if current is not None:
            entry = self._last.get(current)
            if entry is None:
                self._last[current] = (block, 0, 0)
                if self.max_nodes is not None and len(self._last) > self.max_nodes:
                    self._last.popitem(last=False)
            else:
                successor, repeats, opportunities = entry
                predicted = successor == block
                if predicted:
                    repeats += 1
                self._last[current] = (block, repeats, opportunities + 1)
                self._last.move_to_end(current)
        self._current = block
        return predicted

    def predictions(self) -> List[Prediction]:
        current = self._current
        if current is None:
            return []
        entry = self._last.get(current)
        if entry is None:
            return []
        successor, repeats, opportunities = entry
        if opportunities == 0:
            # Seen once: a weak default guess.
            return [(successor, 0.5)]
        p = max(repeats / opportunities, 1e-6)
        return [(successor, min(p, 1.0))]

    def memory_items(self) -> int:
        return len(self._last)

    # ----------------------------------------------------------- snapshots

    snapshot_kind = "last-successor"

    def snapshot_state(self):
        items = [
            [block, successor, repeats, opportunities]
            for block, (successor, repeats, opportunities) in self._last.items()
        ]
        meta = {"max_nodes": self.max_nodes, "current": self._current}
        return meta, items

    def restore_state(self, meta, items) -> None:
        self.max_nodes = meta["max_nodes"]
        self._last = OrderedDict()
        for block, successor, repeats, opportunities in items:
            self._last[block] = (successor, repeats, opportunities)
        self._current = meta["current"]
