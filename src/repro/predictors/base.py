"""Pluggable access-pattern predictors.

The paper's Section 10 situates the LZ prefetch tree among several other
history-based predictors: multi-order context models (Kroeger & Long [8]),
probability graphs over a lookahead window (Griffioen & Appleton [6]),
per-file Markov models, and so on.  The cost-benefit machinery is agnostic
to *where* the probabilities come from, so this package defines a minimal
predictor interface and implementations of the main alternatives; the
generic :class:`~repro.policies.predictor.PredictorPolicy` runs any of them
under the same Section 7 decision rule, isolating prediction quality from
the rest of the system.

A predictor consumes the access stream one block at a time and, between
accesses, offers depth-1 predictions: ``(block, probability)`` pairs for
the next access.
"""

from __future__ import annotations

import abc
from typing import Hashable, List, Tuple

Block = Hashable
Prediction = Tuple[Block, float]


class Predictor(abc.ABC):
    """Online next-access predictor."""

    #: Identifier used in policy names and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def update(self, block: Block) -> bool:
        """Fold one access into the model.

        Returns whether the access was *predicted* - i.e. present in the
        prediction set the model would have offered just before seeing it
        (the analogue of the paper's Table 2 predictability).
        """

    @abc.abstractmethod
    def predictions(self) -> List[Prediction]:
        """Current next-access candidates, most probable first.

        Probabilities are in (0, 1] and, as a set, sum to at most 1 plus
        rounding; callers treat them as the ``p_b`` of Eq. 1 at depth 1.
        """

    def memory_items(self) -> int:
        """Rough model size in retained items (contexts, edges, nodes)."""
        return 0
