"""Pluggable next-access predictors (paper Section 10's alternatives)."""

from repro.predictors.base import Prediction, Predictor
from repro.predictors.graph import ProbabilityGraphPredictor
from repro.predictors.lz import LZPredictor
from repro.predictors.markov import LastSuccessorPredictor, MarkovPredictor
from repro.predictors.ppm import PPMPredictor

#: Factories keyed by predictor name, for CLI/bench sweeps.
PREDICTORS = {
    LZPredictor.name: LZPredictor,
    PPMPredictor.name: PPMPredictor,
    ProbabilityGraphPredictor.name: ProbabilityGraphPredictor,
    MarkovPredictor.name: MarkovPredictor,
    LastSuccessorPredictor.name: LastSuccessorPredictor,
}


def make_predictor(name: str, **kwargs) -> Predictor:
    """Instantiate a predictor by name."""
    try:
        factory = PREDICTORS[name]
    except KeyError:
        known = ", ".join(sorted(PREDICTORS))
        raise ValueError(f"unknown predictor {name!r}; known: {known}")
    return factory(**kwargs)


__all__ = [
    "LastSuccessorPredictor",
    "LZPredictor",
    "MarkovPredictor",
    "PPMPredictor",
    "PREDICTORS",
    "Prediction",
    "Predictor",
    "ProbabilityGraphPredictor",
    "make_predictor",
]
