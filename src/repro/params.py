"""System model parameters for the trace-driven prefetching simulator.

The paper (Section 3 / Section 8.1) models a uniprocessor with a file buffer
cache and constant-cost I/O primitives.  All times are in **milliseconds**,
matching the paper's reporting units:

* ``t_hit``    -- time to read a block that is already in the buffer cache
                  (0.243 ms, from Patterson's TIP measurements).
* ``t_driver`` -- device-driver overhead to initiate a prefetch or demand
                  fetch: allocate a buffer, queue the request, service the
                  completion interrupt (0.580 ms).
* ``t_disk``   -- constant disk access time (15.0 ms).
* ``t_cpu``    -- average computation time between two I/O requests
                  (50.0 ms by default; Section 9.2.3 varies 20-640 ms).

The paper assumes an unbounded number of disks (no congestion), single-block
I/O requests, and a buffer cache partitioned into a demand cache (LRU) and a
prefetch cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict


@dataclass(frozen=True)
class SystemParams:
    """Immutable bundle of the simulator's timing and sizing constants.

    Instances are hashable and safe to share between policies, the
    cost-benefit engine, and the simulation engine.
    """

    t_hit: float = 0.243
    t_driver: float = 0.580
    t_disk: float = 15.0
    t_cpu: float = 50.0
    block_size: int = 8192
    """Bytes per cache block; used to convert byte-sized L1 caches and the
    paper's megabyte figures into block counts."""

    def __post_init__(self) -> None:
        for name in ("t_hit", "t_driver", "t_disk", "t_cpu"):
            value = getattr(self, name)
            if not (value >= 0.0):
                raise ValueError(f"{name} must be non-negative, got {value!r}")
        if self.t_disk <= 0.0:
            raise ValueError(f"t_disk must be positive, got {self.t_disk!r}")
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size!r}")

    @property
    def t_miss(self) -> float:
        """Full cost of a demand miss: driver overhead, disk access, cache read.

        ``T_miss = T_driver + T_disk + T_hit`` (Section 6.2).
        """
        return self.t_driver + self.t_disk + self.t_hit

    def access_period_compute(self, s: float) -> float:
        """CPU time consumed in one access period when issuing ``s`` prefetches.

        One access period contains the application computation ``t_cpu``, the
        buffer-cache read ``t_hit`` and ``s`` driver invocations (Eq. 3's
        per-period term).
        """
        if s < 0.0:
            raise ValueError(f"s must be non-negative, got {s!r}")
        return self.t_cpu + self.t_hit + s * self.t_driver

    def bytes_to_blocks(self, num_bytes: int) -> int:
        """Convert a byte count (e.g. a 30 MB L1 cache) to whole blocks."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes!r}")
        return num_bytes // self.block_size

    def with_t_cpu(self, t_cpu: float) -> "SystemParams":
        """Return a copy with a different compute time (Section 9.2.3 sweeps)."""
        return replace(self, t_cpu=t_cpu)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view, for experiment manifests and reports."""
        return {
            "t_hit": self.t_hit,
            "t_driver": self.t_driver,
            "t_disk": self.t_disk,
            "t_cpu": self.t_cpu,
            "block_size": self.block_size,
        }


#: The exact constants used throughout the paper's evaluation (Section 8.1).
PAPER_PARAMS = SystemParams()
