"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``  Run one policy over a workload and print the statistics.
``sweep``     Miss rate vs cache size for one or more policies.
``trace``     Generate a synthetic workload and write it to a file.
``report``    Run the full experiment battery and write EXPERIMENTS.md
              (thin wrapper over :mod:`repro.analysis.report`).
``stats``     Characterise a workload (sequentiality, reuse, predictability).
``train``     Run a policy over a workload and snapshot the trained state
              (a file or a :class:`~repro.store.ModelStore` registry entry).
``inspect``   Verify a snapshot and print its header, or list a registry.
``serve``     Run the online prefetch advisory daemon (:mod:`repro.service`).
``replay``    Replay a workload against a live daemon and report throughput.
``chaos``     Replay through a fault-injecting proxy (resets, delays,
              corrupt lines) with retrying clients, and report what the
              resilience layer absorbed.
``metrics``   One Prometheus-text-format scrape of a live daemon or
              fleet gateway (the STATS exposition, printed to stdout).
``top``       Live terminal view over server-level STATS: sessions,
              advice rates, latency percentiles, per-worker rows.
``campaign``  The scenario lab (:mod:`repro.campaign`): ``run`` drives a
              declarative scenario file end-to-end against a real fleet
              and writes a content-hashed result bundle; ``compare``
              renders a per-metric delta table against a baseline bundle
              (non-zero exit on regression); ``list`` shows the bundles
              under an output directory.

Examples
--------
::

    python -m repro simulate --trace cad --policy tree --cache 1024
    python -m repro sweep --trace sitar --policies no-prefetch next-limit tree
    python -m repro sweep --trace cello --jobs 4 --cache-dir .repro-results
    python -m repro trace --name snake --refs 200000 --out snake.npz
    python -m repro report --refs 50000 --out EXPERIMENTS.md
    python -m repro stats --trace cello --refs 100000
    python -m repro train --trace cad --policy tree --store models --name tree-cad
    python -m repro inspect --store models --model tree-cad
    python -m repro serve --port 7199 --store models --model tree-cad
    python -m repro fleet --workers 3 --port 7199 --checkpoint-dir ckpt \
        --checkpoint-every-s 1
    python -m repro replay --trace cad --clients 4 --port 7199
    python -m repro replay --trace cad --port 7199 --json
    python -m repro chaos --trace cad --port 7199 --reset-every 40
    python -m repro campaign run examples/campaigns/diurnal_chaos.toml \
        --out .campaigns
    python -m repro campaign compare benchmarks/campaigns/baseline \
        .campaigns/diurnal-chaos-*-w2
    python -m repro campaign list --out .campaigns
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import zipfile
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.scheduler import (
    RunSpec,
    Scheduler,
    SchedulerError,
    resolve_trace,
)
from repro.analysis.sweep import spec_grid
from repro.analysis.tables import render_dict, render_series
from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy, policy_names
from repro.traces import io as trace_io
from repro.traces.synthetic import TRACE_NAMES, make_trace

#: Policy parameters settable from the command line.
_POLICY_KWARGS = ("threshold", "num_children", "max_tree_nodes",
                  "max_candidates")

#: ``--t-*`` flags mapped onto :class:`SystemParams` fields.
_PARAM_FLAGS = ("t_cpu", "t_disk", "t_driver", "t_hit")


class CLIError(Exception):
    """A user-facing failure: print one line and exit nonzero."""


def _load_workload(args) -> list:
    """Resolve ``--trace`` (generator name or file path) to a block list."""
    if args.trace in TRACE_NAMES:
        trace = make_trace(args.trace, num_references=args.refs, seed=args.seed)
    else:
        try:
            trace = trace_io.load(args.trace)
        except FileNotFoundError:
            raise CLIError(
                f"trace file not found: {args.trace!r} "
                f"(workload names are: {', '.join(TRACE_NAMES)})"
            ) from None
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise CLIError(
                f"cannot read trace file {args.trace!r}: {exc}"
            ) from None
    return trace.as_list()


def _check_workload(args) -> None:
    """Fail fast (one clean line) on an unusable ``--trace`` argument.

    Named synthetic workloads need no check; a file path is loaded once
    here — into the process-wide trace cache, so the serial execution
    path does not read it twice — purely to surface I/O and format
    errors before any simulation starts.
    """
    if args.trace in TRACE_NAMES:
        return
    try:
        resolve_trace(args.trace, args.refs, args.seed)
    except FileNotFoundError:
        raise CLIError(
            f"trace file not found: {args.trace!r} "
            f"(workload names are: {', '.join(TRACE_NAMES)})"
        ) from None
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise CLIError(
            f"cannot read trace file {args.trace!r}: {exc}"
        ) from None


def _run_specs(args, specs: List[RunSpec]) -> tuple:
    """Run a spec batch through one scheduler; returns (results, scheduler).

    The single execution path for ``simulate`` and ``sweep``:
    ``--jobs``-wide process fan-out plus the optional persistent result
    cache, with worker-side failures surfaced as clean one-line errors.
    """
    _check_workload(args)
    try:
        scheduler = Scheduler(
            max_workers=getattr(args, "jobs", 1),
            cache_dir=getattr(args, "cache_dir", None),
            run_timeout_s=getattr(args, "run_timeout_s", None),
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    try:
        return scheduler.run_all(specs), scheduler
    except SchedulerError as exc:
        raise CLIError(str(exc)) from None
    except trace_io.TraceFormatError as exc:
        raise CLIError(f"cannot read trace file {args.trace!r}: {exc}") from None


def _param_overrides(args) -> Dict[str, float]:
    """The ``--t-*`` values the user actually set, keyed by field name."""
    return {
        flag: getattr(args, flag)
        for flag in _PARAM_FLAGS
        if getattr(args, flag, None) is not None
    }


def _params(args) -> SystemParams:
    overrides = _param_overrides(args)
    if not overrides:
        return PAPER_PARAMS
    try:
        return replace(PAPER_PARAMS, **overrides)
    except ValueError as exc:
        raise CLIError(str(exc)) from None


def _policy_kwargs(args) -> dict:
    return {
        key: getattr(args, key)
        for key in _POLICY_KWARGS
        if getattr(args, key, None) is not None
    }


def _add_param_flags(parser: argparse.ArgumentParser) -> None:
    """``--t-*`` hardware-timing overrides (cf. bench_modern_hardware)."""
    parser.add_argument("--t-cpu", type=float, default=None, dest="t_cpu",
                        help="override T_cpu (ms); default 50")
    parser.add_argument("--t-disk", type=float, default=None, dest="t_disk",
                        help="override T_disk (ms); default 15")
    parser.add_argument("--t-driver", type=float, default=None,
                        dest="t_driver",
                        help="override T_driver (ms); default 0.58")
    parser.add_argument("--t-hit", type=float, default=None, dest="t_hit",
                        help="override T_hit (ms); default 0.243")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    """Distributed-tracing knobs shared by serve/fleet/replay."""
    parser.add_argument(
        "--trace-dir", default=None, dest="trace_dir",
        help="write NDJSON span files here (enables distributed tracing)",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=1.0, dest="trace_sample",
        help="fraction of sessions to trace, sampled deterministically "
             "by trace id (default 1.0)",
    )
    parser.add_argument(
        "--trace-seed", type=int, default=0, dest="trace_seed",
        help="seed for trace-id derivation and sampling (default 0)",
    )


def _build_tracer(args, component: str):
    """A :class:`~repro.obs.trace.Tracer` from the --trace-* flags, or
    ``None`` when tracing is off."""
    if args.trace_dir is None:
        return None
    from repro.obs.trace import Tracer

    try:
        return Tracer(
            component, trace_dir=args.trace_dir,
            sample=args.trace_sample, seed=args.trace_seed,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Scheduler knobs shared by simulate/sweep/report."""
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for independent simulations (default 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, dest="cache_dir",
        help="persistent result cache: identical runs replay from disk",
    )
    parser.add_argument(
        "--run-timeout-s", type=float, default=None, dest="run_timeout_s",
        help="kill and retry a pooled simulation exceeding this "
             "(needs --jobs > 1)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", required=True,
        help=f"workload name ({', '.join(TRACE_NAMES)}) or a trace file path",
    )
    parser.add_argument("--refs", type=int, default=100_000,
                        help="references to generate (generator traces only)")
    parser.add_argument("--seed", type=int, default=1999)
    _add_param_flags(parser)
    parser.add_argument("--threshold", type=float, default=None,
                        help="tree-threshold's probability threshold")
    parser.add_argument("--num-children", type=int, default=None,
                        dest="num_children",
                        help="tree-children's child count")
    parser.add_argument("--max-tree-nodes", type=int, default=None,
                        dest="max_tree_nodes",
                        help="prefetch-tree node budget (Figure 13)")
    parser.add_argument("--max-candidates", type=int, default=None,
                        dest="max_candidates",
                        help="candidate frontier width per access period")


def _timing_overrides(args) -> Dict[str, float]:
    """Validated ``--t-*`` overrides in :class:`RunSpec` field form."""
    _params(args)  # reject bad values (e.g. negative t_disk) up front
    return _param_overrides(args)


def cmd_simulate(args) -> int:
    spec = RunSpec(
        trace_name=args.trace,
        policy_name=args.policy,
        cache_size=args.cache,
        num_references=args.refs,
        seed=args.seed,
        policy_kwargs=_policy_kwargs(args),
        **_timing_overrides(args),
    )
    results, _ = _run_specs(args, [spec])
    d = results[0].as_dict()
    extra = d.pop("extra")
    print(render_dict(d, title=f"{args.policy} on {args.trace} "
                               f"(cache {args.cache} blocks)"))
    if extra:
        print(render_dict(extra, title="extra"))
    return 0


def cmd_sweep(args) -> int:
    start = time.perf_counter()
    specs = spec_grid(
        [args.trace],
        args.policies,
        args.sizes,
        num_references=args.refs,
        seed=args.seed,
        policy_kwargs=_policy_kwargs(args),
        **_timing_overrides(args),
    )
    results, scheduler = _run_specs(args, specs)
    by_spec = iter(results)
    series = {
        name: [round(next(by_spec).miss_rate, 2) for _ in args.sizes]
        for name in args.policies
    }
    print(render_series("cache_blocks", args.sizes, series,
                        title=f"miss rate (%) on {args.trace}"))
    elapsed = time.perf_counter() - start
    print(f"simulations: {scheduler.counters.summary()} "
          f"jobs={args.jobs} elapsed={elapsed:.2f}s")
    return 0


def cmd_trace(args) -> int:
    trace = make_trace(args.name, num_references=args.refs, seed=args.seed)
    trace_io.save(trace, args.out)
    summary = trace.summary()
    print(render_dict(summary, title=f"wrote {args.out}"))
    return 0


def cmd_stats(args) -> int:
    from repro.analysis.tracestats import characterise

    blocks = _load_workload(args)
    report = characterise(blocks)
    flat = {}
    for key, value in report.items():
        if isinstance(value, dict):
            for sub, v in value.items():
                flat[f"{key}[{sub}]"] = v
        else:
            flat[key] = value
    print(render_dict(flat, title=f"workload characterisation: {args.trace}"))
    return 0


def cmd_train(args) -> int:
    from repro.service.session import PrefetchSession, SessionError
    from repro.store import (
        ModelStore, model_snapshot, snapshot_session, write_snapshot,
    )
    from repro.store.codec import SnapshotError

    if (args.out is None) == (args.store is None):
        raise CLIError("train needs exactly one of --out FILE or --store DIR")
    if args.store is not None and args.name is None:
        raise CLIError("--store needs --name NAME for the registry entry")
    blocks = _load_workload(args)
    try:
        session = PrefetchSession(
            policy=args.policy,
            cache_size=args.cache,
            params=_params(args),
            policy_kwargs=_policy_kwargs(args) or None,
        )
    except SessionError as exc:
        raise CLIError(str(exc)) from None
    for block in blocks:
        session.observe(block)
    provenance = {"trace": args.trace, "refs": len(blocks),
                  "seed": args.seed, "policy": args.policy}
    try:
        if args.model_only:
            model = session.simulator.policy.model()
            if model is None:
                raise CLIError(
                    f"policy {args.policy!r} has no model to snapshot"
                )
            snapshot = model_snapshot(
                model,
                config={"policy": args.policy, "cache_size": args.cache},
                provenance=provenance,
            )
        else:
            snapshot = snapshot_session(session, provenance=provenance)
        if args.out is not None:
            write_snapshot(snapshot, args.out)
            where = args.out
        else:
            version = ModelStore(args.store).save(args.name, snapshot)
            where = f"{args.store}: {args.name}@{version}"
    except SnapshotError as exc:
        raise CLIError(str(exc)) from None
    summary = {"kind": snapshot.kind, "model": snapshot.model}
    for key, value in sorted(snapshot.counts.items()):
        summary[f"counts[{key}]"] = value
    print(render_dict(
        summary,
        title=f"trained {args.policy} on {args.trace} -> {where}",
    ))
    return 0


def cmd_inspect(args) -> int:
    from repro.store import ModelStore, read_snapshot
    from repro.store.codec import SnapshotError

    if (args.snapshot is None) == (args.store is None):
        raise CLIError(
            "inspect needs exactly one of --snapshot FILE or --store DIR"
        )
    try:
        if args.snapshot is not None:
            snapshot = read_snapshot(args.snapshot)
            source = args.snapshot
        else:
            store = ModelStore(args.store)
            if args.model is None:
                rows = store.list_entries()
                if not rows:
                    print(f"registry {args.store} is empty")
                    return 0
                for row in rows:
                    latest = " (latest)" if row["latest"] else ""
                    counts = ", ".join(
                        f"{k}={v}" for k, v in sorted(row["counts"].items())
                    )
                    print(f"{row['name']}@{row['version']}{latest}: "
                          f"{row['kind']} [{counts}]")
                return 0
            name, version, path = store.resolve(args.model)
            snapshot = read_snapshot(path)
            source = f"{name}@{version}"
    except FileNotFoundError as exc:
        raise CLIError(f"cannot read snapshot: {exc}") from None
    except SnapshotError as exc:
        raise CLIError(str(exc)) from None
    flat = {"kind": snapshot.kind, "model": snapshot.model,
            "records": len(snapshot.records)}
    for section in ("counts", "provenance", "config"):
        for key, value in sorted(snapshot.header.get(section, {}).items()):
            if isinstance(value, dict):
                for sub, v in sorted(value.items()):
                    flat[f"{section}[{key}.{sub}]"] = v
            else:
                flat[f"{section}[{key}]"] = value
    print(render_dict(flat, title=f"snapshot {source} (checksum verified)"))
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.service.server import PrefetchService, ServiceLimits, serve_forever

    store = None
    default_model = None
    if args.model is not None and args.store is None:
        raise CLIError("--model needs --store DIR")
    if (args.checkpoint_dir is None) != (args.checkpoint_every_s is None):
        raise CLIError(
            "checkpointing needs both --checkpoint-dir and "
            "--checkpoint-every-s"
        )
    if args.checkpoint_every_s is not None and args.checkpoint_every_s <= 0:
        raise CLIError("--checkpoint-every-s must be positive")
    if args.store is not None:
        from repro.store import ModelStore
        from repro.store.codec import SnapshotError

        store = ModelStore(args.store)
        if args.model is not None:
            try:
                store.resolve(args.model)  # fail fast, before binding
            except SnapshotError as exc:
                raise CLIError(str(exc)) from None
            default_model = args.model
    tenancy = None
    memory_budget_bytes = None
    if args.tenant_config is not None:
        if store is None:
            raise CLIError(
                "--tenant-config needs --store DIR "
                "(tenant base models live in the registry)"
            )
        from repro.tenancy.config import (
            TenancyConfigError,
            load_tenancy_config,
        )
        from repro.tenancy.manager import TenancyManager

        try:
            tenant_config = load_tenancy_config(args.tenant_config)
        except TenancyConfigError as exc:
            raise CLIError(str(exc)) from None
        tenancy = TenancyManager(store, tenant_config)
        memory_budget_bytes = tenant_config.memory_budget_bytes
    if args.memory_budget_mb is not None:
        # The flag wins over the config file's memory_budget_bytes.
        memory_budget_bytes = args.memory_budget_mb * 1024 * 1024
    if memory_budget_bytes is not None and args.checkpoint_dir is None:
        raise CLIError(
            "a memory budget needs --checkpoint-dir "
            "(evicted sessions are checkpointed to disk)"
        )
    overload = None
    if args.max_inflight is not None or args.brownout:
        from repro.service.overload import OverloadPolicy

        overload = OverloadPolicy(
            max_inflight=args.max_inflight, brownout=args.brownout,
        )
    tracer = _build_tracer(args, args.worker_id or "worker")
    if args.profile:
        from repro.obs import profile as profile_hooks

        profile_hooks.enable()
    service = PrefetchService(
        default_params=_params(args),
        limits=ServiceLimits(
            max_sessions=args.max_sessions,
            max_sessions_per_connection=args.max_sessions_per_conn,
            idle_timeout_s=args.idle_timeout_s,
            request_timeout_s=args.request_timeout_s,
        ),
        store=store,
        default_model=default_model,
        checkpoint_dir=args.checkpoint_dir,
        identity=args.worker_id,
        tenancy=tenancy,
        memory_budget_bytes=memory_budget_bytes,
        overload=overload,
        tracer=tracer,
    )
    try:
        asyncio.run(serve_forever(
            args.host, args.port, service=service,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_s=args.checkpoint_every_s,
        ))
    except KeyboardInterrupt:
        metrics = service.metrics.as_dict()
        metrics.pop("command_latency", None)
        metrics.pop("outcomes", None)
        print(render_dict(metrics, title="service metrics at shutdown"))
    if args.profile:
        from repro.obs import profile as profile_hooks

        print(profile_hooks.format_report("serve profile"), flush=True)
    from repro.service import protocol as service_protocol

    # One greppable line mirroring the fleet summary's tenancy pair, on
    # both the SIGTERM and the Ctrl-C shutdown paths.  New fields append
    # at the end: CI greps match on the leading pairs' order.
    print(
        f"serve: sessions_evicted={service.metrics.sessions_evicted} "
        f"tenants_rejected={service.metrics.tenants_rejected} "
        f"overload_rejections={service.metrics.overload_rejections} "
        f"brownout_transitions={service.metrics.brownout_transitions} "
        f"checkpoints_deleted={service.metrics.checkpoints_deleted} "
        f"uptime_s={time.monotonic() - service.started_at:.3f} "
        f"proto_version={service_protocol.PROTOCOL_VERSION} "
        f"pid={os.getpid()}",
        flush=True,
    )
    return 0


def cmd_fleet(args) -> int:
    import asyncio

    from repro.cluster.fleet import serve_fleet

    if args.model is not None and args.store is None:
        raise CLIError("--model needs --store DIR")
    if args.tenant_config is not None and args.store is None:
        raise CLIError("--tenant-config needs --store DIR")
    if (args.checkpoint_dir is None) != (args.checkpoint_every_s is None):
        raise CLIError(
            "checkpointing needs both --checkpoint-dir and "
            "--checkpoint-every-s"
        )
    if args.checkpoint_every_s is not None and args.checkpoint_every_s <= 0:
        raise CLIError("--checkpoint-every-s must be positive")
    try:
        asyncio.run(serve_fleet(
            args.host, args.port,
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_s=args.checkpoint_every_s,
            store=args.store,
            model=args.model,
            tenant_config=args.tenant_config,
            memory_budget_mb=args.memory_budget_mb,
            max_sessions=args.max_sessions,
            max_inflight=args.max_inflight,
            brownout=args.brownout,
            vnodes=args.vnodes,
            probe_interval_s=args.probe_interval_s,
            trace_dir=args.trace_dir,
            trace_sample=args.trace_sample,
            trace_seed=args.trace_seed,
        ))
    except KeyboardInterrupt:
        pass  # serve_fleet's finally already printed the summary
    return 0


def cmd_chaos(args) -> int:
    import asyncio

    from repro.service.client import (
        ResumeParityError, RetryPolicy, ServiceError,
    )
    from repro.service.faults import ChaosProxy, FaultPlan
    from repro.service.protocol import ProtocolError
    from repro.service.replay import replay_async

    blocks = _load_workload(args)
    overrides = _param_overrides(args)
    try:
        plan = FaultPlan(
            reset_every=args.reset_every,
            delay_every=args.delay_every,
            delay_s=args.delay_ms / 1000.0,
            truncate_every=args.truncate_every,
            garbage_every=args.garbage_every,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    retry = RetryPolicy(max_attempts=args.max_attempts, base_delay_s=0.02,
                        seed=args.seed)

    async def _run():
        async with ChaosProxy(args.host, args.port, plan=plan) as proxy:
            report = await replay_async(
                blocks,
                host="127.0.0.1",
                port=proxy.port,
                clients=args.clients,
                policy=args.policy,
                cache_size=args.cache,
                params=overrides or None,
                policy_kwargs=_policy_kwargs(args) or None,
                disjoint=args.disjoint,
                retry=retry,
            )
            return report, proxy.stats

    try:
        report, stats = asyncio.run(_run())
    except ResumeParityError as exc:
        raise CLIError(f"decision parity violated under chaos: {exc}") from None
    except ConnectionRefusedError:
        raise CLIError(
            f"no server at {args.host}:{args.port} "
            "(start one with: python -m repro serve)"
        ) from None
    except (ServiceError, ProtocolError, ConnectionError,
            TimeoutError) as exc:
        raise CLIError(f"chaos replay failed: {exc}") from None
    flat = report.as_dict()
    flat.pop("outcomes")
    flat.pop("per_client_miss_rate")
    print(render_dict(flat, title=f"chaos replay of {args.trace} "
                                  f"x{args.clients} clients"))
    print(render_dict(stats.as_dict(), title="injected faults"))
    # One greppable line for CI: the replay finished, so every session
    # reached CLOSE — nothing was lost to the injected faults.
    print(f"chaos: drops_injected={stats.drops_injected} "
          f"delays_injected={stats.delays_injected} "
          f"garbage_injected={stats.garbage_injected} "
          f"retries={report.retries} resumes={report.resumes} "
          f"cold_restarts={report.cold_restarts} sessions_lost=0")
    return 0


def cmd_replay(args) -> int:
    from repro.service.client import ServiceError
    from repro.service.protocol import ProtocolError
    from repro.service.replay import replay

    blocks = _load_workload(args)
    overrides = _param_overrides(args)
    tracer = _build_tracer(args, "client")
    if args.profile:
        from repro.obs import profile as profile_hooks

        profile_hooks.enable()
    try:
        report = replay(
            blocks,
            host=args.host,
            port=args.port,
            clients=args.clients,
            policy=args.policy,
            cache_size=args.cache,
            params=overrides or None,
            policy_kwargs=_policy_kwargs(args) or None,
            disjoint=args.disjoint,
            tenant=args.tenant,
            sessions_per_client=args.sessions_per_client,
            tolerate_quota=args.tolerate_quota,
            tolerate_overload=args.tolerate_overload,
            tracer=tracer,
        )
    except ConnectionRefusedError:
        raise CLIError(
            f"no server at {args.host}:{args.port} "
            "(start one with: python -m repro serve)"
        ) from None
    except (ServiceError, ProtocolError) as exc:
        raise CLIError(f"replay failed: {exc}") from None
    finally:
        if tracer is not None:
            tracer.close()
    if args.json:
        import json

        # Machine-readable mode: the full report as one JSON document on
        # stdout, nothing else (campaign tooling and scripts parse this).
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0
    flat = report.as_dict()
    outcomes = flat.pop("outcomes")
    flat.pop("per_client_miss_rate")
    print(render_dict(flat, title=f"replay of {args.trace} "
                                  f"x{args.clients} clients"))
    print(render_dict(outcomes, title="reference outcomes"))
    if args.tenant is not None:
        # Greppable for the tenancy smoke, mirroring the serve/fleet pair.
        print(f"replay: tenant={args.tenant} sessions={report.sessions} "
              f"quota_rejected={report.quota_rejected}", flush=True)
    if args.tolerate_overload:
        # Greppable for the overload smoke: how many OPENs the flood had
        # shed, and how many retry_after_s backoffs clients honoured.
        print(f"replay: sessions={report.sessions} "
              f"overload_rejections={report.overload_rejections} "
              f"overload_backoffs={report.overload_backoffs}", flush=True)
    if args.profile:
        from repro.obs import profile as profile_hooks

        print(profile_hooks.format_report("replay profile"), flush=True)
    if tracer is not None:
        # Greppable for the observability smoke: where the spans went.
        print(f"replay: trace_dir={args.trace_dir} "
              f"spans_recorded={tracer.spans_recorded}", flush=True)
    return 0


def cmd_metrics(args) -> int:
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.protocol import ProtocolError

    try:
        with ServiceClient.connect(args.host, args.port) as client:
            stats = client.server_stats(format="prometheus")
    except ConnectionRefusedError:
        raise CLIError(
            f"no server at {args.host}:{args.port} "
            "(start one with: python -m repro serve)"
        ) from None
    except (ServiceError, ProtocolError, TimeoutError, OSError) as exc:
        raise CLIError(f"metrics scrape failed: {exc}") from None
    exposition = stats.get("exposition")
    if not exposition:
        raise CLIError(
            "server answered STATS without an exposition "
            "(pre-observability server?)"
        )
    # The exposition already ends with a newline; print adds nothing.
    sys.stdout.write(exposition)
    sys.stdout.flush()
    return 0


def cmd_top(args) -> int:
    from repro.obs.top import run_top
    from repro.service.client import ServiceError
    from repro.service.protocol import ProtocolError

    try:
        run_top(
            args.host, args.port,
            interval_s=args.interval_s,
            iterations=1 if args.once else args.iterations,
        )
    except ConnectionRefusedError:
        raise CLIError(
            f"no server at {args.host}:{args.port} "
            "(start one with: python -m repro serve)"
        ) from None
    except KeyboardInterrupt:
        pass
    except (ServiceError, ProtocolError, TimeoutError, OSError) as exc:
        raise CLIError(f"top failed: {exc}") from None
    return 0


def cmd_campaign_run(args) -> int:
    from repro.campaign import (
        CampaignError,
        ScenarioError,
        load_scenario,
        run_scenario,
    )
    from repro.service.client import ResumeParityError

    try:
        scenario = load_scenario(args.scenario)
    except ScenarioError as exc:
        raise CLIError(str(exc)) from None
    echo = None if args.quiet else (lambda line: print(line, flush=True))
    try:
        runs = run_scenario(
            scenario,
            out_dir=args.out,
            workdir=args.workdir,
            trace_dir=args.trace_dir,
            echo=echo,
        )
    except ResumeParityError as exc:
        raise CLIError(
            f"decision parity violated during campaign: {exc}"
        ) from None
    except CampaignError as exc:
        raise CLIError(str(exc)) from None
    total_lost = 0
    for bundle, record in runs:
        total_lost += record["sessions_lost"]
        print(
            f"campaign: wrote {bundle.path} "
            f"scenario_hash={bundle.scenario_hash[:12]} "
            f"bundle_hash={bundle.bundle_hash[:12]}"
        )
    # Greppable verdict line, mirroring the fleet/chaos summaries: the
    # campaign finished and (chaos or not) no session went unaccounted.
    print(
        f"campaign: name={scenario.name} runs={len(runs)} "
        f"sessions_lost={total_lost}",
        flush=True,
    )
    return 0 if total_lost == 0 else 1


def cmd_campaign_compare(args) -> int:
    from repro.campaign import BundleError, load_bundle
    from repro.campaign.compare import compare_bundles, render_comparison

    try:
        baseline = load_bundle(args.baseline)
        candidate = load_bundle(args.candidate)
        baseline.verify()
        candidate.verify()
    except BundleError as exc:
        raise CLIError(str(exc)) from None
    comparison = compare_bundles(
        baseline, candidate, perf_tolerance=args.perf_tolerance
    )
    print(render_comparison(comparison))
    passed = comparison.passed(fail_on_perf=args.fail_on_perf)
    print(f"campaign compare: {'PASS' if passed else 'FAIL'}", flush=True)
    return 0 if passed else 1


def cmd_campaign_list(args) -> int:
    from repro.campaign import list_bundles

    bundles = list_bundles(args.out)
    if not bundles:
        print(f"no campaign bundles under {args.out}")
        return 0
    for bundle in bundles:
        lost = sum(
            int(phase.get("sessions_lost", 0))
            for phase in bundle.deterministic_phases
        )
        print(
            f"{bundle.path.name}: scenario={bundle.scenario_hash[:12]} "
            f"bundle={bundle.bundle_hash[:12]} workers={bundle.workers} "
            f"phases={len(bundle.deterministic_phases)} "
            f"sessions_lost={lost}"
        )
    return 0


def cmd_report(args) -> int:
    from repro.analysis import report

    argv = ["--refs", str(args.refs), "--seed", str(args.seed),
            "--out", args.out, "--jobs", str(args.jobs)]
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    return report.main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-benefit predictive prefetching (SC '99) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one policy on one workload")
    _add_common(p_sim)
    _add_engine_flags(p_sim)
    p_sim.add_argument("--policy", choices=policy_names(), default="tree")
    p_sim.add_argument("--cache", type=int, default=1024,
                       help="cache size in blocks")
    p_sim.set_defaults(func=cmd_simulate)

    p_sweep = sub.add_parser("sweep", help="miss rate vs cache size")
    _add_common(p_sweep)
    _add_engine_flags(p_sweep)
    p_sweep.add_argument("--policies", nargs="+", default=["no-prefetch", "tree"],
                         choices=policy_names())
    p_sweep.add_argument("--sizes", type=int, nargs="+",
                         default=[128, 256, 512, 1024, 2048, 4096])
    p_sweep.set_defaults(func=cmd_sweep)

    p_trace = sub.add_parser("trace", help="generate a workload file")
    p_trace.add_argument("--name", choices=TRACE_NAMES, required=True)
    p_trace.add_argument("--refs", type=int, default=100_000)
    p_trace.add_argument("--seed", type=int, default=1999)
    p_trace.add_argument("--out", required=True,
                         help="output path (.trace text or .npz)")
    p_trace.set_defaults(func=cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="characterise a workload's prefetchability"
    )
    _add_common(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_rep = sub.add_parser("report", help="write EXPERIMENTS.md")
    p_rep.add_argument("--refs", type=int, default=50_000)
    p_rep.add_argument("--seed", type=int, default=1999)
    p_rep.add_argument("--out", default="EXPERIMENTS.md")
    _add_engine_flags(p_rep)
    p_rep.set_defaults(func=cmd_report)

    p_train = sub.add_parser(
        "train", help="train a policy offline and snapshot the result"
    )
    _add_common(p_train)
    p_train.add_argument("--policy", choices=policy_names(), default="tree")
    p_train.add_argument("--cache", type=int, default=1024,
                         help="cache size in blocks")
    p_train.add_argument("--out", default=None,
                         help="write the snapshot to this file")
    p_train.add_argument("--store", default=None,
                         help="save into this registry directory instead")
    p_train.add_argument("--name", default=None,
                         help="registry entry name (with --store)")
    p_train.add_argument(
        "--model-only", action="store_true", dest="model_only",
        help="snapshot just the model (portable warm start) instead of "
             "the whole session (decision-identical resume)",
    )
    p_train.set_defaults(func=cmd_train)

    p_inspect = sub.add_parser(
        "inspect", help="verify a snapshot and print its header"
    )
    p_inspect.add_argument("--snapshot", default=None,
                           help="snapshot file to verify and summarise")
    p_inspect.add_argument("--store", default=None,
                           help="registry directory")
    p_inspect.add_argument(
        "--model", default=None,
        help="registry spec NAME[@VERSION] (with --store); "
             "omit to list every entry",
    )
    p_inspect.set_defaults(func=cmd_inspect)

    p_serve = sub.add_parser(
        "serve", help="run the online prefetch advisory daemon"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7199)
    p_serve.add_argument("--max-sessions", type=int, default=1024,
                         dest="max_sessions",
                         help="live-session ceiling across all connections")
    p_serve.add_argument("--max-sessions-per-conn", type=int, default=64,
                         dest="max_sessions_per_conn")
    p_serve.add_argument("--store", default=None,
                         help="model registry directory (enables OPEN with "
                              "a model= spec)")
    p_serve.add_argument("--model", default=None,
                         help="default registry spec for sessions that "
                              "don't name one (needs --store)")
    p_serve.add_argument("--checkpoint-dir", default=None,
                         dest="checkpoint_dir",
                         help="periodically snapshot live sessions here")
    p_serve.add_argument("--checkpoint-every-s", type=float, default=None,
                         dest="checkpoint_every_s",
                         help="seconds between checkpoint passes")
    p_serve.add_argument("--idle-timeout-s", type=float, default=300.0,
                         dest="idle_timeout_s",
                         help="drop connections silent for this long "
                              "(default 300)")
    p_serve.add_argument("--request-timeout-s", type=float, default=60.0,
                         dest="request_timeout_s",
                         help="bound on draining one reply to a slow "
                              "reader (default 60)")
    p_serve.add_argument("--worker-id", default=None, dest="worker_id",
                         help="fleet identity (e.g. w2): reported by "
                              "server-level STATS and prefixed onto "
                              "generated session ids")
    p_serve.add_argument("--tenant-config", default=None,
                         dest="tenant_config",
                         help="JSON tenancy config: shared base models and "
                              "per-tenant quotas (needs --store)")
    p_serve.add_argument("--memory-budget-mb", type=_positive_int,
                         default=None, dest="memory_budget_mb",
                         help="cap accounted model bytes; idle sessions "
                              "are evicted to --checkpoint-dir (overrides "
                              "the config file's memory_budget_bytes)")
    p_serve.add_argument("--max-inflight", type=_positive_int, default=None,
                         dest="max_inflight",
                         help="admission watermark: shed new OPENs with "
                              "error=overloaded while this many requests "
                              "are in flight")
    p_serve.add_argument("--brownout", action="store_true",
                         help="enable the event-loop-lag watchdog that "
                              "degrades service tier by tier under "
                              "sustained overload")
    _add_trace_flags(p_serve)
    p_serve.add_argument("--profile", action="store_true",
                         help="time engine hot-path stages and print a "
                              "per-stage report at shutdown")
    _add_param_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="run a sharded advisory fleet: gateway + N supervised workers",
    )
    p_fleet.add_argument("--host", default="127.0.0.1")
    p_fleet.add_argument("--port", type=int, default=7199,
                         help="gateway port clients connect to")
    p_fleet.add_argument("--workers", type=_positive_int, default=2,
                         help="advisory worker subprocesses to supervise")
    p_fleet.add_argument("--checkpoint-dir", default=None,
                         dest="checkpoint_dir",
                         help="shared checkpoint directory; enables "
                              "resume-based failover when a worker dies")
    p_fleet.add_argument("--checkpoint-every-s", type=float, default=None,
                         dest="checkpoint_every_s",
                         help="seconds between worker checkpoint passes")
    p_fleet.add_argument("--store", default=None,
                         help="model registry directory handed to every "
                              "worker")
    p_fleet.add_argument("--model", default=None,
                         help="default registry spec for every worker "
                              "(needs --store)")
    p_fleet.add_argument("--tenant-config", default=None,
                         dest="tenant_config",
                         help="JSON tenancy config handed to every worker; "
                              "the gateway admits against the same quotas "
                              "fleet-wide (needs --store)")
    p_fleet.add_argument("--memory-budget-mb", type=_positive_int,
                         default=None, dest="memory_budget_mb",
                         help="per-worker cap on accounted model bytes")
    p_fleet.add_argument("--max-sessions", type=int, default=1024,
                         dest="max_sessions",
                         help="per-worker live-session ceiling")
    p_fleet.add_argument("--max-inflight", type=_positive_int, default=None,
                         dest="max_inflight",
                         help="admission watermark applied at the gateway "
                              "and every worker: new OPENs are shed with "
                              "error=overloaded past it")
    p_fleet.add_argument("--brownout", action="store_true",
                         help="enable every worker's event-loop-lag "
                              "brownout watchdog")
    p_fleet.add_argument("--vnodes", type=_positive_int, default=64,
                         help="virtual nodes per worker on the hash ring")
    p_fleet.add_argument("--probe-interval-s", type=float, default=1.0,
                         dest="probe_interval_s",
                         help="seconds between worker liveness probes")
    _add_trace_flags(p_fleet)
    p_fleet.set_defaults(func=cmd_fleet)

    p_replay = sub.add_parser(
        "replay", help="replay a workload against a live daemon"
    )
    _add_common(p_replay)
    p_replay.add_argument("--host", default="127.0.0.1")
    p_replay.add_argument("--port", type=int, default=7199)
    p_replay.add_argument("--clients", type=int, default=4,
                          help="concurrent replay sessions")
    p_replay.add_argument("--policy", choices=policy_names(), default="tree")
    p_replay.add_argument("--cache", type=int, default=1024,
                          help="per-session cache size in blocks")
    p_replay.add_argument("--disjoint", action="store_true",
                          help="give each client a private block-id range")
    p_replay.add_argument("--tenant", default=None,
                          help="open every session under this tenant "
                               "(server must run with --tenant-config)")
    p_replay.add_argument("--sessions-per-client", type=_positive_int,
                          default=1, dest="sessions_per_client",
                          help="sessions each client opens back to back "
                               "(session-churn load)")
    p_replay.add_argument("--tolerate-quota", action="store_true",
                          dest="tolerate_quota",
                          help="count quota_exceeded rejections instead "
                               "of failing the replay")
    p_replay.add_argument("--tolerate-overload", action="store_true",
                          dest="tolerate_overload",
                          help="count overloaded sheds instead of failing "
                               "the replay (deliberate-flood harness)")
    p_replay.add_argument("--json", action="store_true",
                          help="print the full report as JSON on stdout "
                               "(machine-readable; suppresses the tables)")
    _add_trace_flags(p_replay)
    p_replay.add_argument("--profile", action="store_true",
                          help="time client-side stages and print a "
                               "per-stage report after the replay")
    p_replay.set_defaults(func=cmd_replay)

    p_chaos = sub.add_parser(
        "chaos",
        help="replay through a fault-injecting proxy with retrying clients",
    )
    _add_common(p_chaos)
    p_chaos.add_argument("--host", default="127.0.0.1",
                         help="the real server to proxy to")
    p_chaos.add_argument("--port", type=int, default=7199)
    p_chaos.add_argument("--clients", type=int, default=2,
                         help="concurrent resilient replay sessions")
    p_chaos.add_argument("--policy", choices=policy_names(), default="tree")
    p_chaos.add_argument("--cache", type=int, default=1024,
                         help="per-session cache size in blocks")
    p_chaos.add_argument("--disjoint", action="store_true",
                         help="give each client a private block-id range")
    p_chaos.add_argument("--reset-every", type=_positive_int, default=None,
                         dest="reset_every",
                         help="drop every Nth reply and reset the connection")
    p_chaos.add_argument("--delay-every", type=_positive_int, default=None,
                         dest="delay_every",
                         help="stall every Nth reply by --delay-ms")
    p_chaos.add_argument("--delay-ms", type=float, default=10.0,
                         dest="delay_ms")
    p_chaos.add_argument("--truncate-every", type=_positive_int, default=None,
                         dest="truncate_every",
                         help="cut every Nth reply mid-line, then reset")
    p_chaos.add_argument("--garbage-every", type=_positive_int, default=None,
                         dest="garbage_every",
                         help="prepend a non-JSON line to every Nth reply")
    p_chaos.add_argument("--max-attempts", type=_positive_int, default=8,
                         dest="max_attempts",
                         help="client retry budget per observation")
    p_chaos.set_defaults(func=cmd_chaos)

    p_metrics = sub.add_parser(
        "metrics",
        help="scrape a live server's Prometheus text exposition to stdout",
    )
    p_metrics.add_argument("--host", default="127.0.0.1")
    p_metrics.add_argument("--port", type=int, default=7199)
    p_metrics.set_defaults(func=cmd_metrics)

    p_top = sub.add_parser(
        "top",
        help="live terminal view of a server or fleet (rates, latency, "
             "brownout, per-worker health)",
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=7199)
    p_top.add_argument("--interval-s", type=float, default=2.0,
                       dest="interval_s",
                       help="seconds between refreshes (default 2)")
    p_top.add_argument("--iterations", type=_positive_int, default=None,
                       help="stop after N frames (default: run until ^C)")
    p_top.add_argument("--once", action="store_true",
                       help="print a single frame and exit "
                            "(shorthand for --iterations 1)")
    p_top.set_defaults(func=cmd_top)

    p_camp = sub.add_parser(
        "campaign",
        help="declarative scenario lab: run campaigns, compare bundles",
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    p_crun = camp_sub.add_parser(
        "run", help="drive a scenario file end-to-end, write a bundle"
    )
    p_crun.add_argument("scenario",
                        help="scenario file (.toml or .json)")
    p_crun.add_argument("--out", default=".repro-campaigns",
                        help="bundle output directory "
                             "(default .repro-campaigns)")
    p_crun.add_argument("--workdir", default=None,
                        help="scratch directory for worker checkpoints "
                             "(default: inside the bundle directory)")
    p_crun.add_argument("--quiet", action="store_true",
                        help="suppress per-phase progress lines")
    p_crun.add_argument("--trace-dir", default=None, dest="trace_dir",
                        help="write distributed-tracing spans here; span "
                             "accounting lands in results.json only, so "
                             "bundle hashes are unchanged")
    p_crun.set_defaults(func=cmd_campaign_run)

    p_ccmp = camp_sub.add_parser(
        "compare",
        help="per-metric delta table vs a baseline bundle "
             "(exit 1 on regression)",
    )
    p_ccmp.add_argument("baseline", help="baseline bundle directory")
    p_ccmp.add_argument("candidate", help="candidate bundle directory")
    p_ccmp.add_argument("--perf-tolerance", type=float, default=0.5,
                        dest="perf_tolerance",
                        help="relative wall-clock drift tolerated before "
                             "flagging (default 0.5 = 50%%)")
    p_ccmp.add_argument("--fail-on-perf", action="store_true",
                        dest="fail_on_perf",
                        help="treat perf drift beyond tolerance as a "
                             "failure (same-machine A/B runs)")
    p_ccmp.set_defaults(func=cmd_campaign_compare)

    p_clist = camp_sub.add_parser(
        "list", help="list campaign bundles under an output directory"
    )
    p_clist.add_argument("--out", default=".repro-campaigns",
                         help="bundle output directory")
    p_clist.set_defaults(func=cmd_campaign_list)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
