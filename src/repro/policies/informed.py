"""*informed*: Patterson's informed prefetching (TIP) with perfect hints.

The paper's cost-benefit analysis "is based on Patterson's informed
prefetching scheme [14, 15, 18]" where applications disclose an ordered
list of the blocks they will access.  All hinted blocks are eventually
accessed, so the probabilistic terms of the paper's equations collapse:
``p_b = p_x = 1`` and the misprediction overhead ``T_oh`` is zero.  The
benefit of prefetching one access deeper (Eq. 1) becomes Patterson's

    B(d) = dT_pf(d) - dT_pf(d - 1)

which is positive exactly up to the prefetch horizon, and the eviction
costs (Eqs. 11/13) apply unchanged.

In the simulator, the "application hints" are the trace itself: this policy
is the deterministic upper reference point against which the predictive
tree is judged - it shows how much of the prefetching opportunity is lost
to *prediction* (the tree may guess wrong) as opposed to *selection* (the
perfect-selector oracle bounds that part).

The hint stream is consumed lazily: a cursor tracks the first unconsumed
hint, prefetching walks ahead of the cursor up to the prefetch horizon, and
each actual access advances the cursor (hints describe the access sequence,
so the next access always matches the cursor).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, TYPE_CHECKING

from repro.cache.buffer_cache import BufferCache, Location
from repro.core import costbenefit
from repro.policies.base import Policy
from repro.sim.engine import IssueStatus
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext, Simulator

Block = Hashable

HINT_TAG = "hint"


class InformedPolicy(Policy):
    """TIP-style prefetching from a deterministic hint list.

    Parameters
    ----------
    hints:
        The ordered future access list.  If omitted, the policy reads the
        engine's trace at setup (perfect self-hinting), which is the
        normal reproduction configuration.
    lookahead_slack:
        How many accesses beyond the prefetch horizon the policy may work
        ahead.  Deterministic hints lose nothing by fetching slightly
        early as long as eviction costs permit; the cost comparison is
        still consulted for every fetch.
    max_lookahead:
        Hard cap on the pipeline depth, regardless of the horizon.  Used
        by the model-validation bench to pin the prefetch distance and
        compare measured stalls against Eq. 6.
    """

    name = "informed"

    def __init__(
        self,
        hints: Optional[Sequence[Block]] = None,
        *,
        lookahead_slack: int = 4,
        max_lookahead: Optional[int] = None,
    ) -> None:
        if lookahead_slack < 0:
            raise ValueError(
                f"lookahead_slack must be >= 0, got {lookahead_slack!r}"
            )
        if max_lookahead is not None and max_lookahead < 1:
            raise ValueError(
                f"max_lookahead must be >= 1, got {max_lookahead!r}"
            )
        super().__init__()
        self._explicit_hints = list(hints) if hints is not None else None
        self.hints: List[Block] = self._explicit_hints or []
        self.lookahead_slack = lookahead_slack
        self.max_lookahead = max_lookahead
        self.cursor = 0
        self.hint_mismatches = 0

    def on_run_start(self, trace) -> None:
        # With no explicit hints, self-hint from the trace the engine is
        # about to replay (perfect disclosure).
        if self._explicit_hints is None:
            self.hints = list(trace)

    def observe(
        self,
        block: Block,
        period: int,
        location: Location,
        cache: BufferCache,
        stats: SimulationStats,
    ) -> None:
        if self.cursor < len(self.hints) and self.hints[self.cursor] == block:
            self.cursor += 1
        else:
            # Access not matching the hint stream (possible only with
            # explicit, imperfect hints): re-sync by searching forward a
            # short window, else count a mismatch and stay put.
            for ahead in range(1, 9):
                idx = self.cursor + ahead
                if idx < len(self.hints) and self.hints[idx] == block:
                    self.cursor = idx + 1
                    break
            else:
                self.hint_mismatches += 1

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        params = ctx.params
        s = ctx.s
        horizon = costbenefit.prefetch_horizon(params, s)
        max_depth = horizon + self.lookahead_slack
        if self.max_lookahead is not None:
            max_depth = min(max_depth, self.max_lookahead)
        hints = self.hints
        n = len(hints)
        idx = self.cursor
        depth = 1
        while idx < n and depth <= max_depth:
            block = hints[idx]
            # Deterministic benefit: p_b = p_x = 1 at this depth.
            effective = min(depth, horizon)
            status = ctx.try_issue(block, 1.0, 1.0, effective, tag=HINT_TAG)
            if status is IssueStatus.REJECTED_COST:
                break
            if status is IssueStatus.NO_CAPACITY:
                break
            idx += 1
            depth += 1

    def snapshot_extra(self, stats: SimulationStats) -> None:
        stats.extra["hint_mismatches"] = self.hint_mismatches
        stats.extra["hints_consumed"] = self.cursor
