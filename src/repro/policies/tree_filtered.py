"""*tree-filtered*: the tree policy plus a misprediction filter (extension).

Section 9.2.2 observes that the basic tree scheme's prefetch-cache hit rate
is low for most traces and says: "we are working on strategies to reduce
the number of blocks prefetched by eliminating mispredicted blocks";
Section 9.6 likewise leaves "bridging the gap between the tree and the
perfect-selector prefetching schemes" as future work.  This policy is our
implementation of that direction.

Mechanism: the policy remembers each block it prefetches.  If the block is
referenced within a grace window, the prediction *succeeded*; if the window
expires first, it *failed*.  A per-block reliability score (EWMA of
successes) gates future prefetches: blocks whose predictions keep failing
are suppressed until their score recovers.  This is per-block selection
feedback the pure probability tree cannot express - two blocks with equal
edge probability can have very different realised usefulness because the
probability is conditioned only on the current node, not on how the
pattern actually continues.

Everything else (candidate generation, cost-benefit gate, eviction) is
inherited from :class:`~repro.policies.tree.TreePolicy`, so head-to-head
differences against *tree* isolate the filter's effect (see
``benchmarks/bench_extension_filtered.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Tuple, TYPE_CHECKING

from repro.cache.buffer_cache import BufferCache, Location
from repro.policies.tree import RankedCandidate, TreePolicy
from repro.sim.engine import IssueStatus
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext

Block = Hashable


class TreeFilteredPolicy(TreePolicy):
    """Cost-benefit tree prefetching with per-block reliability feedback.

    Parameters
    ----------
    grace_periods:
        How many access periods a prefetched block has to be referenced
        before the prediction counts as failed.
    score_alpha:
        EWMA weight of the newest outcome in the per-block score.
    suppress_below:
        Candidates whose score is below this (after at least
        ``min_outcomes`` observations) are skipped.
    min_outcomes:
        Outcomes required before the filter may suppress a block.
    """

    name = "tree-filtered"

    def __init__(
        self,
        *,
        grace_periods: int = 16,
        score_alpha: float = 0.3,
        suppress_below: float = 0.2,
        min_outcomes: int = 3,
        **tree_kwargs,
    ) -> None:
        if grace_periods < 1:
            raise ValueError(f"grace_periods must be >= 1, got {grace_periods!r}")
        if not (0.0 < score_alpha <= 1.0):
            raise ValueError(f"score_alpha must be in (0, 1], got {score_alpha!r}")
        if not (0.0 <= suppress_below <= 1.0):
            raise ValueError(
                f"suppress_below must be in [0, 1], got {suppress_below!r}"
            )
        if min_outcomes < 1:
            raise ValueError(f"min_outcomes must be >= 1, got {min_outcomes!r}")
        super().__init__(**tree_kwargs)
        self.grace_periods = grace_periods
        self.score_alpha = score_alpha
        self.suppress_below = suppress_below
        self.min_outcomes = min_outcomes
        # block -> (score EWMA, outcome count)
        self._scores: Dict[Block, Tuple[float, int]] = {}
        # Outstanding predictions awaiting confirmation, FIFO by deadline.
        self._pending: Deque[Tuple[int, Block]] = deque()
        self._pending_blocks: Dict[Block, int] = {}
        self.suppressed = 0

    # ---------------------------------------------------------- feedback

    def _record_outcome(self, block: Block, success: bool) -> None:
        score, count = self._scores.get(block, (1.0, 0))
        score += self.score_alpha * ((1.0 if success else 0.0) - score)
        self._scores[block] = (score, count + 1)

    def _expire_pending(self, period: int) -> None:
        while self._pending and self._pending[0][0] <= period:
            _, block = self._pending.popleft()
            if self._pending_blocks.get(block) is not None:
                del self._pending_blocks[block]
                self._record_outcome(block, success=False)

    def _is_suppressed(self, block: Block) -> bool:
        entry = self._scores.get(block)
        if entry is None:
            return False
        score, count = entry
        return count >= self.min_outcomes and score < self.suppress_below

    # ----------------------------------------------------------- hooks

    def observe(
        self,
        block: Block,
        period: int,
        location: Location,
        cache: BufferCache,
        stats: SimulationStats,
    ) -> None:
        self._expire_pending(period)
        if block in self._pending_blocks:
            del self._pending_blocks[block]
            self._record_outcome(block, success=True)
        super().observe(block, period, location, cache, stats)

    def ranked_candidates(self, ctx: "PrefetchContext") -> List[RankedCandidate]:
        ranked = super().ranked_candidates(ctx)
        kept: List[RankedCandidate] = []
        for cand in ranked:
            if self._is_suppressed(cand[4]):
                self.suppressed += 1
            else:
                kept.append(cand)
        return kept

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        assert self.engine is not None
        period = self.engine.period
        for net, p_b, p_x, depth, block in self.ranked_candidates(ctx):
            status = ctx.try_issue(block, p_b, p_x, depth)
            if status is IssueStatus.ISSUED and block not in self._pending_blocks:
                deadline = period + self.grace_periods
                self._pending.append((deadline, block))
                self._pending_blocks[block] = deadline
            if status in (IssueStatus.REJECTED_COST, IssueStatus.NO_CAPACITY):
                break

    def snapshot_extra(self, stats: SimulationStats) -> None:
        super().snapshot_extra(stats)
        stats.extra["filter_suppressed"] = self.suppressed
        stats.extra["filter_tracked_blocks"] = len(self._scores)

    def aux_state(self) -> dict:
        # _pending may hold expired entries whose block was since
        # re-prefetched (the dict is authoritative); both structures are
        # captured verbatim so expiry order replays identically.
        return {
            "scores": [
                [block, score, count]
                for block, (score, count) in self._scores.items()
            ],
            "pending": [[deadline, block] for deadline, block in self._pending],
            "pending_blocks": [
                [block, deadline]
                for block, deadline in self._pending_blocks.items()
            ],
            "suppressed": self.suppressed,
        }

    def restore_aux_state(self, state: dict) -> None:
        self._scores = {
            block: (score, count) for block, score, count in state["scores"]
        }
        self._pending = deque(
            (deadline, block) for deadline, block in state["pending"]
        )
        self._pending_blocks = {
            block: deadline for block, deadline in state["pending_blocks"]
        }
        self.suppressed = state["suppressed"]
