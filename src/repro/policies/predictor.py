"""Generic cost-benefit policy over any pluggable predictor.

Runs the paper's Section 7 decision loop - rank candidates by net benefit,
prefetch while the benefit clears the cheapest eviction cost - with the
candidate probabilities supplied by an arbitrary
:class:`~repro.predictors.base.Predictor` instead of the LZ tree.  This
separates *prediction quality* from the rest of the machinery, enabling
the predictor-comparison study in ``benchmarks/bench_predictors.py``
(LZ tree vs PPM vs probability graph vs Markov vs last-successor, all
under identical caching and cost rules).

Policy names are ``cb-<predictor>`` ("cost-benefit over <predictor>"),
e.g. ``cb-ppm``.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple, TYPE_CHECKING

from repro.cache.buffer_cache import BufferCache, Location
from repro.core import costbenefit
from repro.policies.base import Policy
from repro.predictors.base import Predictor
from repro.sim.engine import IssueStatus
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext

Block = Hashable


class PredictorPolicy(Policy):
    """Cost-benefit prefetching from an arbitrary predictor's depth-1 set."""

    def __init__(self, predictor: Predictor, *, max_candidates: int = 32) -> None:
        if max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {max_candidates!r}"
            )
        super().__init__()
        self.predictor = predictor
        self.max_candidates = max_candidates
        self.name = f"cb-{predictor.name}"

    def observe(
        self,
        block: Block,
        period: int,
        location: Location,
        cache: BufferCache,
        stats: SimulationStats,
    ) -> None:
        predicted = self.predictor.update(block)
        if predicted:
            stats.predictable_accesses += 1
            if location is Location.MISS:
                stats.predictable_uncached += 1

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        params = ctx.params
        s = ctx.s
        saved = costbenefit.delta_t_pf(params, 1, s)
        if saved <= 0.0:
            return
        floor = costbenefit.min_profitable_probability(params, s)
        t_driver = params.t_driver
        ranked: List[Tuple[float, float, Block]] = []
        for block, p in self.predictor.predictions():
            if p <= floor:
                continue
            net = p * saved - (1.0 - p) * t_driver
            ranked.append((net, p, block))
        ranked.sort(key=lambda item: -item[0])
        for _, p, block in ranked[: self.max_candidates]:
            status = ctx.try_issue(block, p, 1.0, 1)
            if status in (IssueStatus.REJECTED_COST, IssueStatus.NO_CAPACITY):
                break

    def model(self):
        return self.predictor

    def snapshot_extra(self, stats: SimulationStats) -> None:
        stats.extra["predictor"] = self.predictor.name
        stats.extra["predictor_memory_items"] = self.predictor.memory_items()
