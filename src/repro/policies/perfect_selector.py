"""The *perfect-selector* oracle (Section 9.5).

"The perfect selection scheme assumes knowledge of the next disk access.
The resulting prefetching scheme, *perfect-selector*, uses the knowledge of
the next disk access to prefetch the next disk access only if it is
predictable, i.e. the disk access has been identified by the prediction
scheme as a candidate for prefetching."

This bounds the improvement achievable by better candidate *selection* while
holding the prediction structure (the tree) fixed: the oracle never fetches
an unpredictable block, so the gap between *tree* and *perfect-selector* is
pure selection loss, not prediction loss (Figure 15).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.base import TreeBackedPolicy
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext

ORACLE_TAG = "oracle"


class PerfectSelectorPolicy(TreeBackedPolicy):
    """Prefetches the (known) next access iff the tree predicts it."""

    name = "perfect-selector"

    def __init__(self, **tree_kwargs) -> None:
        super().__init__(**tree_kwargs)
        self.oracle_skipped_unpredictable = 0

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        assert self.engine is not None
        upcoming = self.engine.next_block
        if upcoming is None:
            return
        if not self.tree.is_predictable(upcoming):
            self.oracle_skipped_unpredictable += 1
            return
        prob = self.tree.current.child_probability(upcoming)
        ctx.try_issue(upcoming, prob, 1.0, 1, forced=True, tag=ORACLE_TAG)

    def snapshot_extra(self, stats: SimulationStats) -> None:
        super().snapshot_extra(stats)
        stats.extra["oracle_skipped_unpredictable"] = (
            self.oracle_skipped_unpredictable
        )
