"""The *next-limit* policy: one-block lookahead, 10% partition cap.

Section 9: "always prefetches the next disk block after a block is fetched
on-demand.  Since this aggressive scheme prefetches many blocks, we limit
the fraction of the cache devoted to prefetch blocks to 10%".

Sequential lookahead must re-arm when a prefetched block is referenced,
otherwise only every other block of a sequential run would be covered; we
therefore trigger on demand fetches *and* on prefetch-cache hits, which is
the standard one-block-lookahead formulation and what the paper's "up to
73%" sitar reduction requires (every block of a run after the first head
miss is a prefetch hit).

Blocks must be integers (or otherwise support ``block + 1``) for sequential
adjacency to be meaningful.
"""

from __future__ import annotations

from typing import Hashable, Optional, TYPE_CHECKING

from repro.cache.buffer_cache import BufferCache, Location
from repro.policies.base import Policy
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext

Block = Hashable

#: Fraction of the combined cache the prefetch partition may occupy.
PREFETCH_FRACTION = 0.10
#: Tag used for one-block-lookahead entries in the prefetch cache.
NL_TAG = "nl"


def partition_cap(total_buffers: int) -> int:
    """The 10%-of-cache cap, at least one buffer."""
    return max(1, int(total_buffers * PREFETCH_FRACTION))


class NextLimitPolicy(Policy):
    """One-block-lookahead prefetching with a 10% prefetch partition."""

    name = "next-limit"

    def __init__(self) -> None:
        super().__init__()
        self._pending: Optional[Block] = None

    def prefetch_partition_capacity(self, total_buffers: int) -> Optional[int]:
        return partition_cap(total_buffers)

    def observe(
        self,
        block: Block,
        period: int,
        location: Location,
        cache: BufferCache,
        stats: SimulationStats,
    ) -> None:
        # Re-arm on a demand fetch or on consuming a prefetched block; a
        # demand-cache hit means the data was already resident and sequential
        # readahead would only duplicate cached blocks.
        if location is not Location.DEMAND:
            self._pending = block
        else:
            self._pending = None

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        if self._pending is None:
            return
        block = self._pending
        self._pending = None
        try:
            successor = block + 1  # type: ignore[operator]
        except TypeError:
            return
        ctx.try_issue(successor, 1.0, 1.0, 1, forced=True, tag=NL_TAG)

    def aux_state(self) -> dict:
        return {"pending": self._pending}

    def restore_aux_state(self, state: dict) -> None:
        self._pending = state.get("pending")
