"""The *tree-children* parametric policy (Section 9.7).

Our implementation of the Kroeger & Long scheme [8] as the paper describes
it: "After accessing a block in the prefetch tree, a *fixed number of child
nodes* with the highest probability of future access are prefetched."  The
paper found optimal child counts between 3 and 10 depending on the trace,
again motivating the parameter-free cost-benefit scheme.

Only depth-1 children of the current parse position are considered, per the
description.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.base import TreeBackedPolicy
from repro.sim.engine import IssueStatus
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext


class TreeChildrenPolicy(TreeBackedPolicy):
    """Prefetch the top-k most probable children of the current node."""

    name = "tree-children"

    def __init__(self, num_children: int, **tree_kwargs) -> None:
        if num_children < 1:
            raise ValueError(f"num_children must be >= 1, got {num_children!r}")
        super().__init__(**tree_kwargs)
        self.num_children = num_children

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        for block, prob in self.tree.next_probabilities()[: self.num_children]:
            status = ctx.try_issue(block, prob, 1.0, 1, forced=True)
            if status is IssueStatus.NO_CAPACITY:
                break

    def snapshot_extra(self, stats: SimulationStats) -> None:
        super().snapshot_extra(stats)
        stats.extra["num_children"] = self.num_children
