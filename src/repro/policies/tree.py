"""The *tree* policy: predictive prefetching with cost-benefit analysis.

This is the paper's primary contribution (Sections 4-7).  Each access
period:

1. candidates are drawn from the prefetch tree below the current parse
   position;
2. each candidate's benefit ``B(b)`` (Eq. 1) net of the misprediction
   overhead ``T_oh`` (Eq. 14) is computed and candidates are ranked by it;
3. candidates are proposed in rank order; the engine prefetches one while
   its net benefit covers the cheapest eviction's cost (Eqs. 11/13) and the
   round stops at the first cost rejection, mirroring the "repeat until the
   cost exceeds the benefit" loop of Section 7.

Candidate enumeration is bounded by the *prefetch horizon*: for depths
``d`` with ``d - 1 >= horizon`` both ``dT_pf(d)`` and ``dT_pf(d-1)``
saturate at ``T_disk``, so ``B = (p_b - p_x) * T_disk <= 0`` - deeper
candidates can never win.  With the paper's constants (``T_cpu = 50 ms``
against ``T_disk = 15 ms``) the horizon is 1 and the candidate set is just
the current node's children, which also makes the simulator fast; the
general best-first path expansion kicks in automatically when ``T_cpu`` is
small enough for deeper prefetching to pay (Section 9.2.3's sweep).
"""

from __future__ import annotations

from typing import List, Tuple, TYPE_CHECKING

from repro.core import costbenefit
from repro.core.candidates import best_candidates
from repro.policies.base import TreeBackedPolicy
from repro.sim.engine import IssueStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext

#: Candidate tuple: (net_benefit, probability, parent_probability, depth, block)
RankedCandidate = Tuple[float, float, float, int, object]


class TreePolicy(TreeBackedPolicy):
    """Prefetch-tree candidates gated by the Section 7 cost-benefit rule."""

    name = "tree"

    def ranked_candidates(self, ctx: "PrefetchContext") -> List[RankedCandidate]:
        """Candidates with positive net benefit, best first."""
        params = ctx.params
        s = ctx.s
        horizon = costbenefit.prefetch_horizon(params, s)
        effective_depth = min(self.max_depth, horizon)
        if effective_depth <= 1:
            return self._depth1_candidates(ctx)

        ranked: List[RankedCandidate] = []
        for cand in best_candidates(
            self.tree,
            max_depth=effective_depth,
            max_candidates=self.max_candidates,
            min_probability=self.min_probability,
        ):
            net = costbenefit.benefit(
                params, cand.probability, cand.parent_probability, cand.depth, s
            ) - costbenefit.prefetch_overhead(
                params, cand.probability, cand.parent_probability
            )
            if net > 0.0:
                ranked.append(
                    (net, cand.probability, cand.parent_probability, cand.depth,
                     cand.block)
                )
        ranked.sort(key=lambda item: -item[0])
        return ranked

    def _depth1_candidates(self, ctx: "PrefetchContext") -> List[RankedCandidate]:
        """Fast path: only the current node's children can be profitable."""
        cur = self.tree.current
        weight = cur.weight
        if weight <= 0 or not cur.has_children():
            return []
        params = ctx.params
        s = ctx.s
        saved = costbenefit.delta_t_pf(params, 1, s)
        if saved <= 0.0:
            return []
        t_driver = params.t_driver
        floor = max(self.min_probability, costbenefit.min_profitable_probability(params, s))
        ranked: List[RankedCandidate] = []
        for block, child in self.tree.iter_relevant_children(cur):
            p = child.weight / weight
            if p <= floor:
                continue
            net = p * saved - (1.0 - p) * t_driver
            ranked.append((net, p, 1.0, 1, block))
        ranked.sort(key=lambda item: -item[0])
        if len(ranked) > self.max_candidates:
            del ranked[self.max_candidates :]
        return ranked

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        for _, p_b, p_x, depth, block in self.ranked_candidates(ctx):
            status = ctx.try_issue(block, p_b, p_x, depth)
            if status is IssueStatus.REJECTED_COST:
                # Section 7 step 4: once the cheapest eviction costs more
                # than the best remaining benefit, stop prefetching.
                break
            if status is IssueStatus.NO_CAPACITY:
                break
