"""The *tree-threshold* parametric policy (Section 9.7).

Our implementation of the Curewitz et al. scheme [5] as the paper describes
it: "After accessing a block in the prefetch tree, all child nodes with a
probability of future access higher than a specified *probability threshold*
are prefetched."  There is no cost-benefit gate; the threshold is the only
control.  Table 4 sweeps it from 0.001 to 0.4 and shows best-vs-worst gaps
of up to ~15%, motivating the self-tuning cost-benefit scheme.

Cumulative path probabilities below the current node are compared against
the threshold, so a low threshold reaches deeper than one level, like the
original data-compression formulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.candidates import best_candidates
from repro.policies.base import TreeBackedPolicy
from repro.sim.engine import IssueStatus
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext


class TreeThresholdPolicy(TreeBackedPolicy):
    """Prefetch every tree candidate above a fixed probability threshold."""

    name = "tree-threshold"

    def __init__(self, threshold: float, **tree_kwargs) -> None:
        if not (0.0 < threshold <= 1.0):
            raise ValueError(f"threshold must be in (0, 1], got {threshold!r}")
        tree_kwargs.setdefault("min_probability", threshold)
        super().__init__(**tree_kwargs)
        self.threshold = threshold

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        for cand in best_candidates(
            self.tree,
            max_depth=self.max_depth,
            max_candidates=self.max_candidates,
            min_probability=self.threshold,
        ):
            if cand.probability < self.threshold:
                continue
            status = ctx.try_issue(
                cand.block,
                cand.probability,
                cand.parent_probability,
                cand.depth,
                forced=True,
            )
            if status is IssueStatus.NO_CAPACITY:
                break

    def snapshot_extra(self, stats: SimulationStats) -> None:
        super().snapshot_extra(stats)
        stats.extra["threshold"] = self.threshold
