"""The *tree-lvc* policy (Section 9.6): tree + last-visited-child prefetch.

"an algorithm called *tree-lvc* which prefetches the *last visited child* of
a node in addition to prefetching blocks determined by cost-benefit
analysis."

The paper found tree-lvc indistinguishable from tree because more than 85%
of last-visited children are already cached (Figure 16); this policy exists
to reproduce that negative result.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.tree import TreePolicy
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext

LVC_TAG = "lvc"


class TreeLvcPolicy(TreePolicy):
    """Cost-benefit tree prefetching plus the current node's last child."""

    name = "tree-lvc"

    def __init__(self, **tree_kwargs) -> None:
        super().__init__(**tree_kwargs)
        self.lvc_issued = 0
        self.lvc_already_cached = 0

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        self._lvc_round(ctx)
        super().prefetch_round(ctx)

    def _lvc_round(self, ctx: "PrefetchContext") -> None:
        lvc = self.tree.last_visited_child()
        if lvc is None:
            return
        if ctx.is_cached(lvc):
            self.lvc_already_cached += 1
            return
        prob = self.tree.current.child_probability(lvc)
        from repro.sim.engine import IssueStatus

        status = ctx.try_issue(lvc, prob, 1.0, 1, forced=True, tag=LVC_TAG)
        if status is IssueStatus.ISSUED:
            self.lvc_issued += 1

    def snapshot_extra(self, stats: SimulationStats) -> None:
        super().snapshot_extra(stats)
        stats.extra["lvc_issued"] = self.lvc_issued
        stats.extra["lvc_already_cached_at_issue"] = self.lvc_already_cached

    def aux_state(self) -> dict:
        return {
            "lvc_issued": self.lvc_issued,
            "lvc_already_cached": self.lvc_already_cached,
        }

    def restore_aux_state(self, state: dict) -> None:
        self.lvc_issued = state["lvc_issued"]
        self.lvc_already_cached = state["lvc_already_cached"]
