"""Policy interface and the shared tree-backed base class.

A *policy* decides which blocks to propose for prefetching each access
period; the engine (:mod:`repro.sim.engine`) owns the cost model and the
buffer pool.  Policies are single-use: one instance drives one simulation.

:class:`TreeBackedPolicy` factors out everything common to the predictive
schemes: it owns the prefetch tree, updates it on every access, and records
the tree-derived statistics of Sections 9.4-9.6 (predictability, predictable
blocks not cached, last-visited-child repeats and cached-ness).
"""

from __future__ import annotations

import abc
from typing import Hashable, Optional, TYPE_CHECKING

from repro.cache.buffer_cache import BufferCache, Location
from repro.core.tree import PrefetchTree
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext, Simulator

Block = Hashable


class Policy(abc.ABC):
    """One prefetching scheme, as compared in Section 9."""

    #: Human-readable identifier used in reports and figure legends.
    name: str = "abstract"

    def __init__(self) -> None:
        self.engine: Optional["Simulator"] = None

    def prefetch_partition_capacity(self, total_buffers: int) -> Optional[int]:
        """Hard cap on the prefetch partition, or ``None`` to share the pool.

        The next-limit policy returns 10% of the cache (Section 9); the
        tree policies return ``None`` and let the cost-benefit comparison
        set the partition boundary dynamically.
        """
        return None

    def setup(self, engine: "Simulator") -> None:
        """Bind to the engine; called once before the first access."""
        if self.engine is not None:
            raise RuntimeError(
                f"policy {self.name!r} is single-use; create a new instance"
            )
        self.engine = engine

    def on_run_start(self, trace) -> None:
        """Called by the engine with the materialised trace before stepping.

        Most policies ignore it; hint-based policies (TIP) read their hint
        stream from it, mirroring an application disclosing its future
        accesses to the OS.
        """

    def observe(
        self,
        block: Block,
        period: int,
        location: Location,
        cache: BufferCache,
        stats: SimulationStats,
    ) -> None:
        """See one access *before* the cache acts on it."""

    @abc.abstractmethod
    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        """Propose prefetches for this access period via ``ctx.try_issue``."""

    def snapshot_extra(self, stats: SimulationStats) -> None:
        """Record policy-specific diagnostics into ``stats.extra`` at the end."""

    # ------------------------------------------------------------ persistence

    def model(self):
        """The policy's snapshotable model, or ``None`` for model-free ones.

        Tree-backed policies return their :class:`PrefetchTree`; predictor
        policies return the predictor.  The returned object implements the
        :mod:`repro.store` ``Snapshotable`` surface (``snapshot_kind``,
        ``snapshot_state``, ``restore_state``, ``memory_items``).
        """
        return None

    def model_items(self) -> int:
        """Current model size in retained items (0 for model-free policies)."""
        m = self.model()
        return m.memory_items() if m is not None else 0

    def replace_model(self, model) -> None:
        """Swap in a different model object before state is restored.

        Used by the tenancy layer to rebind a session to a shared-base
        overlay on resume.  The replacement must be behaviourally
        compatible with what :meth:`model` returns; policies without a
        swappable model refuse.
        """
        raise NotImplementedError(
            f"policy {self.name!r} does not support model replacement"
        )

    def aux_state(self) -> dict:
        """Policy-local mutable state beyond the model, JSON-able.

        Captured into session snapshots so a restored session is
        decision-identical to one that never stopped; the default covers
        policies whose only cross-step state is the model itself.
        """
        return {}

    def restore_aux_state(self, state: dict) -> None:
        """Inverse of :meth:`aux_state`."""


class TreeBackedPolicy(Policy):
    """Base for policies that maintain an LZ prefetch tree.

    Parameters
    ----------
    max_tree_nodes:
        Optional node budget for the tree (Section 9.3 / Figure 13).
    max_depth, max_candidates, min_probability:
        Bounds on candidate enumeration (see
        :func:`repro.core.candidates.best_candidates`).
    """

    def __init__(
        self,
        *,
        max_tree_nodes: Optional[int] = None,
        max_depth: int = 8,
        max_candidates: int = 32,
        min_probability: float = 1e-3,
    ) -> None:
        super().__init__()
        self.tree = PrefetchTree(max_nodes=max_tree_nodes)
        self.max_depth = max_depth
        self.max_candidates = max_candidates
        self.min_probability = min_probability

    def observe(
        self,
        block: Block,
        period: int,
        location: Location,
        cache: BufferCache,
        stats: SimulationStats,
    ) -> None:
        """Update the tree and the Section 9.4-9.6 statistics.

        All signals are measured against the tree state *before* this access
        is folded in, exactly as the paper defines them.
        """
        lvc = self.tree.last_visited_child()
        if lvc is not None:
            if cache.location_of(lvc) is not Location.MISS:
                stats.lvc_cached += 1
        outcome = self.tree.record_access(block)
        if outcome.predictable:
            stats.predictable_accesses += 1
            if location is Location.MISS:
                stats.predictable_uncached += 1
        if outcome.lvc_available:
            stats.lvc_opportunities += 1
            if outcome.lvc_repeat:
                stats.lvc_repeats += 1
            if not outcome.at_root:
                stats.lvc_opportunities_nonroot += 1
                if outcome.lvc_repeat:
                    stats.lvc_repeats_nonroot += 1

    def model(self):
        return self.tree

    def replace_model(self, model) -> None:
        """Adopt ``model`` (a tree or overlay) as this policy's tree."""
        if not isinstance(model, PrefetchTree):
            raise TypeError(
                f"tree-backed policies require a PrefetchTree, "
                f"got {type(model).__name__}"
            )
        self.tree = model

    def snapshot_extra(self, stats: SimulationStats) -> None:
        stats.extra["tree_nodes"] = self.tree.node_count
        stats.extra["tree_nodes_evicted"] = self.tree.stats.nodes_evicted
        stats.extra["tree_memory_bytes"] = self.tree.memory_bytes()
        stats.extra["tree_prediction_accuracy"] = (
            100.0 * self.tree.stats.prediction_accuracy
        )
        stats.extra["tree_lvc_repeat_rate"] = 100.0 * self.tree.stats.lvc_repeat_rate
