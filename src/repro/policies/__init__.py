"""The prefetching policies compared in the paper\'s Section 9."""

from repro.policies.base import Policy, TreeBackedPolicy
from repro.policies.file_prefetch import FilePrefetchPolicy
from repro.policies.informed import InformedPolicy
from repro.policies.next_limit import NextLimitPolicy
from repro.policies.no_prefetch import NoPrefetchPolicy
from repro.policies.perfect_selector import PerfectSelectorPolicy
from repro.policies.predictor import PredictorPolicy
from repro.policies.registry import make_policy, policy_names
from repro.policies.tree import TreePolicy
from repro.policies.tree_children import TreeChildrenPolicy
from repro.policies.tree_filtered import TreeFilteredPolicy
from repro.policies.tree_lvc import TreeLvcPolicy
from repro.policies.tree_next_limit import TreeNextLimitPolicy
from repro.policies.tree_threshold import TreeThresholdPolicy

__all__ = [
    "FilePrefetchPolicy",
    "InformedPolicy",
    "NextLimitPolicy",
    "NoPrefetchPolicy",
    "PerfectSelectorPolicy",
    "Policy",
    "PredictorPolicy",
    "TreeBackedPolicy",
    "TreeChildrenPolicy",
    "TreeFilteredPolicy",
    "TreeLvcPolicy",
    "TreeNextLimitPolicy",
    "TreePolicy",
    "TreeThresholdPolicy",
    "make_policy",
    "policy_names",
]
