"""Whole-file prefetching (related work [6, 9]: file-level schemes).

The paper's related work contrasts its block-level scheme with systems
that "prefetch entire files based on predictions of correlated file
access" (Griffioen & Appleton [6], Lei & Duchamp [9]).  This policy is the
block-simulator rendering of the simplest such scheme: when a block misses
and it belongs to a known file, prefetch the remainder of that file.

It needs file metadata the block stream itself does not carry: an *extent
map* of ``(start, length)`` block ranges.  The synthetic file-backed
workloads (cello, snake, sitar) export theirs in ``trace.params["extents"]``;
imported traces can supply any map.

Strengths/weaknesses this lets the benches show: on whole-file-read
workloads (sitar) it beats one-block lookahead - the entire body arrives
after the head miss, not one block per period - at the price of fetching
file tails that are never read, and it is useless for non-file traffic
(CAD) and partial reads.

Like next-limit, fetches are not cost-gated (the paper treats file-level
schemes as heuristics); the prefetch share of the pool is capped.
"""

from __future__ import annotations

import bisect
from typing import Hashable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.cache.buffer_cache import BufferCache, Location
from repro.policies.base import Policy
from repro.sim.engine import IssueStatus
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext, Simulator

Block = Hashable

FILE_TAG = "file"

#: Fraction of the cache the file-prefetch partition may occupy.
PREFETCH_FRACTION = 0.25


class ExtentMap:
    """Sorted, non-overlapping ``(start, length)`` extents with O(log n) lookup."""

    def __init__(self, extents: Sequence[Sequence[int]]) -> None:
        cleaned: List[Tuple[int, int]] = []
        for extent in extents:
            start, length = int(extent[0]), int(extent[1])
            if length < 1:
                raise ValueError(f"extent length must be >= 1, got {length!r}")
            cleaned.append((start, length))
        cleaned.sort()
        for (s0, l0), (s1, _) in zip(cleaned, cleaned[1:]):
            if s0 + l0 > s1:
                raise ValueError(
                    f"extents overlap: ({s0},{l0}) and start {s1}"
                )
        self._starts = [s for s, _ in cleaned]
        self._extents = cleaned

    def __len__(self) -> int:
        return len(self._extents)

    def find(self, block: int) -> Optional[Tuple[int, int]]:
        """The extent containing ``block``, or ``None``."""
        idx = bisect.bisect_right(self._starts, block) - 1
        if idx < 0:
            return None
        start, length = self._extents[idx]
        if start <= block < start + length:
            return start, length
        return None


class FilePrefetchPolicy(Policy):
    """Fetch the rest of a file when one of its blocks misses.

    Parameters
    ----------
    extents:
        The file extent map; if ``None``, it is read from the trace's
        ``params["extents"]`` at run start (the synthetic file workloads
        provide it) - without a map the policy degenerates to no-prefetch.
    max_file_blocks:
        Cap on blocks prefetched per triggering miss (very large files
        would otherwise monopolise the pool).
    """

    name = "file-prefetch"

    def __init__(
        self,
        extents: Optional[Sequence[Sequence[int]]] = None,
        *,
        max_file_blocks: int = 64,
    ) -> None:
        if max_file_blocks < 1:
            raise ValueError(
                f"max_file_blocks must be >= 1, got {max_file_blocks!r}"
            )
        super().__init__()
        self.extent_map = ExtentMap(extents) if extents is not None else None
        self.max_file_blocks = max_file_blocks
        self._pending: Optional[Tuple[int, int]] = None  # (from_block, end)
        self.files_triggered = 0

    def prefetch_partition_capacity(self, total_buffers: int) -> Optional[int]:
        return max(1, int(total_buffers * PREFETCH_FRACTION))

    def attach_extents(self, extents: Sequence[Sequence[int]]) -> None:
        """Install (or replace) the extent map."""
        self.extent_map = ExtentMap(extents)

    def observe(
        self,
        block: Block,
        period: int,
        location: Location,
        cache: BufferCache,
        stats: SimulationStats,
    ) -> None:
        self._pending = None
        if location is not Location.MISS or self.extent_map is None:
            return
        if not isinstance(block, int):
            return
        extent = self.extent_map.find(block)
        if extent is None:
            return
        start, length = extent
        end = min(start + length, block + 1 + self.max_file_blocks)
        if block + 1 < end:
            self._pending = (block + 1, end)
            self.files_triggered += 1

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        if self._pending is None:
            return
        from_block, end = self._pending
        self._pending = None
        for offset, candidate in enumerate(range(from_block, end)):
            status = ctx.try_issue(
                candidate, 1.0, 1.0, 1, forced=True, tag=FILE_TAG
            )
            if status is IssueStatus.NO_CAPACITY:
                break

    def aux_state(self) -> dict:
        return {
            "extents": (
                None if self.extent_map is None
                else [[s, l] for s, l in self.extent_map._extents]
            ),
            "pending": list(self._pending) if self._pending is not None else None,
            "files_triggered": self.files_triggered,
        }

    def restore_aux_state(self, state: dict) -> None:
        extents = state["extents"]
        self.extent_map = ExtentMap(extents) if extents is not None else None
        pending = state["pending"]
        self._pending = tuple(pending) if pending is not None else None
        self.files_triggered = state["files_triggered"]

    def snapshot_extra(self, stats: SimulationStats) -> None:
        stats.extra["files_triggered"] = self.files_triggered
        stats.extra["extent_count"] = (
            len(self.extent_map) if self.extent_map is not None else 0
        )
