"""The *tree-next-limit* policy: cost-benefit tree + one-block lookahead.

Section 9: "this scheme always prefetches the block after a demand fetch,
while limiting 10% of the cache for these blocks.  In addition, it maintains
a prefetch tree and prefetches additional blocks according to our cost
benefit analysis."

The 10% limit applies only to the lookahead blocks; tree prefetches share
the whole pool under the cost-benefit gate.  Lookahead entries are tagged in
the prefetch cache so their share can be counted and capped.
"""

from __future__ import annotations

from typing import Hashable, Optional, TYPE_CHECKING

from repro.cache.buffer_cache import BufferCache, Location
from repro.policies.next_limit import NL_TAG, partition_cap
from repro.policies.tree import TreePolicy
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext

Block = Hashable


class TreeNextLimitPolicy(TreePolicy):
    """Combined predictive (tree) and sequential (next-limit) prefetching."""

    name = "tree-next-limit"

    def __init__(self, **tree_kwargs) -> None:
        super().__init__(**tree_kwargs)
        self._pending: Optional[Block] = None

    def observe(
        self,
        block: Block,
        period: int,
        location: Location,
        cache: BufferCache,
        stats: SimulationStats,
    ) -> None:
        super().observe(block, period, location, cache, stats)
        if location is not Location.DEMAND:
            self._pending = block
        else:
            self._pending = None

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        self._lookahead_round(ctx)
        super().prefetch_round(ctx)

    def _lookahead_round(self, ctx: "PrefetchContext") -> None:
        if self._pending is None:
            return
        block = self._pending
        self._pending = None
        assert self.engine is not None
        cache = self.engine.cache
        if cache.prefetch.tag_count(NL_TAG) >= partition_cap(cache.total_buffers):
            return
        try:
            successor = block + 1  # type: ignore[operator]
        except TypeError:
            return
        ctx.try_issue(successor, 1.0, 1.0, 1, forced=True, tag=NL_TAG)

    def aux_state(self) -> dict:
        return {"pending": self._pending}

    def restore_aux_state(self, state: dict) -> None:
        self._pending = state.get("pending")
