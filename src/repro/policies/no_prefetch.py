"""The *no-prefetch* baseline (Section 9): a plain LRU buffer cache.

Every miss is a synchronous demand fetch; the prefetch partition stays
empty.  All other schemes are reported relative to this baseline's miss
rate.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.policies.base import Policy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PrefetchContext


class NoPrefetchPolicy(Policy):
    """Performs no prefetching at all."""

    name = "no-prefetch"

    def prefetch_partition_capacity(self, total_buffers: int) -> Optional[int]:
        return 0

    def prefetch_round(self, ctx: "PrefetchContext") -> None:
        return None
