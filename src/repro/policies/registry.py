"""Policy registry: build any of the paper's schemes by name.

Names match the paper's algorithm labels (Section 9).  Parametric schemes
take their parameter as a keyword argument::

    make_policy("tree")
    make_policy("tree-threshold", threshold=0.025)
    make_policy("tree-children", num_children=5)
    make_policy("tree", max_tree_nodes=32 * 1024)   # Figure 13
    make_policy("tree-filtered", grace_periods=16)  # Section 9.2.2 extension
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.policies.base import Policy
from repro.policies.file_prefetch import FilePrefetchPolicy
from repro.policies.informed import InformedPolicy
from repro.policies.next_limit import NextLimitPolicy
from repro.policies.no_prefetch import NoPrefetchPolicy
from repro.policies.perfect_selector import PerfectSelectorPolicy
from repro.policies.tree import TreePolicy
from repro.policies.tree_children import TreeChildrenPolicy
from repro.policies.tree_filtered import TreeFilteredPolicy
from repro.policies.tree_lvc import TreeLvcPolicy
from repro.policies.tree_next_limit import TreeNextLimitPolicy
from repro.policies.predictor import PredictorPolicy
from repro.policies.tree_threshold import TreeThresholdPolicy
from repro.predictors import make_predictor

def _predictor_factory(predictor_name: str) -> Callable[..., Policy]:
    def factory(**kwargs) -> Policy:
        policy_kwargs = {}
        if "max_candidates" in kwargs:
            policy_kwargs["max_candidates"] = kwargs.pop("max_candidates")
        return PredictorPolicy(
            make_predictor(predictor_name, **kwargs), **policy_kwargs
        )

    return factory


_FACTORIES: Dict[str, Callable[..., Policy]] = {
    NoPrefetchPolicy.name: NoPrefetchPolicy,
    NextLimitPolicy.name: NextLimitPolicy,
    TreePolicy.name: TreePolicy,
    TreeNextLimitPolicy.name: TreeNextLimitPolicy,
    TreeThresholdPolicy.name: TreeThresholdPolicy,
    TreeChildrenPolicy.name: TreeChildrenPolicy,
    TreeFilteredPolicy.name: TreeFilteredPolicy,
    TreeLvcPolicy.name: TreeLvcPolicy,
    PerfectSelectorPolicy.name: PerfectSelectorPolicy,
    InformedPolicy.name: InformedPolicy,
    FilePrefetchPolicy.name: FilePrefetchPolicy,
    # Section 10's alternative predictors under the same cost-benefit rule.
    "cb-lz": _predictor_factory("lz"),
    "cb-ppm": _predictor_factory("ppm"),
    "cb-prob-graph": _predictor_factory("prob-graph"),
    "cb-markov": _predictor_factory("markov"),
    "cb-last-successor": _predictor_factory("last-successor"),
}


def policy_names() -> List[str]:
    """All registered policy names, in the paper's presentation order."""
    return list(_FACTORIES)


def make_policy(name: str, **kwargs) -> Policy:
    """Instantiate a fresh policy by its paper name.

    Policies are single-use: call this once per simulation run.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown policy {name!r}; known policies: {known}")
    return factory(**kwargs)
