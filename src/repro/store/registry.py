"""On-disk model registry: named, versioned snapshot entries.

Layout under the registry root::

    MANIFEST.json              # index of every entry (atomic rewrite)
    <name>/1.snap              # immutable snapshot files, one per version
    <name>/2.snap

Saving under an existing name allocates the next version; versions are
never overwritten or renumbered, so a reference like ``tree-cad@3`` stays
valid for the registry's lifetime.  ``load("tree-cad")`` resolves to the
latest version.  Both the manifest and snapshot files are written with the
temp-file + rename discipline, so a crashed save leaves either the old
registry state or the new one, never a torn file.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.store.codec import (
    PathLike,
    Snapshot,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)

MANIFEST_NAME = "MANIFEST.json"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_SPEC_RE = re.compile(r"^(?P<name>[^@]+)(?:@(?P<version>\d+))?$")


class ModelStoreError(SnapshotError):
    """Registry-level failure: unknown name/version, bad manifest, ..."""


def parse_spec(spec: str) -> Tuple[str, Optional[int]]:
    """Split ``name[@version]``; version ``None`` means latest."""
    match = _SPEC_RE.match(spec)
    if match is None or not _NAME_RE.match(match.group("name")):
        raise ModelStoreError(
            f"bad model spec {spec!r} (expected NAME or NAME@VERSION, "
            "name charset [A-Za-z0-9._-])"
        )
    version = match.group("version")
    return match.group("name"), int(version) if version is not None else None


class ModelStore:
    """A directory of named, versioned snapshots."""

    def __init__(self, root: PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------ manifest

    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _read_manifest(self) -> Dict[str, Any]:
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            return {"entries": {}}
        except (OSError, json.JSONDecodeError) as exc:
            raise ModelStoreError(
                f"cannot read registry manifest {self._manifest_path}: {exc}"
            ) from None
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("entries"), dict
        ):
            raise ModelStoreError(
                f"registry manifest {self._manifest_path} is malformed"
            )
        return manifest

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        tmp = self._manifest_path + f".tmp-{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------- save

    def save(self, name: str, snapshot: Snapshot) -> int:
        """Store ``snapshot`` under ``name``; returns the assigned version."""
        if not _NAME_RE.match(name):
            raise ModelStoreError(
                f"bad model name {name!r} (charset [A-Za-z0-9._-], "
                "must not start with a dot)"
            )
        manifest = self._read_manifest()
        entry = manifest["entries"].setdefault(
            name, {"versions": [], "latest": 0}
        )
        version = int(entry["latest"]) + 1
        rel_path = os.path.join(name, f"{version}.snap")
        os.makedirs(os.path.join(self.root, name), exist_ok=True)
        write_snapshot(snapshot, os.path.join(self.root, rel_path))
        entry["versions"].append({
            "version": version,
            "file": rel_path,
            "kind": snapshot.kind,
            "model": snapshot.model,
            "counts": snapshot.counts,
        })
        entry["latest"] = version
        self._write_manifest(manifest)
        return version

    # ------------------------------------------------------------- load

    def resolve(self, spec: str) -> Tuple[str, int, str]:
        """Resolve ``name[@version]`` to ``(name, version, absolute path)``."""
        name, version = parse_spec(spec)
        manifest = self._read_manifest()
        entry = manifest["entries"].get(name)
        if entry is None:
            known = ", ".join(sorted(manifest["entries"])) or "(registry empty)"
            raise ModelStoreError(
                f"no model named {name!r} in {self.root} (known: {known})"
            )
        if version is None:
            version = int(entry["latest"])
        for record in entry["versions"]:
            if int(record["version"]) == version:
                return name, version, os.path.join(self.root, record["file"])
        raise ModelStoreError(
            f"model {name!r} has no version {version} "
            f"(latest is {entry['latest']})"
        )

    def load(self, spec: str) -> Snapshot:
        """Read and verify the snapshot for ``name[@version]``."""
        _, _, path = self.resolve(spec)
        try:
            return read_snapshot(path)
        except FileNotFoundError:
            raise ModelStoreError(
                f"registry file missing for {spec!r}: {path}"
            ) from None

    # ------------------------------------------------------------ queries

    def list_entries(self) -> List[Dict[str, Any]]:
        """Every stored version: name, version, kind, model, counts."""
        manifest = self._read_manifest()
        rows: List[Dict[str, Any]] = []
        for name in sorted(manifest["entries"]):
            entry = manifest["entries"][name]
            for record in entry["versions"]:
                rows.append({
                    "name": name,
                    "version": int(record["version"]),
                    "kind": record.get("kind", ""),
                    "model": record.get("model", ""),
                    "counts": dict(record.get("counts", {})),
                    "latest": int(record["version"]) == int(entry["latest"]),
                })
        return rows

    def versions(self, name: str) -> List[int]:
        manifest = self._read_manifest()
        entry = manifest["entries"].get(name)
        if entry is None:
            return []
        return [int(r["version"]) for r in entry["versions"]]
