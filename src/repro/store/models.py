"""Model-kind snapshots: one predictor/tree, portable across sessions.

Anything implementing the :class:`Snapshotable` surface can be saved and
restored: the LZ :class:`~repro.core.tree.PrefetchTree` and all predictors
in :mod:`repro.predictors` (``lz``, ``ppm``, ``markov``, ``prob-graph``,
``last-successor``).  A model snapshot warm-starts a fresh
:class:`~repro.service.session.PrefetchSession` (or any policy whose
:meth:`~repro.policies.base.Policy.model` matches the snapshot's kind) —
prediction quality carries over while cache/cost state starts cold.  For a
*decision-identical* resume, use a session snapshot
(:mod:`repro.store.session_state`) instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.store.codec import KIND_BASE, KIND_MODEL, KIND_SESSION, Snapshot, SnapshotError

try:  # pragma: no cover - typing nicety only
    from typing import Protocol, runtime_checkable

    @runtime_checkable
    class Snapshotable(Protocol):
        """What an object must offer to live in a snapshot body."""

        snapshot_kind: str

        def snapshot_state(self) -> Tuple[Dict[str, Any], List[Any]]:
            """JSON-able ``(meta, items)``; items become one body line each."""

        def restore_state(self, meta: Dict[str, Any], items: List[Any]) -> None:
            """Inverse of :meth:`snapshot_state`, applied in place."""

        def memory_items(self) -> int:
            """Model size in retained items (nodes, contexts, edges)."""

except ImportError:  # pragma: no cover - pre-3.8 fallback, never hit
    Snapshotable = object  # type: ignore[assignment,misc]


def model_snapshot(
    model: "Snapshotable",
    *,
    config: Optional[Dict[str, Any]] = None,
    provenance: Optional[Dict[str, Any]] = None,
    base: bool = False,
) -> Snapshot:
    """Serialize one model into a ``model``-kind snapshot.

    With ``base=True`` the snapshot is written as a ``base-model`` — the
    same body, but marked as promoted to a shared multi-tenant base (see
    :mod:`repro.tenancy`).
    """
    kind = getattr(model, "snapshot_kind", None)
    if not isinstance(kind, str) or not hasattr(model, "snapshot_state"):
        raise SnapshotError(
            f"{type(model).__name__} is not snapshotable "
            "(no snapshot_kind/snapshot_state)"
        )
    meta, items = model.snapshot_state()
    header = {
        "config": dict(config or {}),
        "provenance": dict(provenance or {}),
        "counts": {"model_kind": kind, "model_items": len(items)},
        "meta": meta,
    }
    return Snapshot(
        kind=KIND_BASE if base else KIND_MODEL,
        model=kind,
        header=header,
        records=items,
    )


def extract_model_state(
    snapshot: Snapshot,
) -> Tuple[str, Dict[str, Any], List[Any]]:
    """Pull ``(model_kind, meta, items)`` out of any snapshot holding a model.

    Accepts ``model`` and ``base-model`` snapshots directly, and ``session``
    snapshots by extracting their embedded model records — so a shared base
    can be promoted from either a trained model or a serving checkpoint.
    """
    if snapshot.kind in (KIND_MODEL, KIND_BASE):
        meta = snapshot.header.get("meta")
        if not isinstance(meta, dict):
            raise SnapshotError("model snapshot header is missing its meta")
        return snapshot.model, meta, list(snapshot.records)
    if snapshot.kind == KIND_SESSION:
        meta: Optional[Dict[str, Any]] = None
        kind: Optional[str] = None
        items: List[Any] = []
        for record in snapshot.records:
            tag = record[0]
            if tag == "model":
                kind = record[1]["kind"]
                meta = record[1]["meta"]
            elif tag == "model-item":
                items.append(record[1])
        if kind is None or meta is None:
            raise SnapshotError(
                "session snapshot carries no embedded model records"
            )
        return kind, meta, items
    raise SnapshotError(
        f"cannot extract a model from a {snapshot.kind!r} snapshot"
    )


def restore_model(snapshot: Snapshot, model: "Snapshotable") -> None:
    """Load a ``model``/``base-model`` snapshot into ``model`` in place.

    The snapshot's model kind must match ``model.snapshot_kind``.
    """
    if snapshot.kind not in (KIND_MODEL, KIND_BASE):
        raise SnapshotError(
            f"expected a model snapshot, got kind {snapshot.kind!r}"
        )
    kind = getattr(model, "snapshot_kind", None)
    if kind != snapshot.model:
        raise SnapshotError(
            f"model kind mismatch: snapshot holds {snapshot.model!r}, "
            f"target is {kind!r}"
        )
    meta = snapshot.header.get("meta")
    if not isinstance(meta, dict):
        raise SnapshotError("model snapshot header is missing its meta")
    model.restore_state(meta, snapshot.records)
