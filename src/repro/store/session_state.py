"""Whole-session snapshots: everything a live engine needs to resume.

A *model* snapshot (:mod:`repro.store.models`) carries only the predictor;
that is enough to warm-start prediction quality, but not enough to make a
resumed session *decision-identical* to one that never stopped — the
cost-benefit gate also depends on the buffer pool contents, the stack-
distance profiler, the smoothed prefetch rate ``s``, the clock, and the
policy's own auxiliary state.  A *session* snapshot captures all of it, so

    decisions(run over A ++ B)
        == decisions(run over A) ++ decisions(restore(snapshot(A)) over B)

bit for bit, for every online-capable policy.  The parity tests in
``tests/store/`` pin this through the actual codec bytes.

Serialization rules that parity depends on:

* every dict whose iteration order the engine observes (demand LRU,
  prefetch entries, tree children) is written and restored in its exact
  insertion order;
* floats are carried verbatim (JSON ``repr`` round-trips Python floats
  exactly); the profiler's lazily scaled decay state in particular is
  **not** renormalised on restore;
* derived structures (Fenwick tree, tag counts, the prefetch cache's
  k-cheapest list) are rebuilt or invalidated — the rebuilt answers are
  exact, and the invalidation points coincide with a period boundary,
  where a continuous run would have discarded them anyway.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict
from typing import Any, Dict, List, Optional

from repro.cache.ghost import _Fenwick
from repro.cache.prefetch_cache import PrefetchEntry
from repro.core.estimators import EwmaRate
from repro.params import SystemParams
from repro.service.session import PrefetchAdvice, PrefetchSession, SessionError
from repro.sim.disk import QueuedDiskModel
from repro.sim.stats import SimulationStats
from repro.store.codec import KIND_SESSION, Snapshot, SnapshotError


def snapshot_session(
    session: PrefetchSession,
    *,
    provenance: Optional[Dict[str, Any]] = None,
) -> Snapshot:
    """Capture a live (unclosed) session into a ``session``-kind snapshot.

    Must be called between observations — never from inside a step.
    """
    if session.closed:
        raise SnapshotError("cannot snapshot a closed session")
    sim = session.simulator
    policy = sim.policy
    clock = sim.clock
    cache = sim.cache
    records: List[Any] = []

    records.append(["clock", {
        "now": clock.now,
        "compute_time": clock.compute_time,
        "hit_time": clock.hit_time,
        "driver_time": clock.driver_time,
        "demand_fetch_time": clock.demand_fetch_time,
        "stall_time": clock.stall_time,
    }])
    disk_state: Dict[str, Any] = {
        "demand_reads": sim.disk.demand_reads,
        "prefetch_reads": sim.disk.prefetch_reads,
    }
    if isinstance(sim.disk, QueuedDiskModel):
        # The raw heap list round-trips: heap order is a property of the
        # list layout, which JSON preserves.
        disk_state["free_at"] = list(sim.disk._free_at)
        disk_state["queue_delay_total"] = sim.disk.queue_delay_total
        disk_state["queued_requests"] = sim.disk.queued_requests
    records.append(["disk", disk_state])
    est = sim._s_estimator
    records.append(["s", {
        "alpha": est._ewma.alpha,
        "initial": est._ewma.initial,
        "value": est._ewma.value,
        "observations": est._ewma.observations,
        "total_prefetches": est._total_prefetches,
        "periods": est._periods,
    }])
    records.append(["stats", asdict(sim.stats)])
    records.append(["engine", {"period": sim.period}])

    demand = cache.demand
    records.append(["demand", {
        "blocks": list(demand.blocks_lru_to_mru()),
        "hits": demand.hits,
        "misses": demand.misses,
        "evictions": demand.evictions,
    }])
    pf = cache.prefetch
    records.append(["pf", {
        "hits": pf.hits,
        "inserted": pf.inserted,
        "evicted_unreferenced": pf.evicted_unreferenced,
    }])
    for entry in pf:
        records.append(["pentry", [
            entry.block, entry.probability, entry.depth,
            entry.issue_period, entry.arrival_time, entry.tag,
        ]])
    prof = cache.profiler
    live = sorted(prof._pos.items(), key=lambda item: item[1])
    records.append(["profiler", {
        "live": [[slot, block] for block, slot in live],
        "next_slot": prof._next_slot,
        "scan_slot": prof._scan_slot,
        "hist": list(prof._hist),
        "recent": list(prof._recent),
        "recent_weight": prof._recent_weight,
        "scale": prof._scale,
        "references": prof.references,
        "cold_references": prof.cold_references,
    }])
    records.append(["cache", {
        "forced_prefetch_evictions": cache.forced_prefetch_evictions,
    }])
    records.append(["policy-aux", policy.aux_state()])
    # The last advice answers a retried duplicate OBSERVE after a resume
    # (exactly-once semantics even when the checkpoint landed between an
    # observation being folded and its reply reaching the client).
    if session.last_advice is not None:
        records.append(["last-advice", session.last_advice.as_dict()])

    model = policy.model()
    model_kind = ""
    model_items = 0
    if model is not None:
        model_kind = model.snapshot_kind
        meta, items = model.snapshot_state()
        model_items = len(items)
        records.append(["model", {"kind": model_kind, "meta": meta}])
        for item in items:
            records.append(["model-item", item])

    header = {
        "config": {
            "policy": session.policy_name,
            "cache_size": session.cache_size,
            "params": session.params.as_dict(),
            "policy_kwargs": session.policy_kwargs,
            "sim_kwargs": session.sim_kwargs,
        },
        "provenance": dict(provenance or {}),
        "counts": {
            "references": sim.period,
            "model_kind": model_kind,
            "model_items": model_items,
            "demand_blocks": len(demand),
            "prefetch_blocks": len(pf),
        },
    }
    return Snapshot(
        kind=KIND_SESSION, model=session.policy_name,
        header=header, records=records,
    )


def restore_session(
    snapshot: Snapshot,
    *,
    max_observations: Optional[int] = None,
    model_factory=None,
) -> PrefetchSession:
    """Reconstruct a live session from a ``session``-kind snapshot.

    ``model_factory(model_kind, meta)``, when given, is consulted if the
    snapshot's model kind differs from the policy's default model: it may
    return a replacement model object of the snapshot's kind (installed
    via :meth:`~repro.policies.base.Policy.replace_model` before state is
    applied) or ``None`` to decline.  The tenancy layer uses this to
    rebind ``tree-delta`` overlays to their shared base on resume; without
    a factory a kind mismatch is an error, as before.
    """
    if snapshot.kind != KIND_SESSION:
        raise SnapshotError(
            f"expected a session snapshot, got kind {snapshot.kind!r}"
        )
    config = snapshot.config
    try:
        params = SystemParams(**config["params"])
        session = PrefetchSession(
            policy=config["policy"],
            cache_size=config["cache_size"],
            params=params,
            policy_kwargs=dict(config["policy_kwargs"]),
            max_observations=max_observations,
            **dict(config["sim_kwargs"]),
        )
    except (KeyError, TypeError, ValueError, SessionError) as exc:
        raise SnapshotError(f"snapshot config cannot be rebuilt: {exc}") from None

    sim = session.simulator
    by_tag: Dict[str, Any] = {}
    pentries: List[Any] = []
    model_items: List[Any] = []
    for record in snapshot.records:
        try:
            tag, payload = record[0], record[1]
        except (TypeError, IndexError):
            raise SnapshotError(f"malformed session record: {record!r}") from None
        if tag == "pentry":
            pentries.append(payload)
        elif tag == "model-item":
            model_items.append(payload)
        else:
            by_tag[tag] = payload

    try:
        _apply(sim, session, by_tag, pentries, model_items, model_factory)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SnapshotError(f"session snapshot is incomplete: {exc}") from None
    return session


def _apply(sim, session, by_tag, pentries, model_items, model_factory=None) -> None:
    clock_state = by_tag["clock"]
    clock = sim.clock
    clock.now = clock_state["now"]
    clock.compute_time = clock_state["compute_time"]
    clock.hit_time = clock_state["hit_time"]
    clock.driver_time = clock_state["driver_time"]
    clock.demand_fetch_time = clock_state["demand_fetch_time"]
    clock.stall_time = clock_state["stall_time"]

    disk_state = by_tag["disk"]
    sim.disk.demand_reads = disk_state["demand_reads"]
    sim.disk.prefetch_reads = disk_state["prefetch_reads"]
    if isinstance(sim.disk, QueuedDiskModel):
        sim.disk._free_at = list(disk_state["free_at"])
        sim.disk.queue_delay_total = disk_state["queue_delay_total"]
        sim.disk.queued_requests = disk_state["queued_requests"]

    s_state = by_tag["s"]
    est = sim._s_estimator
    est._ewma = EwmaRate(alpha=s_state["alpha"], initial=s_state["initial"])
    est._ewma.value = s_state["value"]
    est._ewma.observations = s_state["observations"]
    est._total_prefetches = s_state["total_prefetches"]
    est._periods = s_state["periods"]

    sim.stats = SimulationStats(**by_tag["stats"])
    sim.period = by_tag["engine"]["period"]

    demand_state = by_tag["demand"]
    demand = sim.cache.demand
    demand._entries = OrderedDict((b, None) for b in demand_state["blocks"])
    demand.hits = demand_state["hits"]
    demand.misses = demand_state["misses"]
    demand.evictions = demand_state["evictions"]

    pf_state = by_tag["pf"]
    pf = sim.cache.prefetch
    pf._entries = {}
    pf._tag_counts = {}
    for block, probability, depth, issue_period, arrival_time, tag in pentries:
        entry = PrefetchEntry(
            block=block, probability=probability, depth=depth,
            issue_period=issue_period, arrival_time=arrival_time, tag=tag,
        )
        pf._entries[block] = entry
        pf._tag_counts[tag] = pf._tag_counts.get(tag, 0) + 1
    pf.hits = pf_state["hits"]
    pf.inserted = pf_state["inserted"]
    pf.evicted_unreferenced = pf_state["evicted_unreferenced"]
    pf._cheap = []
    pf._cheap_key = None
    pf._cheap_complete = False

    prof_state = by_tag["profiler"]
    prof = sim.cache.profiler
    prof._pos = {}
    prof._order = [None] * prof._slots
    prof._fenwick = _Fenwick(prof._slots)
    for slot, block in prof_state["live"]:
        prof._pos[block] = slot
        prof._order[slot] = block
        prof._fenwick.add(slot, 1)
    prof._next_slot = prof_state["next_slot"]
    prof._scan_slot = prof_state["scan_slot"]
    prof._hist = list(prof_state["hist"])
    prof._recent = list(prof_state["recent"])
    prof._recent_weight = prof_state["recent_weight"]
    prof._scale = prof_state["scale"]
    prof.references = prof_state["references"]
    prof.cold_references = prof_state["cold_references"]

    sim.cache.forced_prefetch_evictions = (
        by_tag["cache"]["forced_prefetch_evictions"]
    )

    sim.policy.restore_aux_state(by_tag.get("policy-aux", {}))

    advice_state = by_tag.get("last-advice")
    if advice_state is not None:
        session._last_advice = PrefetchAdvice.from_dict(advice_state)

    model = sim.policy.model()
    model_state = by_tag.get("model")
    if model_state is not None:
        if model is None:
            raise SnapshotError(
                f"snapshot carries a {model_state['kind']!r} model but policy "
                f"{session.policy_name!r} has none"
            )
        if model.snapshot_kind != model_state["kind"]:
            replacement = None
            if model_factory is not None:
                replacement = model_factory(
                    model_state["kind"], model_state["meta"]
                )
            if replacement is None:
                raise SnapshotError(
                    f"model kind mismatch: snapshot has "
                    f"{model_state['kind']!r}, policy "
                    f"{session.policy_name!r} expects {model.snapshot_kind!r}"
                )
            sim.policy.replace_model(replacement)
            model = replacement
        model.restore_state(model_state["meta"], model_items)
