"""The snapshot file format: one header line + a checksummed JSON-lines body.

A snapshot is a UTF-8 text file::

    {"magic": "repro-snapshot", "schema": 1, "kind": ..., "model": ...,
     "body_lines": N, "body_sha256": "...", ...}
    ["tree", {...}]          <- body record 1
    ["node", [0, null, ...]] <- body record 2
    ...                      <- body record N

The first line is the *header*: a JSON object carrying the schema version,
what kind of state the body holds (a bare model or a whole serving
session), the parameters needed to rebuild the owning objects, provenance
(which trace trained it), and item counts for cheap inspection.  The
remaining ``body_lines`` lines are the *body*: one JSON record per line,
in a layer-defined order (see :mod:`repro.store.models` and
:mod:`repro.store.session_state`).

Integrity is verified on load:

* the header must parse, carry the right magic, and a known schema version;
* the body must have exactly ``body_lines`` lines (catches truncation);
* the SHA-256 of the exact body bytes must match ``body_sha256`` (catches
  bit rot and hand edits);
* every body line must parse as JSON.

All JSON is written canonically (sorted keys, compact separators, NaN
forbidden), so ``save -> load -> save`` is byte-stable — the property the
round-trip tests pin, and what makes snapshot checksums meaningful as
content addresses.

Writes are atomic: the file is written to a same-directory temp name,
fsync'd, then ``os.replace``-d into place, so a crashed or killed writer
can never leave a half-written snapshot behind at the target path.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

PathLike = Union[str, "os.PathLike[str]"]

MAGIC = "repro-snapshot"
SCHEMA_VERSION = 1

#: Snapshot kinds.  ``model`` bodies hold one predictor/tree; ``session``
#: bodies hold a whole serving session (model + engine runtime state);
#: ``base-model`` bodies are model bodies promoted to shared multi-tenant
#: bases (loaded once per worker, mmap-read); ``delta`` bodies hold one
#: session's copy-on-write overlay over a named base (see
#: :mod:`repro.tenancy`).
KIND_MODEL = "model"
KIND_SESSION = "session"
KIND_BASE = "base-model"
KIND_DELTA = "delta"


class SnapshotError(Exception):
    """Base class for everything the snapshot layer can raise."""


class SnapshotCorruptError(SnapshotError):
    """The file is not a well-formed snapshot: truncated, bit-flipped,
    hand-edited, or not a snapshot at all."""


class SnapshotVersionError(SnapshotError):
    """The file is a snapshot, but of a schema this code does not speak."""


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, compact, no NaN)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        allow_nan=False,
    )


@dataclass
class Snapshot:
    """A decoded snapshot: header metadata plus the body records.

    ``header`` holds everything except the integrity fields (``magic``,
    ``schema``, ``body_lines``, ``body_sha256``), which the codec owns.
    """

    kind: str
    model: str
    header: Dict[str, Any] = field(default_factory=dict)
    records: List[Any] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, Any]:
        return dict(self.header.get("counts", {}))

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self.header.get("config", {}))

    @property
    def provenance(self) -> Dict[str, Any]:
        return dict(self.header.get("provenance", {}))


def _encode_body(records: List[Any]) -> bytes:
    lines = []
    for record in records:
        try:
            lines.append(canonical_json(record))
        except (TypeError, ValueError) as exc:
            raise SnapshotError(
                f"body record is not canonical-JSON-able: {exc}"
            ) from None
    return ("".join(line + "\n" for line in lines)).encode("utf-8")


def encode_snapshot(snapshot: Snapshot) -> bytes:
    """Serialize a snapshot to its on-disk byte form."""
    body = _encode_body(snapshot.records)
    header = dict(snapshot.header)
    header["magic"] = MAGIC
    header["schema"] = SCHEMA_VERSION
    header["kind"] = snapshot.kind
    header["model"] = snapshot.model
    header["body_lines"] = len(snapshot.records)
    header["body_sha256"] = hashlib.sha256(body).hexdigest()
    try:
        header_line = canonical_json(header)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"header is not canonical-JSON-able: {exc}") from None
    return header_line.encode("utf-8") + b"\n" + body


def _parse_header_line(header_bytes: bytes) -> Dict[str, Any]:
    """Parse + validate the header line; returns the header dict."""
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptError(f"header is not valid JSON: {exc}") from None
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise SnapshotCorruptError(
            f"not a snapshot file (magic {header.get('magic')!r} "
            f"!= {MAGIC!r})" if isinstance(header, dict)
            else "not a snapshot file (header is not an object)"
        )
    schema = header.get("schema")
    if schema != SCHEMA_VERSION:
        raise SnapshotVersionError(
            f"snapshot schema {schema!r} is not supported "
            f"(this build reads schema {SCHEMA_VERSION})"
        )
    return header


def _finish_snapshot(header: Dict[str, Any], records: List[Any]) -> Snapshot:
    """Strip codec-owned fields and build the Snapshot object."""
    kind = str(header.pop("kind", ""))
    model = str(header.pop("model", ""))
    for key in ("magic", "schema", "body_lines", "body_sha256"):
        header.pop(key, None)
    return Snapshot(kind=kind, model=model, header=header, records=records)


def decode_snapshot(data: bytes) -> Snapshot:
    """Parse and verify on-disk bytes; raises on any integrity failure."""
    newline = data.find(b"\n")
    if newline < 0:
        raise SnapshotCorruptError("no header line (empty or truncated file)")
    header = _parse_header_line(data[:newline])
    body = data[newline + 1 :]
    expected_lines = header.get("body_lines")
    expected_sha = header.get("body_sha256")
    if not isinstance(expected_lines, int) or not isinstance(expected_sha, str):
        raise SnapshotCorruptError("header is missing the integrity fields")
    actual_sha = hashlib.sha256(body).hexdigest()
    if actual_sha != expected_sha:
        raise SnapshotCorruptError(
            f"body checksum mismatch: header says {expected_sha[:12]}..., "
            f"body hashes to {actual_sha[:12]}... (corrupt or edited)"
        )
    lines = body.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    if len(lines) != expected_lines:
        raise SnapshotCorruptError(
            f"body has {len(lines)} lines, header says {expected_lines} "
            "(truncated file)"
        )
    records: List[Any] = []
    for i, line in enumerate(lines, start=2):
        try:
            records.append(json.loads(line.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotCorruptError(f"line {i} is not valid JSON: {exc}") from None
    return _finish_snapshot(header, records)


def write_snapshot(snapshot: Snapshot, path: PathLike) -> None:
    """Atomically write a snapshot: temp file + fsync + rename."""
    data = encode_snapshot(snapshot)
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(directory, f".{os.path.basename(path)}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_snapshot(path: PathLike) -> Snapshot:
    """Read and verify a snapshot file.

    Raises :class:`SnapshotCorruptError` / :class:`SnapshotVersionError`
    for bad files and ``OSError`` (e.g. ``FileNotFoundError``) for I/O
    failures.
    """
    with open(path, "rb") as fh:
        return decode_snapshot(fh.read())


def read_snapshot_mmap(path: PathLike) -> Snapshot:
    """Read and verify a snapshot through a read-only memory map.

    Behaviourally identical to :func:`read_snapshot` (same integrity
    checks, same errors), but the file bytes are never copied wholesale
    into the process: the body checksum hashes the mapped pages directly
    and records are parsed line by line off the map.  For the multi-GB
    base-model snapshots the tenancy layer loads once per worker this
    keeps peak RSS at ~parsed-records instead of parsed-records plus a
    full byte copy of the file, and the mapped pages stay evictable,
    shared page cache.
    """
    import mmap

    with open(path, "rb") as fh:
        try:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:  # zero-length file cannot be mapped
            raise SnapshotCorruptError(
                "no header line (empty or truncated file)"
            ) from None
        with mm:
            newline = mm.find(b"\n")
            if newline < 0:
                raise SnapshotCorruptError(
                    "no header line (empty or truncated file)"
                )
            header = _parse_header_line(mm[:newline])
            expected_lines = header.get("body_lines")
            expected_sha = header.get("body_sha256")
            if not isinstance(expected_lines, int) or not isinstance(
                expected_sha, str
            ):
                raise SnapshotCorruptError(
                    "header is missing the integrity fields"
                )
            body_start = newline + 1
            with memoryview(mm) as view:
                actual_sha = hashlib.sha256(view[body_start:]).hexdigest()
            if actual_sha != expected_sha:
                raise SnapshotCorruptError(
                    f"body checksum mismatch: header says "
                    f"{expected_sha[:12]}..., body hashes to "
                    f"{actual_sha[:12]}... (corrupt or edited)"
                )
            records: List[Any] = []
            pos = body_start
            end = mm.size()
            lineno = 2
            while pos < end:
                nl = mm.find(b"\n", pos)
                if nl < 0:
                    nl = end
                try:
                    records.append(json.loads(mm[pos:nl].decode("utf-8")))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise SnapshotCorruptError(
                        f"line {lineno} is not valid JSON: {exc}"
                    ) from None
                pos = nl + 1
                lineno += 1
            if len(records) != expected_lines:
                raise SnapshotCorruptError(
                    f"body has {len(records)} lines, header says "
                    f"{expected_lines} (truncated file)"
                )
    return _finish_snapshot(header, records)


def read_header(path: PathLike) -> Dict[str, Any]:
    """Read only the header line (cheap inspection of a large snapshot).

    The body is *not* verified; use :func:`read_snapshot` before trusting
    the contents.
    """
    with open(path, "rb") as fh:
        header_bytes = fh.readline()
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptError(f"header is not valid JSON: {exc}") from None
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise SnapshotCorruptError("not a snapshot file")
    if header.get("schema") != SCHEMA_VERSION:
        raise SnapshotVersionError(
            f"snapshot schema {header.get('schema')!r} is not supported "
            f"(this build reads schema {SCHEMA_VERSION})"
        )
    return header
