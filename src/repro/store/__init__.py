"""Persistent model state: snapshots, warm starts, and the model registry.

The paper's prefetch tree is an online model that only pays off once warmed
up, yet the simulator and the advisory service historically started every
run from an empty model.  This package makes model state a first-class
artifact (cf. MITHRIL's managed association state):

* :mod:`repro.store.codec` — the versioned, checksummed snapshot file
  format (header line + JSON-lines body, atomic writes, corruption
  detection on load);
* :mod:`repro.store.models` — ``model``-kind snapshots of any
  ``Snapshotable`` (the prefetch tree and every predictor);
* :mod:`repro.store.session_state` — ``session``-kind snapshots of a whole
  live :class:`~repro.service.session.PrefetchSession`, restoring to a
  decision-identical resume;
* :mod:`repro.store.registry` — :class:`ModelStore`, an on-disk directory
  of named, versioned snapshot entries (``tree-cad@3``).

See ``docs/PERSISTENCE.md`` for the format spec and the parity guarantee.
"""

from repro.store.codec import (
    KIND_MODEL,
    KIND_SESSION,
    SCHEMA_VERSION,
    Snapshot,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    read_header,
    read_snapshot,
    write_snapshot,
)
from repro.store.models import Snapshotable, model_snapshot, restore_model
from repro.store.registry import ModelStore, ModelStoreError, parse_spec
from repro.store.session_state import restore_session, snapshot_session

__all__ = [
    "KIND_MODEL",
    "KIND_SESSION",
    "ModelStore",
    "ModelStoreError",
    "SCHEMA_VERSION",
    "Snapshot",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotVersionError",
    "Snapshotable",
    "model_snapshot",
    "parse_spec",
    "read_header",
    "read_snapshot",
    "restore_model",
    "restore_session",
    "snapshot_session",
    "write_snapshot",
]
