"""Fault injection for the advisory service: a chaos TCP proxy.

:class:`ChaosProxy` sits between a client and a real server and corrupts
the server->client reply stream according to a :class:`FaultPlan`:
dropped replies followed by a connection reset, added latency, truncated
NDJSON lines, and interleaved garbage lines.  The client->server
direction is forwarded untouched, so every fault the client sees models
something the network or a dying server can actually do.

Injection is *deterministic*: faults fire on every Nth forwarded reply
(one shared counter across all connections through the proxy), so a test
or CI job that replays a fixed trace sees the exact same fault schedule
every run.  That turns "survives chaos" from a flaky probabilistic claim
into a reproducible assertion.

Used by ``tests/service/test_faults.py`` and the ``repro chaos`` CLI
subcommand, which replays a workload through the proxy with
:class:`~repro.service.client.ResilientAsyncClient` and asserts nothing
is lost.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

#: What a corrupted reply line looks like: definitely not NDJSON.
_GARBAGE_LINE = b"\x00{{{ chaos garbage, not json }}}\xff\n"


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic schedule of injected faults (every Nth reply).

    ``None`` disables a fault class.  Counters are 1-based: with
    ``reset_every=10`` the 10th, 20th, ... replies are dropped and the
    connection is reset, which is exactly the lost-reply window the
    protocol's ``seq`` deduplication exists for.
    """

    reset_every: Optional[int] = None
    """Drop the Nth reply entirely, then hard-reset the connection."""
    delay_every: Optional[int] = None
    """Stall the Nth reply by ``delay_s`` before forwarding it."""
    delay_s: float = 0.05
    truncate_every: Optional[int] = None
    """Forward only a prefix of the Nth reply line, then reset."""
    garbage_every: Optional[int] = None
    """Prepend a non-JSON line to the Nth reply (reply still delivered)."""

    def __post_init__(self) -> None:
        for name in ("reset_every", "delay_every", "truncate_every",
                     "garbage_every"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value!r}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s!r}")

    @property
    def injects_anything(self) -> bool:
        return any(every is not None for every in (
            self.reset_every, self.delay_every, self.truncate_every,
            self.garbage_every,
        ))


@dataclass
class ChaosStats:
    """What the proxy actually did, for assertions and the CLI summary."""

    connections: int = 0
    replies_forwarded: int = 0
    resets_injected: int = 0
    delays_injected: int = 0
    truncations_injected: int = 0
    garbage_injected: int = 0

    @property
    def drops_injected(self) -> int:
        """Replies the client never received intact (dropped or cut)."""
        return self.resets_injected + self.truncations_injected

    def as_dict(self) -> Dict[str, Any]:
        return {
            "connections": self.connections,
            "replies_forwarded": self.replies_forwarded,
            "resets_injected": self.resets_injected,
            "delays_injected": self.delays_injected,
            "truncations_injected": self.truncations_injected,
            "garbage_injected": self.garbage_injected,
            "drops_injected": self.drops_injected,
        }


def _nth(count: int, every: Optional[int]) -> bool:
    return every is not None and count % every == 0


class _Reset(Exception):
    """Internal: tear this proxied connection down with an abort."""


@dataclass(eq=False)  # identity semantics: pumps live in a Set
class _Pump:
    """One proxied connection's tasks, for cleanup on proxy close."""

    client_writer: asyncio.StreamWriter
    upstream_writer: asyncio.StreamWriter
    tasks: Set[asyncio.Task] = field(default_factory=set)


class ChaosProxy:
    """A TCP proxy in front of a live server, injecting reply faults.

    ::

        plan = FaultPlan(reset_every=25, delay_every=7, delay_s=0.01)
        async with ChaosProxy(port=server.port, plan=plan) as proxy:
            client = ResilientAsyncClient(port=proxy.port, retry=policy)
            ...

    ``proxy.port`` is the port clients should connect to; faults apply
    only to the server's replies (requests pass through verbatim).

    The proxy is position-independent: pointed at a worker and registered
    in a fleet's worker directory it sits *between the gateway and that
    worker*, exercising the gateway's failover path instead of the
    client's retry path (see ``tests/cluster/test_gateway.py``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7199,
        *,
        plan: Optional[FaultPlan] = None,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
    ) -> None:
        self.upstream_host = host
        self.upstream_port = port
        self.listen_host = listen_host
        self._requested_port = listen_port
        self.plan = plan if plan is not None else FaultPlan()
        self.stats = ChaosStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._pumps: Set[_Pump] = set()

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("proxy is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ChaosProxy":
        self._server = await asyncio.start_server(
            self._handle, self.listen_host, self._requested_port
        )
        return self

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [task for pump in self._pumps for task in pump.tasks]
        for pump in list(self._pumps):
            self._abort(pump)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
            await asyncio.sleep(0)  # let the _handle tasks run to completion
        self._pumps.clear()

    async def __aenter__(self) -> "ChaosProxy":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # ------------------------------------------------------------- pumping

    def _abort(self, pump: _Pump) -> None:
        """RST both sides: the client must see a *reset*, not a clean EOF,
        because that is what a killed server looks like."""
        for writer in (pump.client_writer, pump.upstream_writer):
            transport = writer.transport
            if transport is not None:
                transport.abort()

    async def _handle(
        self,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        self.stats.connections += 1
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            client_writer.transport.abort()
            return
        pump = _Pump(client_writer=client_writer,
                     upstream_writer=upstream_writer)
        self._pumps.add(pump)

        async def _requests() -> None:
            # client -> server: verbatim passthrough
            while True:
                chunk = await client_reader.read(65536)
                if not chunk:
                    break
                upstream_writer.write(chunk)
                await upstream_writer.drain()
            upstream_writer.write_eof()

        async def _replies() -> None:
            # server -> client: line-at-a-time, with faults
            while True:
                line = await upstream_reader.readline()
                if not line:
                    break
                await self._forward_reply(line, client_writer)

        tasks = {
            asyncio.ensure_future(_requests()),
            asyncio.ensure_future(_replies()),
        }
        pump.tasks = tasks
        try:
            done, pending = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_EXCEPTION
            )
            reset = any(
                isinstance(task.exception(), _Reset)
                for task in done
                if not task.cancelled() and task.exception() is not None
            )
            for task in pending:
                task.cancel()
            if reset:
                self._abort(pump)
        except asyncio.CancelledError:
            # Swallowed, not re-raised: a cancelled proxy must look like a
            # reset to its peers, and 3.11's streams done-callback calls
            # task.exception() on cancelled handler tasks, spewing
            # tracebacks for a perfectly ordinary shutdown.
            for task in tasks:
                task.cancel()
            self._abort(pump)
        finally:
            self._pumps.discard(pump)
            for writer in (client_writer, upstream_writer):
                try:
                    writer.close()
                except (ConnectionResetError, BrokenPipeError):
                    pass

    async def _forward_reply(
        self, line: bytes, client_writer: asyncio.StreamWriter
    ) -> None:
        plan = self.plan
        stats = self.stats
        stats.replies_forwarded += 1
        count = stats.replies_forwarded
        if _nth(count, plan.reset_every):
            stats.resets_injected += 1
            raise _Reset  # the reply is dropped on the floor
        if _nth(count, plan.truncate_every):
            stats.truncations_injected += 1
            client_writer.write(line[: max(1, len(line) // 2)])
            await client_writer.drain()
            raise _Reset  # cut mid-line, then reset
        if _nth(count, plan.garbage_every):
            stats.garbage_injected += 1
            client_writer.write(_GARBAGE_LINE)
        if _nth(count, plan.delay_every):
            stats.delays_injected += 1
            await asyncio.sleep(plan.delay_s)
        client_writer.write(line)
        await client_writer.drain()
