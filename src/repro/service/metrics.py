"""Service-level observability: counters and latency histograms.

The serving loop is the hot path, so the histogram is O(1) per sample:
latencies land in logarithmic buckets (successive powers of ``2**(1/4)``
microseconds, ~19% wide) and percentiles are interpolated inside the
matching bucket.  That bounds memory at a few hundred ints regardless of
load, the same trade HdrHistogram and Prometheus make.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

#: Bucket boundaries grow by 2**(1/4) per step starting at 1 microsecond;
#: 160 steps cover 1 us .. ~1100 s, more than any sane command latency.
_BUCKETS_PER_OCTAVE = 4
_NUM_BUCKETS = 160
_MIN_LATENCY_S = 1e-6


class LatencyHistogram:
    """Fixed-size log-bucketed latency histogram (seconds in, ms out)."""

    __slots__ = ("_counts", "count", "total_s", "max_s")

    def __init__(self) -> None:
        self._counts = [0] * _NUM_BUCKETS
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        ratio = max(seconds, _MIN_LATENCY_S) / _MIN_LATENCY_S
        index = int(_BUCKETS_PER_OCTAVE * math.log2(ratio))
        if index >= _NUM_BUCKETS:
            index = _NUM_BUCKETS - 1
        self._counts[index] += 1

    @staticmethod
    def _bucket_upper_s(index: int) -> float:
        return _MIN_LATENCY_S * 2.0 ** ((index + 1) / _BUCKETS_PER_OCTAVE)

    @property
    def mean_ms(self) -> float:
        if self.count == 0:
            return 0.0
        return 1e3 * self.total_s / self.count

    @property
    def max_ms(self) -> float:
        return 1e3 * self.max_s

    def percentile_ms(self, p: float) -> float:
        """Latency (ms) at percentile ``p`` in [0, 100], bucket-interpolated."""
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank and bucket_count > 0:
                upper = self._bucket_upper_s(index)
                return 1e3 * min(upper, self.max_s if self.max_s else upper)
        return self.max_ms

    def merge(self, other: "LatencyHistogram") -> None:
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total_s += other.total_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s

    def to_state(self) -> Dict[str, Any]:
        """Full, lossless form (buckets included) for wire transport.

        ``as_dict`` is a human summary — percentiles only — so a gateway
        aggregating many workers' histograms would lose the buckets it
        needs to merge.  ``to_state``/``from_state`` round-trip the whole
        histogram through JSON; buckets are sparse (index -> count) since
        most of the 160 are empty.
        """
        return {
            "count": self.count,
            "total_s": self.total_s,
            "max_s": self.max_s,
            "buckets": {
                str(index): bucket_count
                for index, bucket_count in enumerate(self._counts)
                if bucket_count
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "LatencyHistogram":
        histogram = cls()
        histogram.count = int(state.get("count", 0))
        histogram.total_s = float(state.get("total_s", 0.0))
        histogram.max_s = float(state.get("max_s", 0.0))
        for index, bucket_count in dict(state.get("buckets", {})).items():
            index = int(index)
            if 0 <= index < _NUM_BUCKETS:
                histogram._counts[index] = int(bucket_count)
        return histogram

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 4),
            "p50_ms": round(self.percentile_ms(50), 4),
            "p95_ms": round(self.percentile_ms(95), 4),
            "p99_ms": round(self.percentile_ms(99), 4),
            "max_ms": round(self.max_ms, 4),
        }


#: Integer counters a :class:`ServiceMetrics` carries; the single source
#: of truth for ``merge``/``to_state``/``from_state``, so adding a counter
#: in ``__init__`` plus here keeps fleet aggregation complete.
_COUNTER_FIELDS = (
    "connections_opened",
    "connections_closed",
    "sessions_opened",
    "sessions_closed",
    "sessions_rejected",
    "advice_issued",
    "prefetches_recommended",
    "checkpoints_written",
    "errors",
    "timeouts",
    "degraded_sessions",
    "drained_sessions",
    "sessions_detached",
    "sessions_resumed",
    "duplicates_served",
    "sessions_evicted",
    "sessions_resurrected",
    "tenants_rejected",
    "overload_rejections",
    "checkpoints_deleted",
    "brownout_transitions",
)


class ServiceMetrics:
    """Counters for one server instance.

    ``record_outcome`` feeds the advice-accuracy signal: every OBSERVE
    reply reports how the reference resolved against the session's modelled
    cache, so ``prefetch_hit / (prefetch_hit + miss)`` measures how often
    the advice put the right block in place before demand arrived.

    A fleet gateway aggregates its workers with :meth:`merge` (counters
    summed, histograms bucket-merged); :meth:`to_state` /
    :meth:`from_state` carry the full state — buckets included — across
    the wire in the server-level STATS reply.
    """

    def __init__(self) -> None:
        for name in _COUNTER_FIELDS:
            setattr(self, name, 0)
        self.outcomes: Dict[str, int] = {
            "demand_hit": 0, "prefetch_hit": 0, "miss": 0,
        }
        self.command_latency: Dict[str, LatencyHistogram] = {}
        #: Per-tenant counter maps (tenant -> counter name -> int); summed
        #: across workers on merge like the top-level counters.
        self.per_tenant: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------- feeding

    @property
    def live_sessions(self) -> int:
        return self.sessions_opened - self.sessions_closed

    def record_latency(self, command: str, seconds: float) -> None:
        histogram = self.command_latency.get(command)
        if histogram is None:
            histogram = self.command_latency[command] = LatencyHistogram()
        histogram.record(seconds)

    def record_advice(self, outcome: str, prefetches: int) -> None:
        self.advice_issued += 1
        self.prefetches_recommended += prefetches
        if outcome in self.outcomes:
            self.outcomes[outcome] += 1

    def record_tenant(self, tenant: str, counter: str, amount: int = 1) -> None:
        """Bump one per-tenant counter (e.g. ``sessions_opened``)."""
        counters = self.per_tenant.get(tenant)
        if counters is None:
            counters = self.per_tenant[tenant] = {}
        counters[counter] = counters.get(counter, 0) + amount

    # --------------------------------------------------------- aggregation

    def merge(self, other: "ServiceMetrics") -> "ServiceMetrics":
        """Fold ``other`` into this instance (fleet totals); returns self.

        Counters and outcomes are summed; latency histograms are merged
        bucket-by-bucket via :meth:`LatencyHistogram.merge`, so percentiles
        of the merged histogram reflect every worker's samples rather than
        an average of averages.  Merging is associative and commutative,
        which is what lets a gateway fold workers in any order — and a
        fresh operand is a two-sided identity: empty histograms, empty
        tenant maps, and zero-valued novel outcome keys in ``other`` must
        not materialise entries here, or merging an idle worker would
        change the fleet's ``to_state`` form.
        """
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for outcome, count in other.outcomes.items():
            if count == 0 and outcome not in self.outcomes:
                continue
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + count
        for command, histogram in other.command_latency.items():
            if histogram.count == 0 and command not in self.command_latency:
                continue
            mine = self.command_latency.get(command)
            if mine is None:
                mine = self.command_latency[command] = LatencyHistogram()
            mine.merge(histogram)
        for tenant, counters in other.per_tenant.items():
            live = {
                counter: amount for counter, amount in counters.items()
                if amount != 0 or counter in self.per_tenant.get(tenant, ())
            }
            if not live and tenant not in self.per_tenant:
                continue
            mine_t = self.per_tenant.setdefault(tenant, {})
            for counter, amount in live.items():
                mine_t[counter] = mine_t.get(counter, 0) + amount
        return self

    def to_state(self) -> Dict[str, Any]:
        """Lossless JSON-ready form (cf. :meth:`LatencyHistogram.to_state`)."""
        return {
            "counters": {
                name: getattr(self, name) for name in _COUNTER_FIELDS
            },
            "outcomes": dict(self.outcomes),
            "command_latency": {
                command: histogram.to_state()
                for command, histogram in sorted(self.command_latency.items())
            },
            "per_tenant": {
                tenant: dict(counters)
                for tenant, counters in sorted(self.per_tenant.items())
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ServiceMetrics":
        metrics = cls()
        counters = dict(state.get("counters", {}))
        for name in _COUNTER_FIELDS:
            if name in counters:
                setattr(metrics, name, int(counters[name]))
        for outcome, count in dict(state.get("outcomes", {})).items():
            metrics.outcomes[str(outcome)] = int(count)
        for command, hist_state in dict(
            state.get("command_latency", {})
        ).items():
            metrics.command_latency[str(command)] = (
                LatencyHistogram.from_state(hist_state)
            )
        for tenant, counters in dict(state.get("per_tenant", {})).items():
            metrics.per_tenant[str(tenant)] = {
                str(counter): int(amount)
                for counter, amount in dict(counters).items()
            }
        return metrics

    # ------------------------------------------------------------- reading

    @property
    def advice_accuracy(self) -> Optional[float]:
        """Fraction of non-resident references served from prefetched blocks.

        ``None`` until at least one reference actually needed the disk.
        """
        resolved = self.outcomes["prefetch_hit"] + self.outcomes["miss"]
        if resolved == 0:
            return None
        return self.outcomes["prefetch_hit"] / resolved

    def as_dict(self) -> Dict[str, Any]:
        accuracy = self.advice_accuracy
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "sessions_rejected": self.sessions_rejected,
            "live_sessions": self.live_sessions,
            "advice_issued": self.advice_issued,
            "prefetches_recommended": self.prefetches_recommended,
            "checkpoints_written": self.checkpoints_written,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "degraded_sessions": self.degraded_sessions,
            "drained_sessions": self.drained_sessions,
            "sessions_detached": self.sessions_detached,
            "sessions_resumed": self.sessions_resumed,
            "duplicates_served": self.duplicates_served,
            "sessions_evicted": self.sessions_evicted,
            "sessions_resurrected": self.sessions_resurrected,
            "tenants_rejected": self.tenants_rejected,
            "overload_rejections": self.overload_rejections,
            "checkpoints_deleted": self.checkpoints_deleted,
            "brownout_transitions": self.brownout_transitions,
            "per_tenant": {
                tenant: dict(counters)
                for tenant, counters in sorted(self.per_tenant.items())
            },
            "outcomes": dict(self.outcomes),
            "advice_accuracy": (
                None if accuracy is None else round(accuracy, 4)
            ),
            "command_latency": {
                command: histogram.as_dict()
                for command, histogram in sorted(self.command_latency.items())
            },
        }


def percentiles_from_samples(samples: List[float]) -> Dict[str, float]:
    """Exact p50/p95/p99 (ms) from raw second-valued samples (load gen)."""
    if not samples:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(samples)
    last = len(ordered) - 1

    def at(p: float) -> float:
        return 1e3 * ordered[min(last, int(round(p / 100.0 * last)))]

    return {
        "p50_ms": round(at(50), 4),
        "p95_ms": round(at(95), 4),
        "p99_ms": round(at(99), 4),
    }
