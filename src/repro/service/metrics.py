"""Service-level observability: counters and latency histograms.

The serving loop is the hot path, so the histogram is O(1) per sample:
latencies land in logarithmic buckets (successive powers of ``2**(1/4)``
microseconds, ~19% wide) and percentiles are interpolated inside the
matching bucket.  That bounds memory at a few hundred ints regardless of
load, the same trade HdrHistogram and Prometheus make.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

#: Bucket boundaries grow by 2**(1/4) per step starting at 1 microsecond;
#: 160 steps cover 1 us .. ~1100 s, more than any sane command latency.
_BUCKETS_PER_OCTAVE = 4
_NUM_BUCKETS = 160
_MIN_LATENCY_S = 1e-6


class LatencyHistogram:
    """Fixed-size log-bucketed latency histogram (seconds in, ms out)."""

    __slots__ = ("_counts", "count", "total_s", "max_s")

    def __init__(self) -> None:
        self._counts = [0] * _NUM_BUCKETS
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        ratio = max(seconds, _MIN_LATENCY_S) / _MIN_LATENCY_S
        index = int(_BUCKETS_PER_OCTAVE * math.log2(ratio))
        if index >= _NUM_BUCKETS:
            index = _NUM_BUCKETS - 1
        self._counts[index] += 1

    @staticmethod
    def _bucket_upper_s(index: int) -> float:
        return _MIN_LATENCY_S * 2.0 ** ((index + 1) / _BUCKETS_PER_OCTAVE)

    @property
    def mean_ms(self) -> float:
        if self.count == 0:
            return 0.0
        return 1e3 * self.total_s / self.count

    @property
    def max_ms(self) -> float:
        return 1e3 * self.max_s

    def percentile_ms(self, p: float) -> float:
        """Latency (ms) at percentile ``p`` in [0, 100], bucket-interpolated."""
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank and bucket_count > 0:
                upper = self._bucket_upper_s(index)
                return 1e3 * min(upper, self.max_s if self.max_s else upper)
        return self.max_ms

    def merge(self, other: "LatencyHistogram") -> None:
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total_s += other.total_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 4),
            "p50_ms": round(self.percentile_ms(50), 4),
            "p95_ms": round(self.percentile_ms(95), 4),
            "p99_ms": round(self.percentile_ms(99), 4),
            "max_ms": round(self.max_ms, 4),
        }


class ServiceMetrics:
    """Counters for one server instance.

    ``record_outcome`` feeds the advice-accuracy signal: every OBSERVE
    reply reports how the reference resolved against the session's modelled
    cache, so ``prefetch_hit / (prefetch_hit + miss)`` measures how often
    the advice put the right block in place before demand arrived.
    """

    def __init__(self) -> None:
        self.connections_opened = 0
        self.connections_closed = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_rejected = 0
        self.advice_issued = 0
        self.prefetches_recommended = 0
        self.checkpoints_written = 0
        self.errors = 0
        self.timeouts = 0
        self.degraded_sessions = 0
        self.drained_sessions = 0
        self.sessions_detached = 0
        self.sessions_resumed = 0
        self.duplicates_served = 0
        self.outcomes: Dict[str, int] = {
            "demand_hit": 0, "prefetch_hit": 0, "miss": 0,
        }
        self.command_latency: Dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------- feeding

    @property
    def live_sessions(self) -> int:
        return self.sessions_opened - self.sessions_closed

    def record_latency(self, command: str, seconds: float) -> None:
        histogram = self.command_latency.get(command)
        if histogram is None:
            histogram = self.command_latency[command] = LatencyHistogram()
        histogram.record(seconds)

    def record_advice(self, outcome: str, prefetches: int) -> None:
        self.advice_issued += 1
        self.prefetches_recommended += prefetches
        if outcome in self.outcomes:
            self.outcomes[outcome] += 1

    # ------------------------------------------------------------- reading

    @property
    def advice_accuracy(self) -> Optional[float]:
        """Fraction of non-resident references served from prefetched blocks.

        ``None`` until at least one reference actually needed the disk.
        """
        resolved = self.outcomes["prefetch_hit"] + self.outcomes["miss"]
        if resolved == 0:
            return None
        return self.outcomes["prefetch_hit"] / resolved

    def as_dict(self) -> Dict[str, Any]:
        accuracy = self.advice_accuracy
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "sessions_rejected": self.sessions_rejected,
            "live_sessions": self.live_sessions,
            "advice_issued": self.advice_issued,
            "prefetches_recommended": self.prefetches_recommended,
            "checkpoints_written": self.checkpoints_written,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "degraded_sessions": self.degraded_sessions,
            "drained_sessions": self.drained_sessions,
            "sessions_detached": self.sessions_detached,
            "sessions_resumed": self.sessions_resumed,
            "duplicates_served": self.duplicates_served,
            "outcomes": dict(self.outcomes),
            "advice_accuracy": (
                None if accuracy is None else round(accuracy, 4)
            ),
            "command_latency": {
                command: histogram.as_dict()
                for command, histogram in sorted(self.command_latency.items())
            },
        }


def percentiles_from_samples(samples: List[float]) -> Dict[str, float]:
    """Exact p50/p95/p99 (ms) from raw second-valued samples (load gen)."""
    if not samples:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(samples)
    last = len(ordered) - 1

    def at(p: float) -> float:
        return 1e3 * ordered[min(last, int(round(p / 100.0 * last)))]

    return {
        "p50_ms": round(at(50), 4),
        "p95_ms": round(at(95), 4),
        "p99_ms": round(at(99), 4),
    }
