"""Load generator: replay a block trace against a live advisory server.

Spawns N concurrent clients, each with its own connection and session,
streaming the trace one OBSERVE per reference, and reports aggregate
throughput (advice/sec), client-side latency percentiles, and the outcome
mix.  Because each session is deterministic given its reference stream,
replaying the same seeded trace always produces the same advice — the
harness doubles as a correctness check under concurrency.

``disjoint=True`` offsets each client's block ids into a private range so
the server is exercised with genuinely different streams (the concurrent-
isolation tests use this); the default replays the identical trace in all
clients, the usual load-testing setup.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Tracer

from repro.obs import profile as _profile
from repro.service import protocol
from repro.service.client import (
    AsyncServiceClient,
    ResilientAsyncClient,
    RetryPolicy,
    ServiceError,
)
from repro.service.metrics import percentiles_from_samples

#: Session-churn hook: ``callback(client_index, event)`` with event one of
#: ``"open"`` / ``"close"``.  The campaign driver counts these to assert
#: every opened session was closed (nothing lost to churn or chaos).
SessionEventHook = Callable[[int, str], None]


@dataclass
class ReplayReport:
    """Aggregate results of one replay run."""

    clients: int
    policy: str
    cache_size: int
    requests: int
    prefetches_recommended: int
    wall_seconds: float
    latency: Dict[str, float]
    outcomes: Dict[str, int]
    per_client_miss_rate: List[float] = field(default_factory=list)
    # resilience telemetry; all zero for a fault-free plain replay
    retries: int = 0
    resumes: int = 0
    cold_restarts: int = 0
    degraded_clients: int = 0
    # tenancy telemetry; sessions counts successful opens across all
    # clients, quota_rejected the OPENs the server refused with E_QUOTA
    sessions: int = 0
    quota_rejected: int = 0
    # overload telemetry; overload_rejections counts sessions the server
    # shed with E_OVERLOAD (tolerate_overload mode), overload_backoffs the
    # retry_after_s waits resilient clients honoured before admission
    overload_rejections: int = 0
    overload_backoffs: int = 0

    @property
    def advice_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.requests / self.wall_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients,
            "policy": self.policy,
            "cache_size": self.cache_size,
            "requests": self.requests,
            "prefetches_recommended": self.prefetches_recommended,
            "wall_seconds": round(self.wall_seconds, 3),
            "advice_per_second": round(self.advice_per_second, 1),
            "latency_p50_ms": self.latency["p50_ms"],
            "latency_p95_ms": self.latency["p95_ms"],
            "latency_p99_ms": self.latency["p99_ms"],
            "outcomes": dict(self.outcomes),
            "per_client_miss_rate": [
                round(rate, 2) for rate in self.per_client_miss_rate
            ],
            "retries": self.retries,
            "resumes": self.resumes,
            "cold_restarts": self.cold_restarts,
            "degraded_clients": self.degraded_clients,
            "sessions": self.sessions,
            "quota_rejected": self.quota_rejected,
            "overload_rejections": self.overload_rejections,
            "overload_backoffs": self.overload_backoffs,
        }


@dataclass
class _ClientResult:
    samples: List[float]
    outcomes: Dict[str, int]
    prefetches: int
    miss_rate: float
    retries: int = 0
    resumes: int = 0
    cold_restarts: int = 0
    degraded: bool = False
    sessions: int = 0
    quota_rejected: int = 0
    overload_rejections: int = 0
    overload_backoffs: int = 0


async def _replay_one(
    host: str,
    port: int,
    blocks: Sequence[int],
    *,
    policy: str,
    cache_size: int,
    params: Optional[Dict[str, float]],
    policy_kwargs: Optional[Dict[str, Any]],
    offset: int,
    retry: Optional[RetryPolicy] = None,
    tenant: Optional[str] = None,
    sessions: int = 1,
    tolerate_quota: bool = False,
    tolerate_overload: bool = False,
    client_index: int = 0,
    start_delay_s: float = 0.0,
    on_session_event: Optional[SessionEventHook] = None,
    tracer: Optional["Tracer"] = None,
) -> _ClientResult:
    result = _ClientResult(
        samples=[],
        outcomes={"demand_hit": 0, "prefetch_hit": 0, "miss": 0},
        prefetches=0,
        miss_rate=0.0,
    )
    if start_delay_s > 0.0:
        await asyncio.sleep(start_delay_s)

    def _event(event: str) -> None:
        if on_session_event is not None:
            on_session_event(client_index, event)

    def _session_trace(session_index: int) -> Optional[str]:
        """Client-minted trace id for one logical session (or None).

        The key is positional (client, session ordinal), so reruns of the
        same seeded replay mint the same ids and sample the same subset.
        """
        if tracer is None:
            return None
        candidate = tracer.new_trace_id(
            f"c{client_index}:s{session_index}"
        )
        return candidate if tracer.sampled(candidate) else None

    async def _one_session(session_index: int) -> None:
        trace_id = _session_trace(session_index)
        prof = _profile.ENABLED

        def _observed(started: float, advice: Any) -> None:
            elapsed = time.perf_counter() - started
            result.samples.append(elapsed)
            if trace_id is not None:
                tracer.record(
                    trace_id, "client.rpc", started, elapsed,
                    client=client_index,
                )
            if prof:
                _profile.add("client.observe", elapsed)
            result.outcomes[advice.outcome] += 1
            result.prefetches += len(advice.prefetch)

        if retry is not None:
            # Resilient path: the client journals every reference and
            # transparently reconnects/resumes across injected faults, so
            # the advice stream is identical to the fault-free run.
            async with ResilientAsyncClient(
                host, port, retry=retry
            ) as client:
                t_open = time.perf_counter()
                await client.open(
                    policy=policy, cache_size=cache_size, params=params,
                    policy_kwargs=policy_kwargs, tenant=tenant,
                    trace=trace_id,
                )
                open_dur = time.perf_counter() - t_open
                if (
                    tracer is not None
                    and trace_id is None
                    and client.trace is not None
                ):
                    # The gateway/worker head-sampled this session on its
                    # own; adopt its id so client spans join the trace.
                    trace_id = client.trace
                if trace_id is not None:
                    tracer.record(
                        trace_id, "client.open", t_open, open_dur,
                        client=client_index,
                    )
                if prof:
                    _profile.add("client.open", open_dur)
                _event("open")
                for block in blocks:
                    started = time.perf_counter()
                    advice = await client.observe(int(block) + offset)
                    _observed(started, advice)
                final = await client.close_session()
                _event("close")
                result.retries += client.retries
                result.resumes += client.resumes
                result.cold_restarts += client.cold_restarts
                result.overload_backoffs += client.overload_backoffs
                result.degraded = result.degraded or client.degraded
        else:
            async with await AsyncServiceClient.connect(
                host, port
            ) as client:
                t_open = time.perf_counter()
                reply = await client.open_session(
                    policy=policy, cache_size=cache_size, params=params,
                    policy_kwargs=policy_kwargs, tenant=tenant,
                    trace=trace_id,
                )
                session = reply.session
                open_dur = time.perf_counter() - t_open
                if (
                    tracer is not None
                    and trace_id is None
                    and reply.trace is not None
                ):
                    trace_id = reply.trace
                if trace_id is not None:
                    tracer.record(
                        trace_id, "client.open", t_open, open_dur,
                        client=client_index,
                    )
                if prof:
                    _profile.add("client.open", open_dur)
                _event("open")
                for block in blocks:
                    started = time.perf_counter()
                    advice = await client.observe(
                        session, int(block) + offset
                    )
                    _observed(started, advice)
                final = await client.close_session(session)
                _event("close")
        result.sessions += 1
        result.miss_rate = float(final.get("miss_rate", 0.0))

    for session_index in range(sessions):
        try:
            await _one_session(session_index)
        except ServiceError as exc:
            # Over-quota tenants are expected to be refused at OPEN; the
            # smoke harness replays past them and counts the rejections.
            if tolerate_quota and exc.code == protocol.E_QUOTA:
                result.quota_rejected += 1
                continue
            # Likewise for admission-watermark sheds under a deliberate
            # flood: a refused OPEN is a counted outcome, not a failure.
            if tolerate_overload and exc.code == protocol.E_OVERLOAD:
                result.overload_rejections += 1
                continue
            raise
    return result


async def replay_async(
    blocks: Sequence[int],
    *,
    host: str = "127.0.0.1",
    port: int = 7199,
    clients: int = 4,
    policy: str = "tree",
    cache_size: int = 1024,
    params: Optional[Dict[str, float]] = None,
    policy_kwargs: Optional[Dict[str, Any]] = None,
    disjoint: bool = False,
    retry: Optional[RetryPolicy] = None,
    tenant: Optional[str] = None,
    sessions_per_client: int = 1,
    tolerate_quota: bool = False,
    tolerate_overload: bool = False,
    client_blocks: Optional[Sequence[Sequence[int]]] = None,
    arrival_delays: Optional[Sequence[float]] = None,
    on_session_event: Optional[SessionEventHook] = None,
    tracer: Optional["Tracer"] = None,
) -> ReplayReport:
    """Replay ``blocks`` from ``clients`` concurrent sessions.

    With ``retry`` set, every client is a
    :class:`~repro.service.client.ResilientAsyncClient`, so the replay
    survives connection resets, timeouts, and server restarts (given a
    checkpoint directory) — the chaos-testing configuration.

    ``tenant`` opens every session under that tenant;
    ``sessions_per_client`` makes each client open/replay/close that many
    sessions back to back (session-churn load for the tenancy smoke);
    ``tolerate_quota`` turns server-side ``quota_exceeded`` rejections
    into a counted outcome instead of a failure.

    The campaign driver's hooks: ``client_blocks`` hands every client its
    own private stream (overriding ``blocks``; incompatible with
    ``disjoint``, which exists to synthesise exactly that from one
    stream), ``arrival_delays`` staggers client connects (seconds, one
    entry per client), and ``on_session_event`` observes open/close churn
    as it happens.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`, component
    ``"client"``) records ``client.open`` / ``client.rpc`` spans for the
    sessions its deterministic head-based sampling selects, and rides
    each sampled session's trace id on the OPEN so gateway and worker
    spans join the same trace.  The caller owns the tracer's lifecycle;
    the replay flushes it before returning.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients!r}")
    if sessions_per_client < 1:
        raise ValueError(
            f"sessions_per_client must be >= 1, got {sessions_per_client!r}"
        )
    if client_blocks is not None:
        if disjoint:
            raise ValueError(
                "client_blocks already gives each client a private stream; "
                "disjoint does not apply"
            )
        if len(client_blocks) != clients:
            raise ValueError(
                f"client_blocks must have one stream per client "
                f"({clients}), got {len(client_blocks)}"
            )
        if any(not stream for stream in client_blocks):
            raise ValueError("client_blocks contains an empty stream")
    elif not blocks:
        raise ValueError("cannot replay an empty trace")
    if arrival_delays is not None and len(arrival_delays) != clients:
        raise ValueError(
            f"arrival_delays must have one delay per client "
            f"({clients}), got {len(arrival_delays)}"
        )
    # Private id ranges per client when streams must not collide.
    span = (max(int(b) for b in blocks) + 1) if disjoint else 0
    started = time.perf_counter()
    results = await asyncio.gather(*(
        _replay_one(
            host, port,
            blocks if client_blocks is None else client_blocks[index],
            policy=policy, cache_size=cache_size, params=params,
            policy_kwargs=policy_kwargs,
            offset=index * span,
            retry=retry,
            tenant=tenant,
            sessions=sessions_per_client,
            tolerate_quota=tolerate_quota,
            tolerate_overload=tolerate_overload,
            client_index=index,
            start_delay_s=(
                0.0 if arrival_delays is None else float(arrival_delays[index])
            ),
            on_session_event=on_session_event,
            tracer=tracer,
        )
        for index in range(clients)
    ))
    wall = time.perf_counter() - started
    if tracer is not None:
        tracer.flush()

    samples: List[float] = []
    outcomes = {"demand_hit": 0, "prefetch_hit": 0, "miss": 0}
    prefetches = 0
    for result in results:
        samples.extend(result.samples)
        prefetches += result.prefetches
        for key, count in result.outcomes.items():
            outcomes[key] += count
    return ReplayReport(
        clients=clients,
        policy=policy,
        cache_size=cache_size,
        requests=len(samples),
        prefetches_recommended=prefetches,
        wall_seconds=wall,
        latency=percentiles_from_samples(samples),
        outcomes=outcomes,
        per_client_miss_rate=[result.miss_rate for result in results],
        retries=sum(result.retries for result in results),
        resumes=sum(result.resumes for result in results),
        cold_restarts=sum(result.cold_restarts for result in results),
        degraded_clients=sum(1 for result in results if result.degraded),
        sessions=sum(result.sessions for result in results),
        quota_rejected=sum(result.quota_rejected for result in results),
        overload_rejections=sum(
            result.overload_rejections for result in results
        ),
        overload_backoffs=sum(
            result.overload_backoffs for result in results
        ),
    )


def replay(blocks: Sequence[int], **kwargs: Any) -> ReplayReport:
    """Blocking wrapper around :func:`replay_async`."""
    return asyncio.run(replay_async(blocks, **kwargs))
