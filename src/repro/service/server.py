"""Asyncio TCP server multiplexing many concurrent advisory sessions.

One process serves many connections; each connection may open several
sessions (e.g. one per application being advised).  Sessions are isolated
— every OPEN builds a fresh policy, prefetch tree, and cost-benefit
estimator — and are torn down with the connection that opened them.

Flow control is cooperative: requests on one connection are processed in
order, every reply is ``drain()``-ed before the next request is read (so a
slow reader backpressures its own pipeline, not the whole server), and the
stream reader's line limit bounds per-connection buffering.  Session work
itself is synchronous pure-Python; the event loop interleaves connections
between requests, which is the right trade for a model-driven advisor
whose per-request work is microseconds.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> session)
    from repro.store.registry import ModelStore

from repro.params import PAPER_PARAMS, SystemParams
from repro.service import protocol
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    CloseReply,
    CloseRequest,
    ErrorReply,
    HelloReply,
    ObserveReply,
    ObserveRequest,
    OpenReply,
    OpenRequest,
    ProtocolError,
    Reply,
    Request,
    StatsReply,
    StatsRequest,
)
from repro.service.session import PrefetchSession, SessionError

#: SystemParams fields an OPEN request may override.
_PARAM_FIELDS = frozenset({"t_hit", "t_driver", "t_disk", "t_cpu", "block_size"})


@dataclass(frozen=True)
class ServiceLimits:
    """Hard ceilings protecting one server instance."""

    max_sessions: int = 1024
    """Live sessions across all connections."""
    max_sessions_per_connection: int = 64
    max_observations_per_session: Optional[int] = 10_000_000
    max_line_bytes: int = protocol.MAX_LINE_BYTES


class PrefetchService:
    """Session table + request dispatcher (transport-independent)."""

    def __init__(
        self,
        *,
        default_params: Optional[SystemParams] = None,
        limits: Optional[ServiceLimits] = None,
        metrics: Optional[ServiceMetrics] = None,
        store: Optional["ModelStore"] = None,
        default_model: Optional[str] = None,
    ) -> None:
        self.default_params = (
            default_params if default_params is not None else PAPER_PARAMS
        )
        self.limits = limits if limits is not None else ServiceLimits()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.store = store
        self.default_model = default_model
        self.sessions: Dict[str, PrefetchSession] = {}
        self._session_ids = itertools.count(1)

    # ----------------------------------------------------------- dispatch

    def handle(self, request: Request, owned: Set[str]) -> Reply:
        """Serve one decoded request; ``owned`` is the connection's sessions."""
        started = time.perf_counter()
        try:
            if isinstance(request, OpenRequest):
                reply = self._handle_open(request, owned)
            elif isinstance(request, ObserveRequest):
                reply = self._handle_observe(request)
            elif isinstance(request, StatsRequest):
                reply = self._handle_stats(request)
            elif isinstance(request, CloseRequest):
                reply = self._handle_close(request, owned)
            else:  # pragma: no cover - decode_request guards this
                reply = ErrorReply(request.id, protocol.E_BAD_REQUEST,
                                   f"unhandled command {request!r}")
        except SessionError as exc:
            reply = ErrorReply(request.id, protocol.E_SESSION_ERROR, str(exc))
        if isinstance(reply, ErrorReply):
            self.metrics.errors += 1
        self.metrics.record_latency(request.cmd, time.perf_counter() - started)
        return reply

    def _handle_open(self, request: OpenRequest, owned: Set[str]) -> Reply:
        limits = self.limits
        if len(self.sessions) >= limits.max_sessions:
            self.metrics.sessions_rejected += 1
            return ErrorReply(
                request.id, protocol.E_LIMIT,
                f"server session limit reached ({limits.max_sessions})",
            )
        if len(owned) >= limits.max_sessions_per_connection:
            self.metrics.sessions_rejected += 1
            return ErrorReply(
                request.id, protocol.E_LIMIT,
                "connection session limit reached "
                f"({limits.max_sessions_per_connection})",
            )
        try:
            params = self._resolve_params(request.params)
        except (TypeError, ValueError) as exc:
            self.metrics.sessions_rejected += 1
            return ErrorReply(request.id, protocol.E_BAD_REQUEST, str(exc))
        model_spec = (
            request.model if request.model is not None else self.default_model
        )
        try:
            if model_spec is not None:
                session = self._open_from_model(model_spec, request, params)
            else:
                session = PrefetchSession(
                    policy=request.policy,
                    cache_size=request.cache_size,
                    params=params,
                    policy_kwargs=request.policy_kwargs,
                    max_observations=limits.max_observations_per_session,
                )
        except SessionError as exc:
            self.metrics.sessions_rejected += 1
            return ErrorReply(request.id, protocol.E_SESSION_ERROR, str(exc))
        session_id = f"s{next(self._session_ids)}"
        self.sessions[session_id] = session
        owned.add(session_id)
        self.metrics.sessions_opened += 1
        return OpenReply(
            id=request.id,
            session=session_id,
            policy=session.policy_name,
            cache_size=session.cache_size,
        )

    def _open_from_model(
        self,
        model_spec: str,
        request: OpenRequest,
        params: SystemParams,
    ) -> PrefetchSession:
        """Build the session for an OPEN that names a stored model.

        A ``session``-kind snapshot resumes decision-identically and its
        recorded config (policy, cache size, params) wins over the request;
        a ``model``-kind snapshot warm-starts the requested policy's model
        while cache and cost state begin cold.
        """
        # Imported here, not at module top: repro.store serializes sessions,
        # so it imports repro.service and would cycle back into this module.
        from repro.store.codec import KIND_SESSION, SnapshotError
        from repro.store.session_state import restore_session

        if self.store is None:
            raise SessionError(
                f"cannot open from model {model_spec!r}: server has no "
                "model store (start serve with --store)"
            )
        try:
            snapshot = self.store.load(model_spec)
            if snapshot.kind == KIND_SESSION:
                return restore_session(
                    snapshot,
                    max_observations=self.limits.max_observations_per_session,
                )
        except SnapshotError as exc:
            raise SessionError(f"model {model_spec!r}: {exc}") from None
        return PrefetchSession(
            policy=request.policy,
            cache_size=request.cache_size,
            params=params,
            policy_kwargs=request.policy_kwargs,
            max_observations=self.limits.max_observations_per_session,
            warm_start=snapshot,
        )

    def _handle_observe(self, request: ObserveRequest) -> Reply:
        session = self.sessions.get(request.session)
        if session is None:
            return ErrorReply(request.id, protocol.E_UNKNOWN_SESSION,
                              f"unknown session {request.session!r}")
        advice = session.observe(request.block)
        self.metrics.record_advice(advice.outcome, len(advice.prefetch))
        return ObserveReply(id=request.id, session=request.session,
                            advice=advice)

    def _handle_stats(self, request: StatsRequest) -> Reply:
        session = self.sessions.get(request.session)
        if session is None:
            return ErrorReply(request.id, protocol.E_UNKNOWN_SESSION,
                              f"unknown session {request.session!r}")
        return StatsReply(id=request.id, session=request.session,
                          stats=session.stats_snapshot())

    def _handle_close(self, request: CloseRequest, owned: Set[str]) -> Reply:
        session = self.sessions.pop(request.session, None)
        if session is None:
            return ErrorReply(request.id, protocol.E_UNKNOWN_SESSION,
                              f"unknown session {request.session!r}")
        owned.discard(request.session)
        stats = session.close()
        self.metrics.sessions_closed += 1
        return CloseReply(id=request.id, session=request.session, stats=stats)

    def _resolve_params(
        self, overrides: Optional[Dict[str, float]]
    ) -> SystemParams:
        if not overrides:
            return self.default_params
        unknown = set(overrides) - _PARAM_FIELDS
        if unknown:
            raise ValueError(
                f"unknown system parameter(s): {', '.join(sorted(unknown))}"
            )
        cleaned = {
            key: (int(value) if key == "block_size" else float(value))
            for key, value in overrides.items()
        }
        return replace(self.default_params, **cleaned)

    # --------------------------------------------------------- checkpoints

    def checkpoint_sessions(self, directory: str) -> int:
        """Write every live session to ``directory/<id>.snap``; returns count.

        Each file is a full ``session``-kind snapshot (atomic write-then-
        rename), so a crashed server can be resumed decision-identically
        with ``OPEN model=...`` after importing the checkpoint into a store.
        """
        from repro.store.codec import SnapshotError, write_snapshot
        from repro.store.session_state import snapshot_session

        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        written = 0
        for session_id, session in list(self.sessions.items()):
            try:
                snapshot = snapshot_session(
                    session,
                    provenance={
                        "session": session_id,
                        "period": session.observations,
                    },
                )
            except SnapshotError:
                continue  # closed under us between list() and here
            write_snapshot(
                snapshot, os.path.join(directory, f"{session_id}.snap")
            )
            written += 1
        self.metrics.checkpoints_written += written
        return written

    def drop_connection_sessions(self, owned: Set[str]) -> None:
        """Tear down sessions whose connection vanished without CLOSE."""
        for session_id in owned:
            session = self.sessions.pop(session_id, None)
            if session is not None:
                session.close()
                self.metrics.sessions_closed += 1
        owned.clear()

    # --------------------------------------------------------- connection

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.connections_opened += 1
        owned: Set[str] = set()
        try:
            writer.write(protocol.encode_reply(
                HelloReply(id=0, max_sessions=self.limits.max_sessions)
            ))
            await writer.drain()
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode_reply(ErrorReply(
                        0, protocol.E_BAD_REQUEST, "request line too long",
                    )))
                    await writer.drain()
                    self.metrics.errors += 1
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    request = protocol.decode_request(stripped)
                except ProtocolError as exc:
                    self.metrics.errors += 1
                    writer.write(protocol.encode_reply(
                        ErrorReply(0, exc.code, str(exc))
                    ))
                    await writer.drain()
                    continue
                writer.write(protocol.encode_reply(
                    self.handle(request, owned)
                ))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.drop_connection_sessions(owned)
            self.metrics.connections_closed += 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Bind and start serving; returns the listening asyncio server."""
        return await asyncio.start_server(
            self.handle_connection, host, port,
            limit=self.limits.max_line_bytes,
        )


def bound_port(server: asyncio.AbstractServer) -> int:
    """The actual port of a (possibly port-0) listening server."""
    return server.sockets[0].getsockname()[1]


async def serve_forever(
    host: str = "127.0.0.1",
    port: int = 7199,
    *,
    service: Optional[PrefetchService] = None,
    ready_message: bool = True,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_s: Optional[float] = None,
) -> None:
    """Run a service until cancelled (the ``python -m repro serve`` core).

    With both ``checkpoint_dir`` and ``checkpoint_every_s`` set, a
    background task periodically snapshots every live session to disk.
    """
    service = service if service is not None else PrefetchService()
    server = await service.start(host, port)
    if ready_message:
        print(f"repro.service listening on {host}:{bound_port(server)} "
              f"(protocol v{protocol.PROTOCOL_VERSION})", flush=True)

    async def _checkpoint_loop() -> None:
        while True:
            await asyncio.sleep(checkpoint_every_s)
            try:
                count = service.checkpoint_sessions(checkpoint_dir)
            except OSError as exc:
                print(f"checkpoint to {checkpoint_dir} failed: {exc}",
                      flush=True)
                continue
            if ready_message and count:
                print(f"checkpointed {count} session(s) to {checkpoint_dir}",
                      flush=True)

    checkpointer: Optional[asyncio.Task] = None
    if checkpoint_dir is not None and checkpoint_every_s is not None:
        checkpointer = asyncio.ensure_future(_checkpoint_loop())
    try:
        async with server:
            await server.serve_forever()
    finally:
        if checkpointer is not None:
            checkpointer.cancel()


class BackgroundServer:
    """A live server on a daemon thread — for tests, benchmarks, examples.

    ::

        with BackgroundServer() as server:
            client = ServiceClient.connect(port=server.port)
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[PrefetchService] = None,
    ) -> None:
        self.host = host
        self.service = service if service is not None else PrefetchService()
        self._requested_port = port
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise RuntimeError("server failed to start within 10 s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            server = loop.run_until_complete(
                self.service.start(self.host, self._requested_port)
            )
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self.port = bound_port(server)
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.service.metrics.as_dict()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
