"""Asyncio TCP server multiplexing many concurrent advisory sessions.

One process serves many connections; each connection may open several
sessions (e.g. one per application being advised).  Sessions are isolated
— every OPEN builds a fresh policy, prefetch tree, and cost-benefit
estimator — and are torn down with the connection that opened them.

Flow control is cooperative: requests on one connection are processed in
order, every reply is ``drain()``-ed before the next request is read (so a
slow reader backpressures its own pipeline, not the whole server), and the
stream reader's line limit bounds per-connection buffering.  Session work
itself is synchronous pure-Python; the event loop interleaves connections
between requests, which is the right trade for a model-driven advisor
whose per-request work is microseconds.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import signal
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> session)
    from repro.obs.trace import Tracer
    from repro.store.codec import Snapshot
    from repro.store.registry import ModelStore
    from repro.tenancy.manager import TenancyManager

from repro.params import PAPER_PARAMS, SystemParams
from repro.service import protocol
from repro.service.metrics import ServiceMetrics
from repro.service.overload import (
    AdmissionGuard,
    LoopLagWatchdog,
    OverloadPolicy,
    TIER_NAMES,
)
from repro.service.protocol import (
    CloseReply,
    CloseRequest,
    ErrorReply,
    HelloReply,
    ObserveReply,
    ObserveRequest,
    OpenReply,
    OpenRequest,
    ProtocolError,
    Reply,
    Request,
    StatsReply,
    StatsRequest,
)
from repro.service.session import (
    ModelRestoreError,
    PrefetchSession,
    SessionError,
)

#: SystemParams fields an OPEN request may override.
_PARAM_FIELDS = frozenset({"t_hit", "t_driver", "t_disk", "t_cpu", "block_size"})


@dataclass(frozen=True)
class ServiceLimits:
    """Hard ceilings protecting one server instance."""

    max_sessions: int = 1024
    """Live sessions across all connections."""
    max_sessions_per_connection: int = 64
    max_observations_per_session: Optional[int] = 10_000_000
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    idle_timeout_s: Optional[float] = 300.0
    """Close a connection that sends nothing for this long (None = never),
    so a stalled client cannot wedge its server-side handler forever."""
    request_timeout_s: Optional[float] = 60.0
    """Bound on draining one reply to a slow reader (None = forever)."""
    max_detached_sessions: int = 64
    """Snapshots kept in memory for sessions whose connection vanished
    without CLOSE, resumable via OPEN ``resume=<id>`` (LRU-evicted)."""


#: How many OBSERVEs between memory-budget sweeps.  Accounting is O(live
#: sessions), so amortise it instead of paying it per request.
_BUDGET_CHECK_INTERVAL = 64


class PrefetchService:
    """Session table + request dispatcher (transport-independent)."""

    def __init__(
        self,
        *,
        default_params: Optional[SystemParams] = None,
        limits: Optional[ServiceLimits] = None,
        metrics: Optional[ServiceMetrics] = None,
        store: Optional["ModelStore"] = None,
        default_model: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        identity: Optional[str] = None,
        tenancy: Optional["TenancyManager"] = None,
        memory_budget_bytes: Optional[int] = None,
        overload: Optional[OverloadPolicy] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.default_params = (
            default_params if default_params is not None else PAPER_PARAMS
        )
        self.limits = limits if limits is not None else ServiceLimits()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.store = store
        self.default_model = default_model
        self.checkpoint_dir = checkpoint_dir
        self.identity = identity
        """Worker name in a fleet (e.g. ``w2``): reported by server-level
        STATS and prefixed onto generated session ids so checkpoints from
        different workers sharing one ``--checkpoint-dir`` cannot collide."""
        self.tenancy = tenancy
        """Tenant manager binding sessions to shared base models; None on
        single-tenant servers (see :mod:`repro.tenancy`)."""
        self.memory_budget_bytes = memory_budget_bytes
        """Per-worker ceiling on accounted model bytes (shared bases plus
        per-session private state, at the paper's bytes-per-node rate).
        When exceeded, least-recently-observed sessions are evicted to the
        checkpoint directory and transparently resurrected on their next
        request.  Requires ``checkpoint_dir``; ``None`` disables eviction."""
        #: Ordered least-recently-observed first: OBSERVE moves its session
        #: to the end, so budget eviction pops from the front.
        self.overload = AdmissionGuard(overload)
        """Admission watermark + brownout state (see
        :mod:`repro.service.overload`).  The default policy has no
        watermark and no brownout, so overload protection is opt-in."""
        self.tracer = tracer
        """Span recorder (:class:`repro.obs.trace.Tracer`); ``None`` runs
        the whole dispatch path with a single falsy check per request.
        Sessions opened with a ``trace`` field inherit that id (the
        gateway/client already made the sampling call); locally-opened
        sessions are head-sampled against the tracer's own seed."""
        self.started_at = time.monotonic()
        #: Trace id per traced live session (a sparse subset of
        #: ``self.sessions`` under sampling).
        self._traces: Dict[str, str] = {}
        self.sessions: "OrderedDict[str, PrefetchSession]" = OrderedDict()
        self.detached: "OrderedDict[str, Snapshot]" = OrderedDict()
        #: Sessions evicted to disk under memory pressure: id -> tenant (or
        #: None), consulted for transparent resurrection.
        self.evicted: Dict[str, Optional[str]] = {}
        self._session_ids = itertools.count(1)
        self._observes_since_budget_check = 0
        self._writers: Set[asyncio.StreamWriter] = set()

    # ----------------------------------------------------------- dispatch

    def handle(self, request: Request, owned: Set[str]) -> Reply:
        """Serve one decoded request; ``owned`` is the connection's sessions."""
        started = time.perf_counter()
        try:
            if isinstance(request, OpenRequest):
                reply = self._handle_open(request, owned)
            elif isinstance(request, ObserveRequest):
                reply = self._handle_observe(request)
            elif isinstance(request, StatsRequest):
                reply = self._handle_stats(request)
            elif isinstance(request, CloseRequest):
                reply = self._handle_close(request, owned)
            else:  # pragma: no cover - decode_request guards this
                reply = ErrorReply(request.id, protocol.E_BAD_REQUEST,
                                   f"unhandled command {request!r}")
        except SessionError as exc:
            reply = ErrorReply(request.id, protocol.E_SESSION_ERROR, str(exc))
        if isinstance(reply, ErrorReply):
            self.metrics.errors += 1
        if not self.overload.drop_logs:
            # Brownout tier >= 2 sheds per-command accounting: the advice
            # stream keeps flowing, the histograms go quiet.
            self.metrics.record_latency(
                request.cmd, time.perf_counter() - started
            )
        return reply

    def shed_reply(self, request: Request) -> Optional[ErrorReply]:
        """The load-shedding decision for one decoded request.

        Only *new* OPENs are sheddable — resumes recover work the server
        already accepted, and OBSERVE/STATS/CLOSE act on admitted
        sessions.  Returns the ``E_OVERLOAD`` reply to send (with the
        policy's ``retry_after_s`` hint) or ``None`` to admit.  Shed
        replies bypass :meth:`handle`, so they count as
        ``overload_rejections``, not ``errors``: backoff, not fault.
        """
        if not isinstance(request, OpenRequest) or request.resume is not None:
            return None
        if not self.overload.shed_open():
            return None
        self.metrics.overload_rejections += 1
        retry_after = self.overload.policy.shed_retry_after_s
        return ErrorReply(
            request.id, protocol.E_OVERLOAD,
            f"server overloaded; retry in {retry_after:g}s",
            retry_after_s=retry_after,
        )

    def _handle_open(self, request: OpenRequest, owned: Set[str]) -> Reply:
        limits = self.limits
        if len(self.sessions) >= limits.max_sessions:
            self.metrics.sessions_rejected += 1
            return ErrorReply(
                request.id, protocol.E_LIMIT,
                f"server session limit reached ({limits.max_sessions})",
            )
        if len(owned) >= limits.max_sessions_per_connection:
            self.metrics.sessions_rejected += 1
            return ErrorReply(
                request.id, protocol.E_LIMIT,
                "connection session limit reached "
                f"({limits.max_sessions_per_connection})",
            )
        if request.session_id is not None:
            if not protocol.is_safe_id(request.session_id):
                self.metrics.sessions_rejected += 1
                return ErrorReply(
                    request.id, protocol.E_BAD_REQUEST,
                    f"unusable session_id {request.session_id!r}",
                )
            if request.session_id in self.sessions:
                self.metrics.sessions_rejected += 1
                return ErrorReply(
                    request.id, protocol.E_SESSION_ERROR,
                    f"session {request.session_id!r} already exists",
                )
        tenant_spec = None
        if request.tenant is not None:
            if self.tenancy is None:
                self.metrics.sessions_rejected += 1
                return ErrorReply(
                    request.id, protocol.E_BAD_REQUEST,
                    "server has no tenant config "
                    "(start serve with --tenant-config)",
                )
            if request.model is not None:
                self.metrics.sessions_rejected += 1
                return ErrorReply(
                    request.id, protocol.E_BAD_REQUEST,
                    "'tenant' and 'model' are mutually exclusive "
                    "(the tenant names its base model)",
                )
            from repro.tenancy.manager import (
                TenantQuotaError,
                UnknownTenantError,
            )

            try:
                tenant_spec = self.tenancy.admit(request.tenant)
            except UnknownTenantError as exc:
                self.metrics.sessions_rejected += 1
                return ErrorReply(request.id, protocol.E_BAD_REQUEST, str(exc))
            except TenantQuotaError as exc:
                self.metrics.sessions_rejected += 1
                self.metrics.tenants_rejected += 1
                self.metrics.record_tenant(request.tenant, "sessions_rejected")
                return ErrorReply(
                    request.id, protocol.E_QUOTA, str(exc),
                    retry_after_s=exc.retry_after_s,
                )
        if request.resume is not None:
            return self._handle_resume(request, owned)
        try:
            params = self._resolve_params(request.params)
        except (TypeError, ValueError) as exc:
            self.metrics.sessions_rejected += 1
            return ErrorReply(request.id, protocol.E_BAD_REQUEST, str(exc))
        model_spec = (
            request.model if request.model is not None else self.default_model
        )
        try:
            if tenant_spec is not None:
                session = self._open_for_tenant(request, tenant_spec, params)
            elif model_spec is not None:
                session = self._open_from_model(model_spec, request, params)
            else:
                session = PrefetchSession(
                    policy=request.policy,
                    cache_size=request.cache_size,
                    params=params,
                    policy_kwargs=request.policy_kwargs,
                    max_observations=limits.max_observations_per_session,
                )
        except ModelRestoreError as exc:
            # Degraded mode: a broken stored model must not kill serving.
            # The session runs, but with no-prefetch advice and a flag the
            # client (and the metrics) can see.
            try:
                session = PrefetchSession(
                    policy="no-prefetch",
                    cache_size=request.cache_size,
                    params=params,
                    max_observations=limits.max_observations_per_session,
                )
            except SessionError:
                self.metrics.sessions_rejected += 1
                return ErrorReply(
                    request.id, protocol.E_SESSION_ERROR, str(exc)
                )
            session.degraded = True
            self.metrics.degraded_sessions += 1
        except SessionError as exc:
            self.metrics.sessions_rejected += 1
            return ErrorReply(request.id, protocol.E_SESSION_ERROR, str(exc))
        return self._install_session(
            request, session, owned,
            tenant=request.tenant if tenant_spec is not None else None,
        )

    def _install_session(
        self,
        request: OpenRequest,
        session: PrefetchSession,
        owned: Set[str],
        *,
        resumed: bool = False,
        tenant: Optional[str] = None,
    ) -> OpenReply:
        if request.session_id is not None:
            session_id = request.session_id
        else:
            prefix = f"{self.identity}-" if self.identity else ""
            session_id = f"{prefix}s{next(self._session_ids)}"
        self.sessions[session_id] = session
        owned.add(session_id)
        self.evicted.pop(session_id, None)
        if tenant is not None and self.tenancy is not None:
            self.tenancy.bind(session_id, tenant)
            self.metrics.record_tenant(tenant, "sessions_opened")
        self.metrics.sessions_opened += 1
        self.enforce_memory_budget(keep=session_id)
        trace_id = self._bind_trace(session_id, request, resumed=resumed)
        return OpenReply(
            id=request.id,
            session=session_id,
            policy=session.policy_name,
            cache_size=session.cache_size,
            period=session.observations,
            resumed=resumed,
            degraded=session.degraded,
            trace=trace_id,
        )

    def _bind_trace(
        self, session_id: str, request: OpenRequest, *, resumed: bool
    ) -> Optional[str]:
        """Bind the session to a trace id (and span its open), or None.

        A ``trace`` field on the request wins — the gateway or client
        upstream already made the sampling decision and every hop must
        agree.  Locally-opened sessions are head-sampled against this
        server's own tracer seed.
        """
        tracer = self.tracer
        if tracer is None:
            return None
        trace_id = request.trace
        if trace_id is None:
            trace_id = tracer.new_trace_id(session_id)
            if not tracer.sampled(trace_id):
                return None
        self._traces[session_id] = trace_id
        now = time.perf_counter()
        tracer.record(
            trace_id, "worker.open", now, 0.0,
            session=session_id, resumed=int(resumed),
        )
        return trace_id

    def _handle_resume(self, request: OpenRequest, owned: Set[str]) -> Reply:
        """Re-open a detached or checkpointed session decision-identically.

        Lookup order: the in-memory detached table (sessions whose
        connection vanished without CLOSE), then
        ``<checkpoint_dir>/<id>.snap`` (periodic checkpoints surviving a
        server restart).  The reply's ``period`` tells the client which
        observation the restored state is at, so it can replay the tail of
        its journal before continuing.
        """
        from repro.store.codec import SnapshotError, read_snapshot

        resume_id = request.resume
        if not protocol.is_safe_id(resume_id):
            # The id becomes a checkpoint-dir path component below; reject
            # anything that could traverse out of the directory.
            return ErrorReply(
                request.id, protocol.E_BAD_REQUEST,
                f"unusable resume id {resume_id!r}",
            )
        snapshot = self.detached.pop(resume_id, None)
        if snapshot is None and self.checkpoint_dir is not None:
            path = os.path.join(self.checkpoint_dir, f"{resume_id}.snap")
            if os.path.exists(path):
                try:
                    snapshot = read_snapshot(path)
                except SnapshotError as exc:
                    return ErrorReply(
                        request.id, protocol.E_SESSION_ERROR,
                        f"checkpoint for {resume_id!r} is unreadable: {exc}",
                    )
        if snapshot is None:
            return ErrorReply(
                request.id, protocol.E_UNKNOWN_SESSION,
                f"no detached session or checkpoint for {resume_id!r}",
            )
        from repro.store.session_state import restore_session

        try:
            session = restore_session(
                snapshot,
                max_observations=self.limits.max_observations_per_session,
                model_factory=(
                    self.tenancy.model_factory
                    if self.tenancy is not None else None
                ),
            )
        except SnapshotError as exc:
            return ErrorReply(
                request.id, protocol.E_SESSION_ERROR,
                f"cannot restore {resume_id!r}: {exc}",
            )
        # A budget-evicted session keeps its tenant binding across the
        # gap; the resume supersedes the eviction record even when the
        # new session gets a fresh id.
        tenant = request.tenant or self.evicted.pop(resume_id, None)
        self.metrics.sessions_resumed += 1
        return self._install_session(
            request, session, owned, resumed=True, tenant=tenant
        )

    def _open_from_model(
        self,
        model_spec: str,
        request: OpenRequest,
        params: SystemParams,
    ) -> PrefetchSession:
        """Build the session for an OPEN that names a stored model.

        A ``session``-kind snapshot resumes decision-identically and its
        recorded config (policy, cache size, params) wins over the request;
        a ``model``-kind snapshot warm-starts the requested policy's model
        while cache and cost state begin cold.
        """
        # Imported here, not at module top: repro.store serializes sessions,
        # so it imports repro.service and would cycle back into this module.
        from repro.store.codec import KIND_SESSION, SnapshotError
        from repro.store.session_state import restore_session

        if self.store is None:
            raise SessionError(
                f"cannot open from model {model_spec!r}: server has no "
                "model store (start serve with --store)"
            )
        try:
            snapshot = self.store.load(model_spec)
        except SnapshotError as exc:
            # A model that does not exist is a client mistake -> reject.
            raise SessionError(f"model {model_spec!r}: {exc}") from None
        if snapshot.kind == KIND_SESSION:
            try:
                return restore_session(
                    snapshot,
                    max_observations=self.limits.max_observations_per_session,
                )
            except SnapshotError as exc:
                # The model exists but its bytes are bad -> degrade.
                raise ModelRestoreError(
                    f"model {model_spec!r}: {exc}"
                ) from None
        return PrefetchSession(
            policy=request.policy,
            cache_size=request.cache_size,
            params=params,
            policy_kwargs=request.policy_kwargs,
            max_observations=self.limits.max_observations_per_session,
            warm_start=snapshot,
        )

    def _open_for_tenant(
        self,
        request: OpenRequest,
        spec: Any,
        params: SystemParams,
    ) -> PrefetchSession:
        """Build a tenant session sharing (copy-on-write) the tenant base.

        The session is constructed cold on the effective policy, then its
        model is swapped for a fresh overlay over the shared base — or a
        private warm copy when the base cannot be shared.  A corrupt base
        degrades the session (like a corrupt named model); a config-level
        mismatch (non-tree base, no store) rejects the OPEN.
        """
        from repro.store.codec import SnapshotError
        from repro.store.registry import ModelStoreError
        from repro.tenancy.config import TenancyConfigError

        policy_name = request.policy
        if spec.policy is not None and policy_name == "tree":
            # The protocol default; the tenant's configured policy wins.
            policy_name = spec.policy
        session = PrefetchSession(
            policy=policy_name,
            cache_size=request.cache_size,
            params=params,
            policy_kwargs=request.policy_kwargs,
            max_observations=self.limits.max_observations_per_session,
        )
        try:
            model = self.tenancy.make_model(spec.name)
        except (TenancyConfigError, ModelStoreError) as exc:
            raise SessionError(f"tenant {spec.name!r}: {exc}") from None
        except SnapshotError as exc:
            raise ModelRestoreError(f"tenant {spec.name!r}: {exc}") from None
        try:
            session.simulator.policy.replace_model(model)
        except (NotImplementedError, TypeError) as exc:
            raise SessionError(
                f"tenant {spec.name!r} requires a tree-backed policy; "
                f"{exc}"
            ) from None
        return session

    # ------------------------------------------------------ memory budget

    def _session_model_bytes(self, session: PrefetchSession) -> int:
        """One session's *private* model bytes at the paper's per-node rate.

        Overlay models are charged only their copy-on-write delta; the
        shared base is charged once per tenant in
        :meth:`accounted_model_bytes`.
        """
        from repro.core.tree import PAPER_NODE_BYTES

        model = session.simulator.policy.model()
        if model is None:
            return 0
        items = (
            model.delta_items() if hasattr(model, "delta_items")
            else model.memory_items()
        )
        return items * PAPER_NODE_BYTES

    def accounted_model_bytes(self) -> int:
        """Total model bytes this worker is charged for right now."""
        total = (
            self.tenancy.base_bytes_total() if self.tenancy is not None else 0
        )
        for session in self.sessions.values():
            total += self._session_model_bytes(session)
        return total

    def enforce_memory_budget(self, *, keep: Optional[str] = None) -> int:
        """Evict least-recently-observed sessions until under budget.

        Returns the number of sessions evicted.  A no-op without a budget
        or a checkpoint directory (there is nowhere to evict to).  ``keep``
        shields the session that triggered the sweep.
        """
        budget = self.memory_budget_bytes
        if budget is None or self.checkpoint_dir is None:
            return 0
        total = self.accounted_model_bytes()
        evictions = 0
        while total > budget:
            # Least-recently-observed first, but skip sessions whose
            # private delta is empty: evicting them frees nothing and
            # costs a checkpoint write each.
            victim = None
            freed = 0
            for sid in self.sessions:
                if sid == keep:
                    continue
                freed = self._session_model_bytes(self.sessions[sid])
                if freed > 0:
                    victim = sid
                    break
            if victim is None:
                break
            if not self._evict_one(victim):
                break
            evictions += 1
            total -= freed
        return evictions

    def _evict_one(self, session_id: str) -> bool:
        """Checkpoint one live session to disk and drop it *without* close.

        The session stays logically open: its id is remembered in
        ``self.evicted`` and the next request touching it resurrects it
        from the checkpoint transparently (see :meth:`_live_session`).
        """
        from repro.store.codec import SnapshotError, write_snapshot
        from repro.store.session_state import snapshot_session

        session = self.sessions[session_id]
        try:
            snapshot = snapshot_session(
                session,
                provenance={
                    "session": session_id,
                    "period": session.observations,
                    "evicted": True,
                },
            )
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            write_snapshot(
                snapshot,
                os.path.join(self.checkpoint_dir, f"{session_id}.snap"),
            )
        except (OSError, SnapshotError):
            return False
        tenant = (
            self.tenancy.tenant_of(session_id)
            if self.tenancy is not None else None
        )
        if self.tenancy is not None:
            self.tenancy.unbind(session_id)
        self.sessions.pop(session_id, None)
        self.evicted[session_id] = tenant
        self.metrics.sessions_evicted += 1
        if tenant is not None:
            self.metrics.record_tenant(tenant, "sessions_evicted")
        return True

    def _live_session(self, session_id: str) -> Optional[PrefetchSession]:
        """The live session, resurrecting it from disk if budget-evicted."""
        session = self.sessions.get(session_id)
        if session is not None:
            return session
        if session_id not in self.evicted or self.checkpoint_dir is None:
            return None
        from repro.store.codec import SnapshotError, read_snapshot
        from repro.store.session_state import restore_session

        path = os.path.join(self.checkpoint_dir, f"{session_id}.snap")
        try:
            snapshot = read_snapshot(path)
            session = restore_session(
                snapshot,
                max_observations=self.limits.max_observations_per_session,
                model_factory=(
                    self.tenancy.model_factory
                    if self.tenancy is not None else None
                ),
            )
        except (OSError, SnapshotError):
            # Leave the eviction record: the fault may be transient, and
            # the client can still OPEN resume=<id> explicitly.
            return None
        tenant = self.evicted.pop(session_id)
        self.sessions[session_id] = session
        if tenant is not None and self.tenancy is not None:
            self.tenancy.bind(session_id, tenant)
            self.metrics.record_tenant(tenant, "sessions_resurrected")
        self.metrics.sessions_resurrected += 1
        return session

    def _handle_observe(self, request: ObserveRequest) -> Reply:
        session = self._live_session(request.session)
        if session is None:
            return ErrorReply(request.id, protocol.E_UNKNOWN_SESSION,
                              f"unknown session {request.session!r}")
        if request.seq is not None:
            # Exactly-once folding under retries: ``seq`` is the 0-based
            # observation index the client believes it is sending.  A
            # duplicate of the last folded reference (a reply lost in a
            # connection reset) gets the cached advice back without
            # advancing the session; any other gap is unrecoverable here
            # and the client must cold-restart from its journal.
            expected = session.observations
            last = session.last_advice
            if (
                request.seq == expected - 1
                and last is not None
                and last.block == request.block
            ):
                self.metrics.duplicates_served += 1
                return ObserveReply(id=request.id, session=request.session,
                                    advice=last)
            if request.seq != expected:
                return ErrorReply(
                    request.id, protocol.E_SEQ,
                    f"seq {request.seq} does not match session period "
                    f"{expected}",
                )
        trace_id = self._traces.get(request.session) if self.tracer else None
        if trace_id is not None:
            t0 = time.perf_counter()
            advice = session.observe(request.block)
            self.tracer.record(
                trace_id, "worker.predictor_step",
                t0, time.perf_counter() - t0,
                session=request.session, period=advice.period,
            )
        else:
            advice = session.observe(request.block)
        cap = self.overload.prefetch_cap
        if cap is not None and len(advice.prefetch) > cap:
            # Brownout tier >= 1: serve the head of the batch (the
            # cost-benefit rule orders it most-valuable-first), shedding
            # the speculative tail.  The session's own modelled state is
            # untouched — only the reported batch shrinks.
            advice = replace(advice, prefetch=advice.prefetch[:cap])
        self.metrics.record_advice(advice.outcome, len(advice.prefetch))
        self.sessions.move_to_end(request.session)
        self._observes_since_budget_check += 1
        if self._observes_since_budget_check >= _BUDGET_CHECK_INTERVAL:
            self._observes_since_budget_check = 0
            self.enforce_memory_budget(keep=request.session)
        return ObserveReply(id=request.id, session=request.session,
                            advice=advice)

    def _handle_stats(self, request: StatsRequest) -> Reply:
        if request.session is None:
            # Server-level snapshot: identity + full metrics state.  This
            # doubles as a supervisor liveness probe and as the feed a
            # fleet gateway merges into fleet totals (``metrics_state`` is
            # the lossless form; ``metrics`` the human summary).
            if request.format is not None and request.format != "prometheus":
                return ErrorReply(
                    request.id, protocol.E_BAD_REQUEST,
                    f"unknown stats format {request.format!r} "
                    "(only 'prometheus' is defined)",
                )
            stats: Dict[str, Any] = {
                "server": "repro.service",
                "worker": self.identity,
                "protocol": protocol.PROTOCOL_VERSION,
                "proto_version": protocol.PROTOCOL_VERSION,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "pid": os.getpid(),
                "live_sessions": self.metrics.live_sessions,
                "model_bytes": self.accounted_model_bytes(),
                "memory_budget_bytes": self.memory_budget_bytes,
                "evicted_sessions": len(self.evicted),
                "brownout_level": self.overload.level,
                "inflight": self.overload.inflight,
                "metrics": self.metrics.as_dict(),
                "metrics_state": self.metrics.to_state(),
            }
            if self.tenancy is not None:
                stats["tenants"] = self.tenancy.gauges(self.sessions)
            if request.format == "prometheus":
                stats["exposition"] = self._render_exposition(stats)
            return StatsReply(id=request.id, session="", stats=stats)
        if request.format is not None:
            return ErrorReply(
                request.id, protocol.E_BAD_REQUEST,
                "stats 'format' applies only to server-level snapshots",
            )
        session = self._live_session(request.session)
        if session is None:
            return ErrorReply(request.id, protocol.E_UNKNOWN_SESSION,
                              f"unknown session {request.session!r}")
        return StatsReply(id=request.id, session=request.session,
                          stats=session.stats_snapshot())

    def _render_exposition(self, stats: Dict[str, Any]) -> str:
        """Prometheus text format over this server's own metrics state."""
        from repro.obs.prom import render_exposition

        gauges = [
            ("brownout_level", None, stats["brownout_level"]),
            ("inflight", None, stats["inflight"]),
            ("live_sessions", None, stats["live_sessions"]),
            ("model_bytes", None, stats["model_bytes"]),
            ("evicted_sessions", None, stats["evicted_sessions"]),
            ("uptime_s", None, stats["uptime_s"]),
        ]
        if stats["memory_budget_bytes"] is not None:
            gauges.append(
                ("memory_budget_bytes", None, stats["memory_budget_bytes"])
            )
        for tenant, tenant_gauges in sorted(stats.get("tenants", {}).items()):
            gauges.append(
                ("tenant_sessions", {"tenant": tenant},
                 tenant_gauges.get("sessions", 0))
            )
            gauges.append(
                ("tenant_model_bytes", {"tenant": tenant},
                 tenant_gauges.get("model_bytes", 0))
            )
        return render_exposition(stats["metrics_state"], gauges=gauges)

    def _handle_close(self, request: CloseRequest, owned: Set[str]) -> Reply:
        session = self._live_session(request.session)
        if session is None:
            return ErrorReply(request.id, protocol.E_UNKNOWN_SESSION,
                              f"unknown session {request.session!r}")
        self.sessions.pop(request.session, None)
        owned.discard(request.session)
        self._traces.pop(request.session, None)
        if self.tenancy is not None:
            tenant = self.tenancy.tenant_of(request.session)
            if tenant is not None:
                self.metrics.record_tenant(tenant, "sessions_closed")
            self.tenancy.unbind(request.session)
        stats = session.close()
        self.metrics.sessions_closed += 1
        self._delete_checkpoint(request.session)
        return CloseReply(id=request.id, session=request.session, stats=stats)

    def _delete_checkpoint(self, session_id: str) -> None:
        """GC ``<checkpoint-dir>/<id>.snap`` after a clean CLOSE.

        A closed session can never be resumed, so its checkpoint is dead
        weight; without this, long-running servers accumulate one orphan
        file per session forever.  Detached/evicted sessions keep their
        snapshots — those are still resumable.
        """
        if self.checkpoint_dir is None:
            return
        try:
            os.unlink(os.path.join(self.checkpoint_dir, f"{session_id}.snap"))
        except OSError:
            return  # never checkpointed (common) or already gone
        self.metrics.checkpoints_deleted += 1

    def _resolve_params(
        self, overrides: Optional[Dict[str, float]]
    ) -> SystemParams:
        if not overrides:
            return self.default_params
        unknown = set(overrides) - _PARAM_FIELDS
        if unknown:
            raise ValueError(
                f"unknown system parameter(s): {', '.join(sorted(unknown))}"
            )
        cleaned = {
            key: (int(value) if key == "block_size" else float(value))
            for key, value in overrides.items()
        }
        return replace(self.default_params, **cleaned)

    # --------------------------------------------------------- checkpoints

    def snapshot_live_sessions(self) -> List[Tuple[str, "Snapshot"]]:
        """Snapshot every live session *in memory* (no disk I/O).

        Runs on the event loop thread so each snapshot is internally
        consistent; the returned list can then be written out off-loop via
        :meth:`write_checkpoints` without blocking request handling.
        """
        from repro.store.codec import SnapshotError
        from repro.store.session_state import snapshot_session

        snaps: List[Tuple[str, "Snapshot"]] = []
        for session_id, session in list(self.sessions.items()):
            try:
                snapshot = snapshot_session(
                    session,
                    provenance={
                        "session": session_id,
                        "period": session.observations,
                    },
                )
            except SnapshotError:
                continue  # closed under us between list() and here
            snaps.append((session_id, snapshot))
        return snaps

    def write_checkpoints(
        self, snaps: List[Tuple[str, "Snapshot"]], directory: str
    ) -> int:
        """Write pre-taken snapshots to ``directory/<id>.snap``; returns count.

        Each file is a full ``session``-kind snapshot (atomic write-then-
        rename), so a crashed server can be resumed decision-identically
        with ``OPEN resume=<id>`` against the same checkpoint directory, or
        with ``OPEN model=...`` after importing the file into a store.
        Safe to call from a worker thread: it touches only its arguments
        and the metrics counter.
        """
        from repro.store.codec import write_snapshot

        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        written = 0
        for session_id, snapshot in snaps:
            write_snapshot(
                snapshot, os.path.join(directory, f"{session_id}.snap")
            )
            written += 1
        self.metrics.checkpoints_written += written
        return written

    def checkpoint_sessions(self, directory: str) -> int:
        """Snapshot and write every live session synchronously.

        Convenience composition of :meth:`snapshot_live_sessions` +
        :meth:`write_checkpoints` for callers outside the event loop
        (tests, the CLI on shutdown).  Inside the loop, split the two so
        the disk writes happen in a worker thread.
        """
        return self.write_checkpoints(self.snapshot_live_sessions(), directory)

    def drop_connection_sessions(self, owned: Set[str]) -> None:
        """Tear down sessions whose connection vanished without CLOSE.

        Sessions that already folded observations are first snapshotted
        into the LRU-bounded detached table, so the client can reconnect
        and ``OPEN resume=<id>`` decision-identically instead of replaying
        its whole journal.
        """
        from repro.store.codec import SnapshotError
        from repro.store.session_state import snapshot_session

        for session_id in owned:
            session = self.sessions.pop(session_id, None)
            self._traces.pop(session_id, None)
            if session is None:
                # A budget-evicted session dies with its connection; the
                # checkpoint stays on disk for an explicit resume.
                if session_id in self.evicted:
                    del self.evicted[session_id]
                    self.metrics.sessions_closed += 1
                continue
            if self.tenancy is not None:
                tenant = self.tenancy.tenant_of(session_id)
                if tenant is not None:
                    self.metrics.record_tenant(tenant, "sessions_closed")
                self.tenancy.unbind(session_id)
            if not session.closed and session.observations > 0:
                try:
                    self.detached[session_id] = snapshot_session(
                        session,
                        provenance={
                            "session": session_id,
                            "period": session.observations,
                            "detached": True,
                        },
                    )
                    self.metrics.sessions_detached += 1
                    while len(self.detached) > self.limits.max_detached_sessions:
                        self.detached.popitem(last=False)
                except SnapshotError:  # pragma: no cover - closed raced us
                    pass
            session.close()
            self.metrics.sessions_closed += 1
        owned.clear()

    # --------------------------------------------------------- connection

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.connections_opened += 1
        owned: Set[str] = set()
        self._writers.add(writer)
        limits = self.limits

        async def _drain() -> None:
            # A reader that stops consuming must not wedge this handler:
            # bound every drain by the request timeout.
            await asyncio.wait_for(writer.drain(), limits.request_timeout_s)

        try:
            writer.write(protocol.encode_reply(
                HelloReply(id=0, max_sessions=self.limits.max_sessions)
            ))
            await _drain()
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), limits.idle_timeout_s
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    self.metrics.timeouts += 1
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode_reply(ErrorReply(
                        0, protocol.E_BAD_REQUEST, "request line too long",
                    )))
                    await _drain()
                    self.metrics.errors += 1
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    request = protocol.decode_request(stripped)
                except ProtocolError as exc:
                    self.metrics.errors += 1
                    writer.write(protocol.encode_reply(
                        ErrorReply(0, exc.code, str(exc))
                    ))
                    await _drain()
                    continue
                shed = self.shed_reply(request)
                if shed is not None:
                    writer.write(protocol.encode_reply(shed))
                    await _drain()
                    continue
                # In-flight from decode to drained reply: the interval
                # the admission watermark measures.
                self.overload.begin()
                try:
                    writer.write(protocol.encode_reply(
                        self.handle(request, owned)
                    ))
                    await _drain()
                finally:
                    self.overload.end()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except (asyncio.TimeoutError, TimeoutError):
            self.metrics.timeouts += 1
        except asyncio.CancelledError:
            # Swallowed, not re-raised: handlers are only cancelled at
            # loop teardown (drain/shutdown), and 3.11's streams
            # done-callback calls task.exception() on cancelled handler
            # tasks, printing tracebacks for an orderly exit.  The
            # finally block below still detaches this connection's
            # sessions, which is exactly what shutdown wants.
            pass
        finally:
            self._writers.discard(writer)
            self.drop_connection_sessions(owned)
            self.metrics.connections_closed += 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def close_connections(self) -> None:
        """Close every tracked client connection (used by drain)."""
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Bind and start serving; returns the listening asyncio server."""
        return await asyncio.start_server(
            self.handle_connection, host, port,
            limit=self.limits.max_line_bytes,
        )


def bound_port(server: asyncio.AbstractServer) -> int:
    """The actual port of a (possibly port-0) listening server."""
    return server.sockets[0].getsockname()[1]


def wait_port_ready(
    host: str, port: int, *, timeout: float = 10.0, interval: float = 0.02
) -> None:
    """Block until ``host:port`` accepts a TCP connection.

    Polls with bounded ECONNREFUSED retries, closing each probe
    connection immediately — the server sees a zero-length connection,
    which the NDJSON handler treats as a clean EOF.  Raises
    ``TimeoutError`` if the port never opens.  This is the startup-race
    fix: anything that starts a server out-of-process (worker spawn) or
    on another thread must call this (or ``BackgroundServer.wait_ready``)
    before connecting, instead of sleeping and hoping.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[OSError] = None
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=interval + 1.0):
                return
        except OSError as exc:
            last_error = exc
            time.sleep(interval)
    raise TimeoutError(
        f"{host}:{port} not accepting connections after {timeout}s "
        f"(last error: {last_error})"
    )


async def drain_service(
    service: PrefetchService,
    server: Optional[asyncio.AbstractServer] = None,
    *,
    checkpoint_dir: Optional[str] = None,
) -> int:
    """Gracefully wind a service down; returns sessions checkpointed.

    Drain order matters: stop accepting first (close the listener), then
    snapshot every live session *on the loop* so each snapshot is
    consistent, then write the snapshots to disk in a worker thread, and
    only then sever the remaining client connections.  In-flight replies
    already queued on a transport still flush as the connections close.
    With no checkpoint directory the sessions cannot be persisted, but the
    listener and connections are still shut down cleanly.
    """
    if server is not None:
        server.close()
        await server.wait_closed()
    directory = (
        checkpoint_dir if checkpoint_dir is not None else service.checkpoint_dir
    )
    drained = 0
    snaps = service.snapshot_live_sessions()
    if snaps and directory is not None:
        drained = await asyncio.to_thread(
            service.write_checkpoints, snaps, directory
        )
    service.metrics.drained_sessions += len(snaps)
    service.close_connections()
    if service.tracer is not None:
        service.tracer.flush()
    return drained


async def serve_forever(
    host: str = "127.0.0.1",
    port: int = 7199,
    *,
    service: Optional[PrefetchService] = None,
    ready_message: bool = True,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_s: Optional[float] = None,
) -> None:
    """Run a service until cancelled (the ``python -m repro serve`` core).

    With both ``checkpoint_dir`` and ``checkpoint_every_s`` set, a
    background task periodically snapshots every live session to disk.
    """
    service = service if service is not None else PrefetchService()
    if checkpoint_dir is not None and service.checkpoint_dir is None:
        service.checkpoint_dir = checkpoint_dir
    server = await service.start(host, port)
    if ready_message:
        print(f"repro.service listening on {host}:{bound_port(server)} "
              f"(protocol v{protocol.PROTOCOL_VERSION})", flush=True)

    async def _checkpoint_loop() -> None:
        while True:
            # Brownout tier >= 3 widens the interval: checkpoint I/O is
            # deferrable work, and deferring it is cheaper than shedding.
            await asyncio.sleep(
                service.overload.checkpoint_interval(checkpoint_every_s)
            )
            snaps = service.snapshot_live_sessions()
            if not snaps:
                continue
            try:
                count = await asyncio.to_thread(
                    service.write_checkpoints, snaps, checkpoint_dir
                )
            except OSError as exc:
                print(f"checkpoint to {checkpoint_dir} failed: {exc}",
                      flush=True)
                continue
            if ready_message and count:
                print(f"checkpointed {count} session(s) to {checkpoint_dir}",
                      flush=True)

    checkpointer: Optional[asyncio.Task] = None
    if checkpoint_dir is not None and checkpoint_every_s is not None:
        checkpointer = asyncio.ensure_future(_checkpoint_loop())

    def _on_brownout(level: int, lag_s: float) -> None:
        service.metrics.brownout_transitions += 1
        if ready_message:
            print(
                f"brownout: level={level} ({TIER_NAMES[level]}) "
                f"lag_ms={lag_s * 1000.0:.1f}",
                flush=True,
            )

    watchdog_task: Optional[asyncio.Task] = None
    if service.overload.policy.brownout:
        watchdog = LoopLagWatchdog(
            service.overload, on_transition=_on_brownout
        )
        watchdog_task = asyncio.ensure_future(watchdog.run())

    drain_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    sigterm_installed = False
    try:
        loop.add_signal_handler(signal.SIGTERM, drain_requested.set)
        sigterm_installed = True
    except (NotImplementedError, RuntimeError):
        pass  # non-main thread or platform without signal support

    serve_task: Optional[asyncio.Task] = None
    drain_task: Optional[asyncio.Task] = None
    try:
        async with server:
            serve_task = asyncio.ensure_future(server.serve_forever())
            drain_task = asyncio.ensure_future(drain_requested.wait())
            done, _ = await asyncio.wait(
                {serve_task, drain_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if drain_task in done:
                serve_task.cancel()
                count = await drain_service(
                    service, server, checkpoint_dir=checkpoint_dir
                )
                if ready_message:
                    print(
                        f"SIGTERM: drained {count} session(s); exiting",
                        flush=True,
                    )
            else:
                await serve_task  # propagate cancellation / errors
    finally:
        for task in (serve_task, drain_task, checkpointer, watchdog_task):
            if task is not None and not task.done():
                task.cancel()
        if sigterm_installed:
            loop.remove_signal_handler(signal.SIGTERM)
        if service.tracer is not None:
            service.tracer.close()


class BackgroundServer:
    """A live server on a daemon thread — for tests, benchmarks, examples.

    ::

        with BackgroundServer() as server:
            client = ServiceClient.connect(port=server.port)
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[PrefetchService] = None,
    ) -> None:
        self.host = host
        self.service = service if service is not None else PrefetchService()
        self._requested_port = port
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise RuntimeError("server failed to start within 10 s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            server = loop.run_until_complete(
                self.service.start(self.host, self._requested_port)
            )
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self.port = bound_port(server)
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            if self.service.tracer is not None:
                self.service.tracer.close()
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            if thread.is_alive():
                # A silently leaked daemon thread keeps the port bound and
                # hides the hang from the caller; fail loudly instead.
                raise RuntimeError(
                    "repro-service thread did not stop within 10 s; "
                    "the event loop is wedged (port still bound)"
                )
        self._thread = None
        self._loop = None

    def wait_ready(self, timeout: float = 10.0) -> "BackgroundServer":
        """Block until the server accepts connections; returns self.

        ``start()`` already waits for the bind, but the accept loop runs
        on the daemon thread's event loop — a test that connects in the
        same instant can still race it (and a server freshly restarted on
        a fixed port can race the old socket's teardown).  Polling the
        port with :func:`wait_port_ready` closes that window.
        """
        if self.port is None:
            raise RuntimeError("server is not started")
        wait_port_ready(self.host, self.port, timeout=timeout)
        return self

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.service.metrics.as_dict()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
