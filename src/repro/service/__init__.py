"""Online prefetch advisory service.

The offline :class:`~repro.sim.engine.Simulator` consumes a whole trace up
front; real predictive prefetchers (MITHRIL, Pangloss) instead answer one
question per access, online: *given this reference, what should be fetched
ahead of demand right now?*  This package turns the predictor +
cost-benefit core into exactly that — a long-lived advisory daemon:

* :mod:`~repro.service.session`  — :class:`PrefetchSession`, the per-client
  state machine (``observe(block) -> PrefetchAdvice``);
* :mod:`~repro.service.protocol` — versioned newline-delimited-JSON wire
  schema (OPEN / OBSERVE / STATS / CLOSE);
* :mod:`~repro.service.server`   — asyncio TCP server multiplexing many
  concurrent sessions with per-session limits, backpressure, idle/request
  timeouts, degraded-mode serving, and graceful SIGTERM drain;
* :mod:`~repro.service.client`   — async and blocking clients, plus
  :class:`ResilientAsyncClient`, which retries with backoff and resumes a
  session decision-identically across connection failures;
* :mod:`~repro.service.metrics`  — service-level counters and per-command
  latency histograms;
* :mod:`~repro.service.replay`   — a load generator replaying any trace
  against a live server at configurable concurrency;
* :mod:`~repro.service.faults`   — a deterministic chaos proxy for testing
  the above under resets, delays, and corrupted replies.

Entry points: ``python -m repro serve``, ``python -m repro replay``, and
``python -m repro chaos``.
"""

from repro.service.client import (
    AsyncServiceClient,
    ResilientAsyncClient,
    ResumeParityError,
    RetryPolicy,
    ServiceClient,
)
from repro.service.faults import ChaosProxy, ChaosStats, FaultPlan
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.replay import ReplayReport, replay, replay_async
from repro.service.server import (
    BackgroundServer,
    PrefetchService,
    ServiceLimits,
    drain_service,
    wait_port_ready,
)
from repro.service.session import (
    ModelRestoreError,
    PrefetchAdvice,
    PrefetchSession,
    SessionError,
)

__all__ = [
    "AsyncServiceClient",
    "BackgroundServer",
    "ChaosProxy",
    "ChaosStats",
    "FaultPlan",
    "LatencyHistogram",
    "ModelRestoreError",
    "PROTOCOL_VERSION",
    "PrefetchAdvice",
    "PrefetchService",
    "PrefetchSession",
    "ProtocolError",
    "ReplayReport",
    "ResilientAsyncClient",
    "ResumeParityError",
    "RetryPolicy",
    "ServiceClient",
    "ServiceLimits",
    "ServiceMetrics",
    "SessionError",
    "drain_service",
    "replay",
    "replay_async",
    "wait_port_ready",
]
