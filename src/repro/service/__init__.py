"""Online prefetch advisory service.

The offline :class:`~repro.sim.engine.Simulator` consumes a whole trace up
front; real predictive prefetchers (MITHRIL, Pangloss) instead answer one
question per access, online: *given this reference, what should be fetched
ahead of demand right now?*  This package turns the predictor +
cost-benefit core into exactly that — a long-lived advisory daemon:

* :mod:`~repro.service.session`  — :class:`PrefetchSession`, the per-client
  state machine (``observe(block) -> PrefetchAdvice``);
* :mod:`~repro.service.protocol` — versioned newline-delimited-JSON wire
  schema (OPEN / OBSERVE / STATS / CLOSE);
* :mod:`~repro.service.server`   — asyncio TCP server multiplexing many
  concurrent sessions with per-session limits and backpressure;
* :mod:`~repro.service.client`   — async and blocking clients;
* :mod:`~repro.service.metrics`  — service-level counters and per-command
  latency histograms;
* :mod:`~repro.service.replay`   — a load generator replaying any trace
  against a live server at configurable concurrency.

Entry points: ``python -m repro serve`` and ``python -m repro replay``.
"""

from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.replay import ReplayReport, replay, replay_async
from repro.service.server import BackgroundServer, PrefetchService, ServiceLimits
from repro.service.session import PrefetchAdvice, PrefetchSession, SessionError

__all__ = [
    "AsyncServiceClient",
    "BackgroundServer",
    "LatencyHistogram",
    "PROTOCOL_VERSION",
    "PrefetchAdvice",
    "PrefetchService",
    "PrefetchSession",
    "ProtocolError",
    "ReplayReport",
    "ServiceClient",
    "ServiceLimits",
    "ServiceMetrics",
    "SessionError",
    "replay",
    "replay_async",
]
