"""Per-client session state machine for the advisory service.

A :class:`PrefetchSession` wraps one policy + prefetch tree + cost-benefit
estimator behind a three-call lifecycle::

    session = PrefetchSession(policy="tree", cache_size=1024)
    advice = session.observe(block)     # once per application reference
    session.stats_snapshot()            # any time, non-destructive
    final = session.close()             # seals and validates the stats

Unlike :meth:`Simulator.run`, a session never sees the future: it drives
:meth:`Simulator.step` one reference at a time, which is why oracle
policies that read ``engine.next_block`` / ``engine.full_trace`` (the
perfect-selector and hinting schemes) are rejected at construction.  For
every online-capable policy the advice stream is *bit-identical* to the
decisions the offline simulator would make on the same trace — the
determinism-parity tests in ``tests/service/`` enforce this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.params import PAPER_PARAMS, SystemParams
from repro.policies.registry import make_policy
from repro.sim.engine import PrefetchDecision, Simulator

Block = Hashable

#: Policies that need the whole trace (or one-access lookahead) up front and
#: therefore cannot serve online sessions.
OFFLINE_ONLY_POLICIES = frozenset({"perfect-selector", "informed"})


class SessionError(Exception):
    """Misuse of a session: unknown policy, observe-after-close, ..."""


class ModelRestoreError(SessionError):
    """A stored model or session snapshot could not be restored.

    Distinguished from plain :class:`SessionError` (a client mistake —
    unknown policy, bad parameters) so the server can *degrade* instead of
    reject: a session that asked for a trained model whose snapshot turns
    out to be corrupt still gets served, just with no-prefetch advice.
    """


@dataclass(frozen=True)
class PrefetchAdvice:
    """The service's answer to one observed reference.

    ``outcome`` reports how the reference itself resolved against the
    session's modelled cache (``demand_hit`` / ``prefetch_hit`` / ``miss``);
    ``prefetch`` lists the blocks the cost-benefit rule decided to fetch
    ahead of the *next* references, most valuable first.
    """

    block: Block
    period: int
    outcome: str
    stall_ms: float
    prefetch: Tuple[PrefetchDecision, ...]
    s: float

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the OBSERVE reply payload)."""
        return {
            "block": self.block,
            "period": self.period,
            "outcome": self.outcome,
            "stall_ms": self.stall_ms,
            "prefetch": [
                {
                    "block": d.block,
                    "probability": d.probability,
                    "depth": d.depth,
                    "tag": d.tag,
                }
                for d in self.prefetch
            ],
            "s": self.s,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PrefetchAdvice":
        return cls(
            block=payload["block"],
            period=int(payload["period"]),
            outcome=str(payload["outcome"]),
            stall_ms=float(payload["stall_ms"]),
            prefetch=tuple(
                PrefetchDecision(
                    d["block"], float(d["probability"]), int(d["depth"]),
                    str(d["tag"]),
                )
                for d in payload["prefetch"]
            ),
            s=float(payload["s"]),
        )


class PrefetchSession:
    """One client's long-lived predictor + cost-benefit state."""

    def __init__(
        self,
        *,
        policy: str = "tree",
        cache_size: int = 1024,
        params: Optional[SystemParams] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        max_observations: Optional[int] = None,
        warm_start: Optional[Any] = None,
        **sim_kwargs: Any,
    ) -> None:
        """``warm_start`` takes a ``model``-kind snapshot
        (:func:`repro.store.model_snapshot`): the policy's model is loaded
        from it before the first observation, so prediction quality carries
        over from a trained model while cache and cost state start cold.
        To resume a session decision-identically, use
        :func:`repro.store.restore_session` instead."""
        if policy in OFFLINE_ONLY_POLICIES:
            raise SessionError(
                f"policy {policy!r} needs the full trace up front and "
                "cannot run as an online session"
            )
        try:
            policy_obj = make_policy(policy, **(policy_kwargs or {}))
        except (ValueError, TypeError) as exc:
            raise SessionError(str(exc)) from None
        if max_observations is not None and max_observations < 1:
            raise SessionError(
                f"max_observations must be >= 1, got {max_observations!r}"
            )
        try:
            self._sim = Simulator(
                params if params is not None else PAPER_PARAMS,
                policy_obj,
                cache_size,
                **sim_kwargs,
            )
        except (ValueError, TypeError) as exc:
            raise SessionError(str(exc)) from None
        self.policy_name = policy
        self.cache_size = cache_size
        self.max_observations = max_observations
        self.closed = False
        self.degraded = False
        self._final_stats: Optional[Dict[str, Any]] = None
        self._last_advice: Optional[PrefetchAdvice] = None
        self._params = params if params is not None else PAPER_PARAMS
        self._policy_kwargs = dict(policy_kwargs or {})
        self._sim_kwargs = dict(sim_kwargs)
        if warm_start is not None:
            from repro.store.codec import SnapshotError
            from repro.store.models import restore_model

            model = policy_obj.model()
            if model is None:
                raise SessionError(
                    f"policy {policy!r} has no model to warm-start"
                )
            try:
                restore_model(warm_start, model)
            except SnapshotError as exc:
                raise ModelRestoreError(
                    f"warm start failed: {exc}"
                ) from None

    # ----------------------------------------------------------- config

    @property
    def params(self) -> SystemParams:
        return self._params

    @property
    def policy_kwargs(self) -> Dict[str, Any]:
        return dict(self._policy_kwargs)

    @property
    def sim_kwargs(self) -> Dict[str, Any]:
        return dict(self._sim_kwargs)

    # ------------------------------------------------------------ lifecycle

    @property
    def simulator(self) -> Simulator:
        """The underlying engine (read-only use: tests, diagnostics)."""
        return self._sim

    @property
    def observations(self) -> int:
        return self._sim.period

    @property
    def last_advice(self) -> Optional[PrefetchAdvice]:
        """The most recent :meth:`observe` result (``None`` before the
        first observation).  The server uses it to answer a retried
        duplicate of the last OBSERVE without folding the reference twice
        (exactly-once semantics under reconnect-and-resume)."""
        return self._last_advice

    def observe(self, block: Block) -> PrefetchAdvice:
        """Fold one reference into the session and return prefetch advice."""
        if self.closed:
            raise SessionError("session is closed")
        if (
            self.max_observations is not None
            and self._sim.period >= self.max_observations
        ):
            raise SessionError(
                f"session observation limit reached ({self.max_observations})"
            )
        result = self._sim.step(block)
        advice = PrefetchAdvice(
            block=result.block,
            period=result.period,
            outcome=result.outcome,
            stall_ms=result.stall_ms,
            prefetch=result.decisions,
            s=self._sim.s,
        )
        self._last_advice = advice
        return advice

    def stats_snapshot(self) -> Dict[str, Any]:
        """Live counters without sealing the run (the STATS reply payload)."""
        if self._final_stats is not None:
            return dict(self._final_stats)
        sim = self._sim
        snapshot = sim.stats.as_dict()
        # elapsed/stall are only folded into the stats object at finalize();
        # report the live clock so mid-session STATS is honest.
        snapshot["elapsed_time"] = sim.clock.now
        snapshot["stall_time"] = sim.clock.stall_time
        snapshot["policy"] = self.policy_name
        snapshot["cache_size"] = self.cache_size
        snapshot["period"] = sim.period
        snapshot["s"] = sim.s
        snapshot["model_items"] = sim.policy.model_items()
        snapshot["degraded"] = self.degraded
        return snapshot

    def close(self) -> Dict[str, Any]:
        """Seal the session and return the validated final statistics.

        Idempotent: closing twice returns the same final snapshot.
        """
        if self._final_stats is None:
            stats = self._sim.finalize()
            snapshot = stats.as_dict()
            snapshot["policy"] = self.policy_name
            snapshot["cache_size"] = self.cache_size
            snapshot["period"] = self._sim.period
            snapshot["s"] = self._sim.s
            snapshot["model_items"] = self._sim.policy.model_items()
            snapshot["degraded"] = self.degraded
            self._final_stats = snapshot
            self.closed = True
        return dict(self._final_stats)
