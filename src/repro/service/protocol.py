"""Wire protocol for the advisory service: versioned newline-delimited JSON.

Every message is one JSON object on one line, UTF-8, ``\\n``-terminated.
Requests carry ``{"v": 1, "cmd": ..., "id": ...}`` plus command fields;
replies echo the request ``id`` and carry ``"ok": true`` with a payload or
``"ok": false`` with an error code and message.  The server greets each
connection with a HELLO reply (``id`` 0) announcing its protocol version
and limits, so clients can fail fast on a version mismatch.

Commands
--------
``open``     create a session (policy, cache size, system parameters)
``observe``  feed one block reference, get :class:`PrefetchAdvice` back
``stats``    non-destructive mid-session counter snapshot
``close``    seal the session and return the final statistics

The schema is deliberately flat and text-first (cf. redis' RESP or
memcached's text protocol): a session can be driven from ``nc`` by hand,
and any language with a JSON library can implement a client in a page.

Versioning
----------
Protocol v2 added the optional ``model`` field on OPEN (warm-start a
session from a registry snapshot, ``NAME`` or ``NAME@VERSION``).
Protocol v3 added the resilience fields: ``resume`` on OPEN (re-open a
detached or checkpointed session decision-identically), ``seq`` on
OBSERVE (exactly-once retry semantics: a duplicate of the last
observation returns the cached advice instead of re-folding it), and
``period`` / ``resumed`` / ``degraded`` on the OPEN reply.  Both changes
are additive, so the server accepts any version in
``[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]``: a v1 client simply never
sends the newer fields.  Replies are stamped with the current version;
clients accept the same range.

Two further additive fields serve the fleet layer (:mod:`repro.cluster`)
and stay within v3:

* ``session_id`` on OPEN lets the caller *choose* the session id instead
  of receiving a server-generated one.  The gateway uses it to pin a
  session's identity across workers, so the consistent-hash placement,
  the shared checkpoint file, and the client-visible id are all the same
  string.  Ordinary clients never send it; ids are validated against
  :data:`SAFE_ID` (they become checkpoint filenames).
* ``session`` on STATS became optional: STATS *without* a session returns
  server-level stats — worker identity, live counters, and the full
  :meth:`~repro.service.metrics.ServiceMetrics.to_state` — which is both
  the supervisor's liveness probe and the gateway's fleet-aggregation
  feed.

The multi-tenant layer (:mod:`repro.tenancy`) adds two more additive
fields, still within v3:

* ``tenant`` on OPEN names the tenant whose shared base model (and
  quotas) the session runs under::

      {"v": 3, "cmd": "open", "id": 1, "policy": "tree",
       "cache_size": 1024, "tenant": "acme"}

  Requires the server to be running with a tenant config; an unknown
  tenant is ``bad_request``, and a quota breach is rejected with the
  ``quota_exceeded`` error code.
* ``retry_after_s`` on error replies (quota rejections set it from the
  tenant's configured backoff hint) tells well-behaved clients when to
  try again; absent on all other errors.

The overload-protection layer (:mod:`repro.service.overload`) adds one
more additive error code, still within v3:

* ``overloaded`` rejects a *new* OPEN when the server or gateway is past
  its admission watermark (or deep in brownout).  The reply reuses the
  quota shape — ``retry_after_s`` carries the backoff hint::

      {"v": 3, "id": 1, "error": "overloaded",
       "message": "server overloaded; retry in 0.5s", "retry_after_s": 0.5}

  Unlike ``quota_exceeded`` this is never about *who* is asking, only
  about *when*: already-admitted sessions keep full service, and
  resilient clients treat the error as backoff-not-fault.

The observability layer (:mod:`repro.obs`) adds two more additive
fields, still within v3:

* ``trace`` on OPEN (request and reply) carries a distributed-tracing
  trace id for the session.  A client that wants its session traced
  sends one; a gateway running with tracing assigns one to sampled
  sessions it opens (and echoes back whichever id ends up bound), so
  client, gateway, and worker spans share a single id.  The field is
  pure metadata: it never changes advice, placement, or scheduling,
  and a server without tracing simply ignores it.
* ``format`` on server-level STATS selects an alternate rendering of
  the snapshot.  The only defined value is ``"prometheus"``: the reply
  payload gains an ``exposition`` key holding the Prometheus text
  format over the server's (or the gateway's fleet-merged) metrics.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Type, Union

from repro.service.session import PrefetchAdvice

PROTOCOL_VERSION = 3
#: Oldest protocol version still accepted (v1 lacks only the additive
#: OPEN ``model`` field from v2 and the v3 resilience fields).
MIN_PROTOCOL_VERSION = 1

#: Upper bound on one encoded line; guards the server against a client
#: streaming an unbounded "line" into memory.
MAX_LINE_BYTES = 1 << 20

#: Shape of a caller-supplied session id (OPEN ``session_id`` / ``resume``).
#: Ids become ``<checkpoint-dir>/<id>.snap`` filenames, so anything that
#: could traverse a path ("../", separators, leading dots) is rejected
#: before it reaches the filesystem.
SAFE_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def is_safe_id(session_id: str) -> bool:
    """True when ``session_id`` is usable as a session/checkpoint name."""
    return bool(SAFE_ID.match(session_id)) and ".." not in session_id

# Error codes carried by ErrorReply.error.
E_BAD_REQUEST = "bad_request"
E_BAD_VERSION = "bad_version"
E_UNKNOWN_SESSION = "unknown_session"
E_SESSION_ERROR = "session_error"
E_LIMIT = "limit_exceeded"
E_SEQ = "seq_mismatch"
E_QUOTA = "quota_exceeded"
E_OVERLOAD = "overloaded"


class ProtocolError(Exception):
    """A line that cannot be parsed into a valid message."""

    def __init__(self, message: str, *, code: str = E_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


# --------------------------------------------------------------- requests


@dataclass(frozen=True)
class OpenRequest:
    """Create a new session."""

    id: int
    policy: str = "tree"
    cache_size: int = 1024
    params: Optional[Dict[str, float]] = None
    """Overrides for :class:`SystemParams` fields (t_cpu, t_disk, ...)."""
    policy_kwargs: Dict[str, Any] = field(default_factory=dict)
    model: Optional[str] = None
    """Registry spec (``NAME`` or ``NAME@VERSION``) to start the session
    from; requires the server to be running with a model store (v2)."""
    resume: Optional[str] = None
    """Session id to resume from the server's detached-session table or
    checkpoint directory, decision-identically (v3)."""
    session_id: Optional[str] = None
    """Caller-chosen id for the new session (v3, fleet-internal): the
    gateway pins a session's identity — ring placement, checkpoint file,
    client-visible id — to one string across workers.  Must satisfy
    :func:`is_safe_id`; collisions with a live session are rejected."""
    tenant: Optional[str] = None
    """Tenant whose shared base model and quotas this session runs under
    (v3, additive); requires a server-side tenant config."""
    trace: Optional[str] = None
    """Distributed-tracing trace id for the session (v3, additive): the
    gateway injects one for sampled sessions so worker spans join the
    gateway's, and clients may supply their own.  Ignored by servers
    that run without tracing; never influences advice or placement."""

    cmd = "open"

    def payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "policy": self.policy,
            "cache_size": self.cache_size,
        }
        if self.params is not None:
            out["params"] = self.params
        if self.policy_kwargs:
            out["policy_kwargs"] = self.policy_kwargs
        if self.model is not None:
            out["model"] = self.model
        if self.resume is not None:
            out["resume"] = self.resume
        if self.session_id is not None:
            out["session_id"] = self.session_id
        if self.tenant is not None:
            out["tenant"] = self.tenant
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "OpenRequest":
        model = payload.get("model")
        resume = payload.get("resume")
        session_id = payload.get("session_id")
        tenant = payload.get("tenant")
        trace = payload.get("trace")
        return cls(
            id=id,
            policy=str(payload.get("policy", "tree")),
            cache_size=int(payload.get("cache_size", 1024)),
            params=payload.get("params"),
            policy_kwargs=dict(payload.get("policy_kwargs", {})),
            model=str(model) if model is not None else None,
            resume=str(resume) if resume is not None else None,
            session_id=str(session_id) if session_id is not None else None,
            tenant=str(tenant) if tenant is not None else None,
            trace=str(trace) if trace is not None else None,
        )


@dataclass(frozen=True)
class ObserveRequest:
    """Feed one block reference to a session."""

    id: int
    session: str
    block: int
    seq: Optional[int] = None
    """Expected observation index (0-based; the session's current period).
    When set, a retried duplicate of the last observation is answered from
    the session's cached advice instead of being folded twice (v3)."""

    cmd = "observe"

    def payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"session": self.session, "block": self.block}
        if self.seq is not None:
            out["seq"] = self.seq
        return out

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "ObserveRequest":
        if "session" not in payload or "block" not in payload:
            raise ProtocolError("observe requires 'session' and 'block'")
        seq = payload.get("seq")
        return cls(id=id, session=str(payload["session"]),
                   block=int(payload["block"]),
                   seq=int(seq) if seq is not None else None)


@dataclass(frozen=True)
class StatsRequest:
    """Request a non-destructive counter snapshot.

    With ``session`` set, a per-session snapshot; without it (v3,
    additive), a server-level snapshot carrying the worker's identity
    and full :class:`~repro.service.metrics.ServiceMetrics` state — the
    probe a fleet supervisor uses for liveness and a gateway folds into
    fleet totals.
    """

    id: int
    session: Optional[str] = None
    format: Optional[str] = None
    """Alternate rendering of a *server-level* snapshot (v3, additive).
    ``"prometheus"`` adds an ``exposition`` key — the Prometheus text
    format over the server's (or fleet-merged) metrics — to the reply."""

    cmd = "stats"

    def payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.session is not None:
            out["session"] = self.session
        if self.format is not None:
            out["format"] = self.format
        return out

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "StatsRequest":
        session = payload.get("session")
        fmt = payload.get("format")
        return cls(id=id,
                   session=str(session) if session is not None else None,
                   format=str(fmt) if fmt is not None else None)


@dataclass(frozen=True)
class CloseRequest:
    """Seal a session and collect its final statistics."""

    id: int
    session: str

    cmd = "close"

    def payload(self) -> Dict[str, Any]:
        return {"session": self.session}

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "CloseRequest":
        if "session" not in payload:
            raise ProtocolError("close requires 'session'")
        return cls(id=id, session=str(payload["session"]))


Request = Union[OpenRequest, ObserveRequest, StatsRequest, CloseRequest]

_REQUEST_TYPES: Dict[str, Type[Any]] = {
    cls.cmd: cls
    for cls in (OpenRequest, ObserveRequest, StatsRequest, CloseRequest)
}


# ---------------------------------------------------------------- replies


@dataclass(frozen=True)
class HelloReply:
    """Server banner, sent unsolicited when a connection opens."""

    id: int
    server: str = "repro.service"
    protocol: int = PROTOCOL_VERSION
    max_sessions: Optional[int] = None

    cmd = "hello"
    ok = True

    def payload(self) -> Dict[str, Any]:
        return {
            "server": self.server,
            "protocol": self.protocol,
            "max_sessions": self.max_sessions,
        }

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "HelloReply":
        return cls(
            id=id,
            server=str(payload.get("server", "repro.service")),
            protocol=int(payload.get("protocol", -1)),
            max_sessions=payload.get("max_sessions"),
        )


@dataclass(frozen=True)
class OpenReply:
    id: int
    session: str
    policy: str
    cache_size: int
    period: int = 0
    """Observation count of the (possibly resumed) session: the seq the
    next OBSERVE should carry (v3)."""
    resumed: bool = False
    degraded: bool = False
    """True when a failed model restore fell back to no-prefetch advice
    instead of rejecting the session (v3)."""
    trace: Optional[str] = None
    """Trace id bound to the session, echoed so the client can label its
    own spans with the id the serving side settled on (v3, additive;
    absent when the session is unsampled or tracing is off)."""

    cmd = "open"
    ok = True

    def payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "session": self.session,
            "policy": self.policy,
            "cache_size": self.cache_size,
            "period": self.period,
            "resumed": self.resumed,
            "degraded": self.degraded,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "OpenReply":
        trace = payload.get("trace")
        return cls(
            id=id,
            session=str(payload["session"]),
            policy=str(payload["policy"]),
            cache_size=int(payload["cache_size"]),
            period=int(payload.get("period", 0)),
            resumed=bool(payload.get("resumed", False)),
            degraded=bool(payload.get("degraded", False)),
            trace=str(trace) if trace is not None else None,
        )


@dataclass(frozen=True)
class ObserveReply:
    id: int
    session: str
    advice: PrefetchAdvice

    cmd = "observe"
    ok = True

    def payload(self) -> Dict[str, Any]:
        return {"session": self.session, "advice": self.advice.as_dict()}

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "ObserveReply":
        return cls(
            id=id,
            session=str(payload["session"]),
            advice=PrefetchAdvice.from_dict(payload["advice"]),
        )


@dataclass(frozen=True)
class StatsReply:
    id: int
    session: str
    stats: Dict[str, Any]

    cmd = "stats"
    ok = True

    def payload(self) -> Dict[str, Any]:
        return {"session": self.session, "stats": self.stats}

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "StatsReply":
        return cls(id=id, session=str(payload["session"]),
                   stats=dict(payload["stats"]))


@dataclass(frozen=True)
class CloseReply:
    id: int
    session: str
    stats: Dict[str, Any]

    cmd = "close"
    ok = True

    def payload(self) -> Dict[str, Any]:
        return {"session": self.session, "stats": self.stats}

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "CloseReply":
        return cls(id=id, session=str(payload["session"]),
                   stats=dict(payload["stats"]))


@dataclass(frozen=True)
class ErrorReply:
    id: int
    error: str
    message: str
    retry_after_s: Optional[float] = None
    """Backoff hint for retryable rejections (quota breaches); ``None``
    otherwise (v3, additive)."""

    cmd = "error"
    ok = False

    def payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"error": self.error, "message": self.message}
        if self.retry_after_s is not None:
            out["retry_after_s"] = self.retry_after_s
        return out

    @classmethod
    def from_payload(cls, id: int, payload: Dict[str, Any]) -> "ErrorReply":
        retry_after = payload.get("retry_after_s")
        return cls(id=id, error=str(payload["error"]),
                   message=str(payload["message"]),
                   retry_after_s=(float(retry_after)
                                  if retry_after is not None else None))


Reply = Union[HelloReply, OpenReply, ObserveReply, StatsReply, CloseReply,
              ErrorReply]

_REPLY_TYPES: Dict[str, Type[Any]] = {
    cls.cmd: cls
    for cls in (HelloReply, OpenReply, ObserveReply, StatsReply, CloseReply,
                ErrorReply)
}


# ------------------------------------------------------------ wire codecs


def _check_version(obj: Dict[str, Any]) -> None:
    version = obj.get("v")
    if not isinstance(version, int) or not (
        MIN_PROTOCOL_VERSION <= version <= PROTOCOL_VERSION
    ):
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"want {MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION}",
            code=E_BAD_VERSION,
        )


def _parse_line(line: Union[str, bytes]) -> Dict[str, Any]:
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("line exceeds MAX_LINE_BYTES")
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("message must be a JSON object")
    return obj


def encode_request(request: Request) -> bytes:
    obj = {"v": PROTOCOL_VERSION, "cmd": request.cmd, "id": request.id}
    obj.update(request.payload())
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def decode_request(line: Union[str, bytes]) -> Request:
    obj = _parse_line(line)
    _check_version(obj)
    cmd = obj.get("cmd")
    cls = _REQUEST_TYPES.get(cmd)  # type: ignore[arg-type]
    if cls is None:
        raise ProtocolError(f"unknown command {cmd!r}")
    try:
        request_id = int(obj.get("id", 0))
    except (TypeError, ValueError):
        raise ProtocolError("request id must be an integer") from None
    try:
        return cls.from_payload(request_id, obj)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {cmd} request: {exc}") from None


def encode_reply(reply: Reply) -> bytes:
    obj = {"v": PROTOCOL_VERSION, "cmd": reply.cmd, "id": reply.id,
           "ok": reply.ok}
    obj.update(reply.payload())
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def decode_reply(line: Union[str, bytes]) -> Reply:
    obj = _parse_line(line)
    _check_version(obj)
    cmd = obj.get("cmd")
    cls = _REPLY_TYPES.get(cmd)  # type: ignore[arg-type]
    if cls is None:
        raise ProtocolError(f"unknown reply {cmd!r}")
    try:
        return cls.from_payload(int(obj.get("id", 0)), obj)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {cmd} reply: {exc}") from None
