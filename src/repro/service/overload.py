"""Overload protection: admission control, brownout tiers, circuit breakers.

The paper's thesis is that a prefetcher should spend resources only while
the estimated benefit exceeds the estimated cost.  This module applies the
same discipline to the serving stack itself: when the process is saturated,
the cheapest work to refuse is work we have not accepted yet, and the
cheapest work to degrade is the advisory extras (deep prefetch batches,
per-decision accounting, frequent checkpoints) rather than the advice
stream clients are already depending on.

Three cooperating pieces, all transport-agnostic and unit-testable:

``AdmissionGuard``
    Counts in-flight requests against a watermark (``max_inflight``) and
    answers one question: *should a brand-new OPEN be shed right now?*
    Sessions that are already admitted keep full service; only new work is
    refused, with ``E_OVERLOAD`` + ``retry_after_s`` so cooperative clients
    back off instead of hammering.

``BrownoutController`` (+ ``LoopLagWatchdog``)
    The watchdog is a self-probe task that sleeps a fixed interval and
    measures how late the event loop woke it — scheduling lag is the most
    honest single signal that the process is drowning.  The controller
    consumes lag samples and steps a degradation level up or down through
    hysteresis guards (N consecutive hot samples to step up, M consecutive
    cool samples to step down, and a dead band between the thresholds so
    the level never flaps).  Tiers, mildest first:

    ======  ====================  ============================================
    level   name                  effect
    ======  ====================  ============================================
    0       normal                full service
    1       cap_prefetch          prefetch batches truncated to ``prefetch_cap``
    2       drop_logs             per-command latency accounting skipped
    3       widen_checkpoints     checkpoint interval × ``checkpoint_widen``
    4       shed                  new OPENs refused with ``E_OVERLOAD``
    ======  ====================  ============================================

``CircuitBreaker``
    Per-upstream failure counter with the classic closed → open →
    half-open → closed cycle.  The gateway keeps one per worker link so a
    sick worker fails fast (and its sessions take the existing
    ring-successor failover path) instead of queueing every request behind
    a connect timeout.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "AdmissionGuard",
    "BreakerPolicy",
    "BrownoutController",
    "CircuitBreaker",
    "LoopLagWatchdog",
    "OverloadPolicy",
    "TIER_NAMES",
    "TIER_NORMAL",
    "TIER_CAP_PREFETCH",
    "TIER_DROP_LOGS",
    "TIER_WIDEN_CHECKPOINTS",
    "TIER_SHED",
]

TIER_NORMAL = 0
TIER_CAP_PREFETCH = 1
TIER_DROP_LOGS = 2
TIER_WIDEN_CHECKPOINTS = 3
TIER_SHED = 4

#: Human-facing names for the brownout tiers, indexed by level.
TIER_NAMES = (
    "normal",
    "cap_prefetch",
    "drop_logs",
    "widen_checkpoints",
    "shed",
)


@dataclass(frozen=True)
class OverloadPolicy:
    """Tuning knobs for admission control and brownout serving.

    ``max_inflight`` is the admission watermark: when that many requests
    are already between decode and reply-drain, new OPENs are shed.
    ``None`` disables admission control entirely.  ``brownout`` enables
    the lag watchdog; the remaining fields tune its thresholds.
    """

    max_inflight: Optional[int] = None
    shed_retry_after_s: float = 0.5
    brownout: bool = False
    probe_interval_s: float = 0.1
    #: A probe this late (seconds) counts as a "hot" sample.
    lag_enter_s: float = 0.05
    #: A probe at most this late counts as a "cool" sample; between the
    #: two thresholds is a dead band that resets neither streak.
    lag_exit_s: float = 0.02
    enter_consecutive: int = 3
    exit_consecutive: int = 6
    #: Prefetch batch depth served at brownout tier >= 1.
    prefetch_cap: int = 2
    #: Checkpoint interval multiplier at brownout tier >= 3.
    checkpoint_widen: float = 4.0


class BrownoutController:
    """Hysteresis-guarded tier stepper driven by scheduling-lag samples.

    Pure logic — no clocks, no tasks — so tests can feed synthetic lag
    sequences and assert the exact transition points.
    """

    def __init__(self, policy: OverloadPolicy) -> None:
        self.policy = policy
        self.level = TIER_NORMAL
        self.transitions = 0
        self._hot = 0
        self._cool = 0

    def observe(self, lag_s: float) -> Optional[int]:
        """Feed one lag sample; return the new level iff it changed."""
        policy = self.policy
        if lag_s >= policy.lag_enter_s:
            self._hot += 1
            self._cool = 0
            if self._hot >= policy.enter_consecutive and self.level < TIER_SHED:
                self._hot = 0
                self.level += 1
                self.transitions += 1
                return self.level
        elif lag_s <= policy.lag_exit_s:
            self._cool += 1
            self._hot = 0
            if self._cool >= policy.exit_consecutive and self.level > TIER_NORMAL:
                self._cool = 0
                self.level -= 1
                self.transitions += 1
                return self.level
        else:
            # Dead band: neither streak advances, neither resets to the
            # other side's benefit — this is what prevents flapping.
            self._hot = 0
            self._cool = 0
        return None


class AdmissionGuard:
    """In-flight watermark tracking plus the brownout controller.

    ``begin()``/``end()`` bracket each request from decode to drained
    reply; ``shed_open()`` is consulted *before* ``begin()`` so the
    request being admitted does not count against itself.
    """

    def __init__(self, policy: Optional[OverloadPolicy] = None) -> None:
        self.policy = policy or OverloadPolicy()
        self.brownout = BrownoutController(self.policy)
        self.inflight = 0
        self.peak_inflight = 0

    def begin(self) -> None:
        self.inflight += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight

    def end(self) -> None:
        self.inflight -= 1

    @property
    def level(self) -> int:
        return self.brownout.level

    def shed_open(self) -> bool:
        """True when a brand-new OPEN arriving now should be refused."""
        if self.brownout.level >= TIER_SHED:
            return True
        limit = self.policy.max_inflight
        return limit is not None and self.inflight >= limit

    @property
    def prefetch_cap(self) -> Optional[int]:
        """Batch-depth cap at tier >= 1, else ``None`` (uncapped)."""
        if self.brownout.level >= TIER_CAP_PREFETCH:
            return self.policy.prefetch_cap
        return None

    @property
    def drop_logs(self) -> bool:
        return self.brownout.level >= TIER_DROP_LOGS

    def checkpoint_interval(self, base_s: float) -> float:
        """The effective checkpoint interval at the current tier."""
        if self.brownout.level >= TIER_WIDEN_CHECKPOINTS:
            return base_s * self.policy.checkpoint_widen
        return base_s


class LoopLagWatchdog:
    """Self-probe task measuring event-loop scheduling delay.

    Sleeps ``probe_interval_s`` and measures how much later than requested
    the loop actually woke it; each sample feeds the guard's brownout
    controller.  ``on_transition(level, lag_s)`` fires on every tier
    change (for log lines and metrics).
    """

    def __init__(
        self,
        guard: AdmissionGuard,
        *,
        on_transition: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.guard = guard
        self.on_transition = on_transition
        self.last_lag_s = 0.0
        self.probes = 0

    async def run(self) -> None:
        import asyncio

        loop = asyncio.get_running_loop()
        interval = self.guard.policy.probe_interval_s
        while True:
            start = loop.time()
            await asyncio.sleep(interval)
            lag = max(0.0, loop.time() - start - interval)
            self.last_lag_s = lag
            self.probes += 1
            changed = self.guard.brownout.observe(lag)
            if changed is not None and self.on_transition is not None:
                self.on_transition(changed, lag)


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker tuning: trip after N consecutive failures, retry
    one probe after ``cooldown_s``."""

    failure_threshold: int = 5
    cooldown_s: float = 1.0


class CircuitBreaker:
    """Closed → open → half-open → closed, with an injectable clock.

    ``allow()`` must be paired with exactly one ``record_success()`` or
    ``record_failure()`` when it returns True; in the half-open state it
    admits a single probe at a time.
    """

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self.clock = clock
        self.state = "closed"
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.times_opened = 0
        self._probing = False

    @property
    def blocked(self) -> bool:
        """True while open and still cooling down.  Read-only: unlike
        :meth:`allow`, consumes no half-open probe slot, so placement
        logic can skip a tripped upstream without racing the probe."""
        return (
            self.state == "open"
            and self.opened_at is not None
            and self.clock() - self.opened_at < self.policy.cooldown_s
        )

    def allow(self) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open":
            assert self.opened_at is not None
            if self.clock() - self.opened_at < self.policy.cooldown_s:
                return False
            self.state = "half-open"
            self._probing = False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> bool:
        """Mark one success; True iff this closed a non-closed breaker."""
        self.failures = 0
        self._probing = False
        if self.state != "closed":
            self.state = "closed"
            self.opened_at = None
            return True
        return False

    def record_failure(self) -> bool:
        """Mark one failure; True iff this transition *opened* the breaker."""
        self._probing = False
        self.failures += 1
        if self.state == "half-open":
            tripped = True
        elif self.state == "closed":
            tripped = self.failures >= self.policy.failure_threshold
        else:
            return False
        if tripped:
            self.state = "open"
            self.opened_at = self.clock()
            self.times_opened += 1
            self.failures = 0
            return True
        return False
