"""Clients for the advisory service: asyncio and blocking-socket flavours.

Both speak the :mod:`repro.service.protocol` NDJSON wire format, validate
the server's HELLO banner (protocol version), auto-number request ids, and
turn ``ok: false`` replies into :class:`ServiceError`.

:class:`AsyncServiceClient` is what the replay load generator uses — many
of them share one event loop.  :class:`ServiceClient` is a plain blocking
wrapper for scripts, examples, and interactive use.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, Optional, Type, TypeVar

from repro.service import protocol
from repro.service.protocol import (
    CloseReply,
    CloseRequest,
    ErrorReply,
    HelloReply,
    ObserveReply,
    ObserveRequest,
    OpenReply,
    OpenRequest,
    ProtocolError,
    Reply,
    Request,
    StatsReply,
    StatsRequest,
)
from repro.service.session import PrefetchAdvice

R = TypeVar("R", bound=Reply)


class ServiceError(Exception):
    """The server answered with an error reply."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


def _expect(reply: Reply, reply_type: Type[R]) -> R:
    if isinstance(reply, ErrorReply):
        raise ServiceError(reply.error, reply.message)
    if not isinstance(reply, reply_type):
        raise ProtocolError(
            f"expected {reply_type.__name__}, got {type(reply).__name__}"
        )
    return reply


def _check_hello(reply: Reply) -> HelloReply:
    hello = _expect(reply, HelloReply)
    if not (
        protocol.MIN_PROTOCOL_VERSION
        <= hello.protocol
        <= protocol.PROTOCOL_VERSION
    ):
        raise ProtocolError(
            f"server speaks protocol v{hello.protocol}, client speaks "
            f"v{protocol.MIN_PROTOCOL_VERSION}..v{protocol.PROTOCOL_VERSION}",
            code=protocol.E_BAD_VERSION,
        )
    return hello


class AsyncServiceClient:
    """One connection to the service, usable from an event loop."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: HelloReply,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.hello = hello
        self._next_id = 1

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 7199
    ) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        hello = _check_hello(protocol.decode_reply(await reader.readline()))
        return cls(reader, writer, hello)

    async def _rpc(self, request: Request, reply_type: Type[R]) -> R:
        self._writer.write(protocol.encode_request(request))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _expect(protocol.decode_reply(line), reply_type)

    def _take_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id

    async def open(
        self,
        *,
        policy: str = "tree",
        cache_size: int = 1024,
        params: Optional[Dict[str, float]] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        model: Optional[str] = None,
    ) -> str:
        """Create a session; returns its server-assigned id.

        ``model`` names a registry snapshot (``NAME`` or ``NAME@VERSION``)
        to start the session from; the server must be running with a store.
        """
        reply = await self._rpc(
            OpenRequest(
                id=self._take_id(), policy=policy, cache_size=cache_size,
                params=params, policy_kwargs=dict(policy_kwargs or {}),
                model=model,
            ),
            OpenReply,
        )
        return reply.session

    async def observe(self, session: str, block: int) -> PrefetchAdvice:
        reply = await self._rpc(
            ObserveRequest(id=self._take_id(), session=session, block=block),
            ObserveReply,
        )
        return reply.advice

    async def stats(self, session: str) -> Dict[str, Any]:
        reply = await self._rpc(
            StatsRequest(id=self._take_id(), session=session), StatsReply
        )
        return reply.stats

    async def close_session(self, session: str) -> Dict[str, Any]:
        reply = await self._rpc(
            CloseRequest(id=self._take_id(), session=session), CloseReply
        )
        return reply.stats

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()


class ServiceClient:
    """Blocking client over a plain socket (scripts and examples)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 1
        self.hello: HelloReply = _check_hello(
            protocol.decode_reply(self._file.readline())
        )

    @classmethod
    def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7199,
        *,
        timeout: Optional[float] = 30.0,
    ) -> "ServiceClient":
        return cls(socket.create_connection((host, port), timeout=timeout))

    def _rpc(self, request: Request, reply_type: Type[R]) -> R:
        self._file.write(protocol.encode_request(request))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _expect(protocol.decode_reply(line), reply_type)

    def _take_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id

    def open(
        self,
        *,
        policy: str = "tree",
        cache_size: int = 1024,
        params: Optional[Dict[str, float]] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        model: Optional[str] = None,
    ) -> str:
        reply = self._rpc(
            OpenRequest(
                id=self._take_id(), policy=policy, cache_size=cache_size,
                params=params, policy_kwargs=dict(policy_kwargs or {}),
                model=model,
            ),
            OpenReply,
        )
        return reply.session

    def observe(self, session: str, block: int) -> PrefetchAdvice:
        reply = self._rpc(
            ObserveRequest(id=self._take_id(), session=session, block=block),
            ObserveReply,
        )
        return reply.advice

    def stats(self, session: str) -> Dict[str, Any]:
        reply = self._rpc(
            StatsRequest(id=self._take_id(), session=session), StatsReply
        )
        return reply.stats

    def close_session(self, session: str) -> Dict[str, Any]:
        reply = self._rpc(
            CloseRequest(id=self._take_id(), session=session), CloseReply
        )
        return reply.stats

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
