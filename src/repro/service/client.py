"""Clients for the advisory service: asyncio and blocking-socket flavours.

Both speak the :mod:`repro.service.protocol` NDJSON wire format, validate
the server's HELLO banner (protocol version), auto-number request ids, and
turn ``ok: false`` replies into :class:`ServiceError`.

:class:`AsyncServiceClient` is what the replay load generator uses — many
of them share one event loop.  :class:`ServiceClient` is a plain blocking
wrapper for scripts, examples, and interactive use.
:class:`ResilientAsyncClient` layers a :class:`RetryPolicy` on top:
transparent reconnect with bounded exponential backoff, session resume
from the server's detached table or checkpoint directory, and a journal
replay fallback that re-derives the session from scratch — asserting
bit-identical advice either way.
"""

from __future__ import annotations

import asyncio
import random
import socket
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Type, TypeVar

from repro.service import protocol
from repro.service.protocol import (
    CloseReply,
    CloseRequest,
    ErrorReply,
    HelloReply,
    ObserveReply,
    ObserveRequest,
    OpenReply,
    OpenRequest,
    ProtocolError,
    Reply,
    Request,
    StatsReply,
    StatsRequest,
)
from repro.service.session import PrefetchAdvice

R = TypeVar("R", bound=Reply)


class ServiceError(Exception):
    """The server answered with an error reply.

    ``retry_after_s`` carries the server's backoff hint when the reply
    had one (quota and overload rejections); ``None`` otherwise.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after_s = retry_after_s


def _expect(reply: Reply, reply_type: Type[R]) -> R:
    if isinstance(reply, ErrorReply):
        raise ServiceError(
            reply.error, reply.message, retry_after_s=reply.retry_after_s
        )
    if not isinstance(reply, reply_type):
        raise ProtocolError(
            f"expected {reply_type.__name__}, got {type(reply).__name__}"
        )
    return reply


def _check_hello(reply: Reply) -> HelloReply:
    hello = _expect(reply, HelloReply)
    if not (
        protocol.MIN_PROTOCOL_VERSION
        <= hello.protocol
        <= protocol.PROTOCOL_VERSION
    ):
        raise ProtocolError(
            f"server speaks protocol v{hello.protocol}, client speaks "
            f"v{protocol.MIN_PROTOCOL_VERSION}..v{protocol.PROTOCOL_VERSION}",
            code=protocol.E_BAD_VERSION,
        )
    return hello


class AsyncServiceClient:
    """One connection to the service, usable from an event loop."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: HelloReply,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.hello = hello
        self._next_id = 1

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7199,
        *,
        timeout: Optional[float] = None,
    ) -> "AsyncServiceClient":
        """Connect and consume the HELLO banner.

        ``timeout`` bounds the whole handshake (TCP connect + banner), so a
        listener that accepts but never speaks cannot hang the caller.
        """
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                host, port, limit=protocol.MAX_LINE_BYTES
            ),
            timeout,
        )
        try:
            line = await asyncio.wait_for(reader.readline(), timeout)
        except (asyncio.TimeoutError, TimeoutError):
            writer.close()
            raise TimeoutError(
                f"no HELLO from {host}:{port} within {timeout}s"
            ) from None
        hello = _check_hello(protocol.decode_reply(line))
        return cls(reader, writer, hello)

    async def _rpc(self, request: Request, reply_type: Type[R]) -> R:
        self._writer.write(protocol.encode_request(request))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _expect(protocol.decode_reply(line), reply_type)

    def _take_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id

    async def open_session(
        self,
        *,
        policy: str = "tree",
        cache_size: int = 1024,
        params: Optional[Dict[str, float]] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        model: Optional[str] = None,
        resume: Optional[str] = None,
        tenant: Optional[str] = None,
        trace: Optional[str] = None,
    ) -> OpenReply:
        """Create (or resume) a session; returns the full OPEN reply.

        ``model`` names a registry snapshot (``NAME`` or ``NAME@VERSION``)
        to start the session from; ``resume`` names a previous session id
        to re-open from the server's detached table or checkpoint
        directory.  ``tenant`` opens the session under a configured tenant
        (shared base model, per-tenant quotas); quota rejections surface
        as :class:`ServiceError` with code ``quota_exceeded``.  ``trace``
        rides a client-minted trace id on the OPEN so server-side spans
        join the caller's trace; the reply echoes the id the server bound
        (its own, head-sampled, when the client sent none).  The reply
        carries ``period`` (how many observations the session already
        holds), ``resumed``, and ``degraded``.
        """
        return await self._rpc(
            OpenRequest(
                id=self._take_id(), policy=policy, cache_size=cache_size,
                params=params, policy_kwargs=dict(policy_kwargs or {}),
                model=model, resume=resume, tenant=tenant, trace=trace,
            ),
            OpenReply,
        )

    async def open(self, **kwargs: Any) -> str:
        """Create a session; returns its server-assigned id.

        Same keywords as :meth:`open_session`, which also exposes the
        resume/degraded metadata of the reply.
        """
        return (await self.open_session(**kwargs)).session

    async def observe(
        self, session: str, block: int, *, seq: Optional[int] = None
    ) -> PrefetchAdvice:
        """Fold one reference; ``seq`` (the 0-based observation index)
        arms the server's duplicate detection for at-most-once folding
        under retries."""
        reply = await self._rpc(
            ObserveRequest(id=self._take_id(), session=session, block=block,
                           seq=seq),
            ObserveReply,
        )
        return reply.advice

    async def stats(self, session: str) -> Dict[str, Any]:
        reply = await self._rpc(
            StatsRequest(id=self._take_id(), session=session), StatsReply
        )
        return reply.stats

    async def server_stats(
        self, *, format: Optional[str] = None
    ) -> Dict[str, Any]:
        """Server-level snapshot: worker identity plus full metrics.

        Against a fleet gateway the same call returns fleet totals with a
        ``per_worker`` breakdown.  ``format="prometheus"`` adds an
        ``exposition`` key holding the metrics rendered in Prometheus
        text format.
        """
        reply = await self._rpc(
            StatsRequest(id=self._take_id(), session=None, format=format),
            StatsReply,
        )
        return reply.stats

    async def close_session(self, session: str) -> Dict[str, Any]:
        reply = await self._rpc(
            CloseRequest(id=self._take_id(), session=session), CloseReply
        )
        return reply.stats

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()


class ServiceClient:
    """Blocking client over a plain socket (scripts and examples)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 1
        self.hello: HelloReply = _check_hello(
            protocol.decode_reply(self._file.readline())
        )

    @classmethod
    def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7199,
        *,
        timeout: Optional[float] = 30.0,
    ) -> "ServiceClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        # create_connection's timeout guards the connect; re-arm it
        # explicitly so every later recv/send is bounded too — a server
        # that accepts and then hangs must not wedge the caller forever.
        sock.settimeout(timeout)
        return cls(sock)

    def _rpc(self, request: Request, reply_type: Type[R]) -> R:
        try:
            self._file.write(protocol.encode_request(request))
            self._file.flush()
            line = self._file.readline()
        except socket.timeout:
            raise TimeoutError(
                f"no reply to {request.cmd!r} within "
                f"{self._sock.gettimeout()}s"
            ) from None
        if not line:
            raise ConnectionError("server closed the connection")
        return _expect(protocol.decode_reply(line), reply_type)

    def _take_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id

    def open(
        self,
        *,
        policy: str = "tree",
        cache_size: int = 1024,
        params: Optional[Dict[str, float]] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> str:
        reply = self._rpc(
            OpenRequest(
                id=self._take_id(), policy=policy, cache_size=cache_size,
                params=params, policy_kwargs=dict(policy_kwargs or {}),
                model=model, tenant=tenant,
            ),
            OpenReply,
        )
        return reply.session

    def observe(self, session: str, block: int) -> PrefetchAdvice:
        reply = self._rpc(
            ObserveRequest(id=self._take_id(), session=session, block=block),
            ObserveReply,
        )
        return reply.advice

    def stats(self, session: str) -> Dict[str, Any]:
        reply = self._rpc(
            StatsRequest(id=self._take_id(), session=session), StatsReply
        )
        return reply.stats

    def server_stats(
        self, *, format: Optional[str] = None
    ) -> Dict[str, Any]:
        """Server-level snapshot (see ``AsyncServiceClient.server_stats``)."""
        reply = self._rpc(
            StatsRequest(id=self._take_id(), session=None, format=format),
            StatsReply,
        )
        return reply.stats

    def close_session(self, session: str) -> Dict[str, Any]:
        reply = self._rpc(
            CloseRequest(id=self._take_id(), session=session), CloseReply
        )
        return reply.stats

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# --------------------------------------------------------------- resilience


class ResumeParityError(Exception):
    """A resumed/replayed session disagreed with the recorded advice.

    This is the one failure retrying cannot fix: the server state is not
    the one our journal was folded into, so continuing would silently
    serve advice from a different history.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter, plus two deadlines.

    ``per_rpc_timeout_s`` bounds each individual attempt (connect,
    handshake, or one request/reply round trip); ``overall_deadline_s``
    bounds the whole retry loop for one logical call, reconnects and
    backoff sleeps included.  ``seed`` pins the jitter for reproducible
    tests; leave ``None`` for real deployments.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.1
    per_rpc_timeout_s: Optional[float] = 10.0
    overall_deadline_s: Optional[float] = 60.0
    seed: Optional[int] = None

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (0-based): ``base * 2**attempt``
        capped at ``max_delay_s``, spread by ``±jitter`` to avoid retry
        stampedes when many clients lose the same server."""
        delay = min(self.base_delay_s * (2.0 ** attempt), self.max_delay_s)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(delay, 0.0)


#: Transport failures worth retrying.  ServiceError is deliberately absent:
#: the server answered, so the connection works and the error is semantic.
#: ProtocolError IS retryable here: an undecodable line means the byte
#: stream is corrupt (truncation, garbage injection), and the fix is the
#: same as for a reset — reconnect and resume.
_RETRYABLE = (ConnectionError, TimeoutError, asyncio.TimeoutError,
              asyncio.IncompleteReadError, EOFError, OSError, ProtocolError)

#: Backstop on consecutive E_OVERLOAD waits when the policy has no overall
#: deadline to bound them (overload waits do not consume retry attempts).
_MAX_OVERLOAD_WAITS = 64


class ResilientAsyncClient:
    """One logical advisory session that survives transport failures.

    Wraps :class:`AsyncServiceClient` with a :class:`RetryPolicy` and a
    client-side journal of every folded reference.  On a connection
    failure it reconnects with backoff and re-opens the session in the
    cheapest way that preserves decision parity:

    1. ``OPEN resume=<old id>`` — the server restores the session from its
       detached table or checkpoint directory; only the journal tail past
       the restored period is replayed.
    2. Cold restart — a fresh OPEN with the original parameters and a full
       journal replay.  Session determinism makes this exact, just slower.

    Every replayed observation is checked against the advice recorded the
    first time; any mismatch raises :class:`ResumeParityError`.  Duplicate
    folding of the reference that was in flight when the connection died
    is prevented by the protocol-v3 ``seq`` field: the server answers a
    repeat of the last folded observation from cache.

    The journal lives in client memory for the life of the session, which
    is the right trade for replay/benchmark traces; advice objects are
    kept alongside for the parity check.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7199,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random(self.retry.seed)
        self._client: Optional[AsyncServiceClient] = None
        self._open_kwargs: Optional[Dict[str, Any]] = None
        self._session_id: Optional[str] = None
        self._journal: List[Any] = []
        self._advices: List[PrefetchAdvice] = []
        self._force_cold = False
        self.degraded = False
        #: Trace id the server bound to this session (None = unsampled).
        #: Carried on every resume / cold restart so the session's spans
        #: keep one lineage across reconnects and gateway failovers.
        self.trace: Optional[str] = None
        # resilience telemetry, summed into the replay report
        self.retries = 0
        self.resumes = 0
        self.cold_restarts = 0
        self.overload_backoffs = 0

    # ------------------------------------------------------------ plumbing

    @property
    def session_id(self) -> Optional[str]:
        return self._session_id

    @property
    def observations(self) -> int:
        return len(self._journal)

    async def _teardown(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                await client.aclose()
            except OSError:
                pass

    async def _ensure_session(self) -> AsyncServiceClient:
        timeout = self.retry.per_rpc_timeout_s
        if self._client is None:
            self._client = await AsyncServiceClient.connect(
                self.host, self.port, timeout=timeout
            )
            if self._open_kwargs is not None:
                await self._reopen(self._client)
        return self._client

    async def _reopen(self, client: AsyncServiceClient) -> None:
        """Re-establish the logical session on a fresh connection."""
        timeout = self.retry.per_rpc_timeout_s
        reply: Optional[OpenReply] = None
        if self._session_id is not None and not self._force_cold:
            try:
                # Carry the tenant on the resume so a fresh worker (whose
                # evicted-session table is empty) can rebind the restored
                # session to its shared base and quota accounting.
                reply = await asyncio.wait_for(
                    client.open_session(
                        resume=self._session_id,
                        tenant=(self._open_kwargs or {}).get("tenant"),
                        trace=self.trace,
                    ),
                    timeout,
                )
                self.resumes += 1
            except ServiceError:
                reply = None  # nothing to resume from; fall back to cold
        if reply is None:
            kwargs = dict(self._open_kwargs)
            if self.trace is not None:
                # Keep the original lineage even across a cold restart:
                # the rebuilt session is the same logical request path.
                kwargs["trace"] = self.trace
            reply = await asyncio.wait_for(
                client.open_session(**kwargs), timeout
            )
            if self._journal:
                self.cold_restarts += 1
        self._force_cold = False
        self._session_id = reply.session
        if reply.trace is not None:
            self.trace = reply.trace
        self.degraded = self.degraded or reply.degraded
        folded = len(self._journal)
        if reply.period > folded + 1:
            raise ResumeParityError(
                f"server resumed at period {reply.period} but the journal "
                f"only holds {folded} observations"
            )
        # Replay the tail the restored state has not seen.  (period may be
        # folded+1: the server folded the in-flight reference before the
        # reply was lost; the seq field dedups it on the next observe.)
        for index in range(min(reply.period, folded), folded):
            advice = await asyncio.wait_for(
                client.observe(reply.session, self._journal[index], seq=index),
                timeout,
            )
            if advice != self._advices[index]:
                raise ResumeParityError(
                    f"replayed observation {index} "
                    f"(block {self._journal[index]!r}) returned different "
                    "advice than the original session"
                )

    async def _call(self, label: str, fn: Any) -> Any:
        """Run ``await fn(client)`` with reconnect-and-retry semantics."""
        policy = self.retry
        loop = asyncio.get_running_loop()
        started = loop.time()
        last_exc: Optional[BaseException] = None
        attempt = 0
        overload_waits = 0
        while attempt < policy.max_attempts:
            if (
                policy.overall_deadline_s is not None
                and loop.time() - started > policy.overall_deadline_s
            ):
                raise TimeoutError(
                    f"{label}: overall deadline "
                    f"({policy.overall_deadline_s}s) exceeded"
                ) from last_exc
            try:
                client = await self._ensure_session()
                return await asyncio.wait_for(
                    fn(client), policy.per_rpc_timeout_s
                )
            except ResumeParityError:
                raise
            except ServiceError as exc:
                if exc.code == protocol.E_OVERLOAD:
                    # Backoff-not-fault: the server is healthy, just full.
                    # Honor its retry_after_s hint, keep the connection,
                    # and do not consume a retry attempt — only the
                    # overall deadline bounds how long we wait for
                    # admission (with a wait-count backstop when no
                    # deadline is configured).
                    self.overload_backoffs += 1
                    overload_waits += 1
                    if (
                        policy.overall_deadline_s is None
                        and overload_waits >= _MAX_OVERLOAD_WAITS
                    ):
                        raise
                    last_exc = exc
                    if self._session_id is None:
                        # The OPEN itself was shed; drop the half-built
                        # connection so the next pass re-runs the open.
                        await self._teardown()
                    delay = exc.retry_after_s
                    if delay is None or delay <= 0:
                        delay = policy.delay_s(
                            min(overload_waits - 1, 8), self._rng
                        )
                    await asyncio.sleep(delay)
                    continue
                if exc.code != protocol.E_SEQ:
                    raise
                # Our idea of the period diverged from the server's (e.g. a
                # stale checkpoint was resumed under our id by someone
                # else).  Rebuild from the journal, which is ground truth.
                last_exc = exc
                self._force_cold = True
            except _RETRYABLE as exc:
                last_exc = exc
            self.retries += 1
            await self._teardown()
            await asyncio.sleep(policy.delay_s(attempt, self._rng))
            attempt += 1
        raise ConnectionError(
            f"{label} failed after {policy.max_attempts} attempts"
        ) from last_exc

    # ------------------------------------------------------------- session

    async def open(self, **open_kwargs: Any) -> str:
        """Open the logical session; keywords as
        :meth:`AsyncServiceClient.open_session` (minus ``resume``)."""
        if self._open_kwargs is not None:
            raise ServiceError(
                protocol.E_BAD_REQUEST,
                "ResilientAsyncClient manages a single session; "
                "open() may only be called once",
            )
        self._open_kwargs = dict(open_kwargs)

        async def _open(client: AsyncServiceClient) -> str:
            # _ensure_session already (re)opened the session as a side
            # effect of the stored kwargs; nothing more to send.
            assert self._session_id is not None
            return self._session_id

        return await self._call("open", _open)

    async def observe(self, block: Any) -> PrefetchAdvice:
        """Fold one reference, surviving resets/timeouts in the middle."""
        if self._open_kwargs is None:
            raise ServiceError(protocol.E_BAD_REQUEST,
                               "no session: call open() first")
        seq = len(self._journal)

        async def _observe(client: AsyncServiceClient) -> PrefetchAdvice:
            return await client.observe(self._session_id, block, seq=seq)

        advice = await self._call(f"observe[{seq}]", _observe)
        self._journal.append(block)
        self._advices.append(advice)
        return advice

    async def stats(self) -> Dict[str, Any]:
        async def _stats(client: AsyncServiceClient) -> Dict[str, Any]:
            return await client.stats(self._session_id)

        return await self._call("stats", _stats)

    async def close_session(self) -> Dict[str, Any]:
        async def _close(client: AsyncServiceClient) -> Dict[str, Any]:
            return await client.close_session(self._session_id)

        stats = await self._call("close", _close)
        self._open_kwargs = None
        self._session_id = None
        return stats

    async def aclose(self) -> None:
        await self._teardown()

    async def __aenter__(self) -> "ResilientAsyncClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()
