"""First-level cache filtering of reference streams.

The cello and snake traces are *disk-level* captures: the traced machines
had 30 MB and 5 MB file buffer caches, so references that hit in those
caches never reached the disk and are absent from the traces (Table 1).
To emulate that capture point, the synthetic generators produce the full
file-level reference stream and pass it through this filter: an LRU cache
of the original system's size whose *misses* form the resulting disk-level
trace.

This is what makes the synthetic cello behave like the real one in the way
the paper relies on - the L1 strips the easy locality, leaving a residual
stream that is hard to predict (Section 9.4 attributes cello's low 35.78%
prediction accuracy exactly to this effect).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.cache.lru import LRUCache
from repro.traces.base import Trace


def iter_l1_misses(blocks: Iterable[int], l1_blocks: int) -> Iterator[int]:
    """Yield the references that miss in an LRU cache of ``l1_blocks``.

    Missed blocks are inserted (demand caching), exactly like the original
    traced systems' file buffer caches.
    """
    if l1_blocks < 0:
        raise ValueError(f"l1_blocks must be >= 0, got {l1_blocks!r}")
    if l1_blocks == 0:
        yield from blocks
        return
    cache = LRUCache(capacity=l1_blocks)
    for block in blocks:
        if not cache.access(block):
            cache.insert(block)
            yield block


def l1_filter(blocks: Iterable[int], l1_blocks: int) -> List[int]:
    """Materialised version of :func:`iter_l1_misses`."""
    return list(iter_l1_misses(blocks, l1_blocks))


def filter_trace(trace: Trace, l1_blocks: int, *, name: str | None = None) -> Trace:
    """Filter a full trace through an L1 cache, keeping metadata."""
    filtered = l1_filter(trace.blocks, l1_blocks)
    return Trace(
        name=name or f"{trace.name}-l1",
        blocks=filtered,
        description=(
            f"{trace.description} (filtered through a {l1_blocks}-block L1 cache)"
        ),
        l1_cache_blocks=l1_blocks,
        seed=trace.seed,
        params={**trace.params, "l1_blocks": l1_blocks},
    )
