"""Trace container, I/O, L1 filtering, and the synthetic paper workloads."""

from repro.traces.base import Trace
from repro.traces.filters import filter_trace, iter_l1_misses, l1_filter
from repro.traces.importers import CsvFormat, from_arrays, from_requests, load_csv
from repro.traces.io import load, load_npz, load_text, save, save_npz, save_text
from repro.traces.synthetic import (
    TRACE_NAMES,
    make_cad,
    make_cello,
    make_paper_suite,
    make_sitar,
    make_snake,
    make_trace,
)

__all__ = [
    "TRACE_NAMES",
    "Trace",
    "CsvFormat",
    "from_arrays",
    "from_requests",
    "filter_trace",
    "iter_l1_misses",
    "l1_filter",
    "load",
    "load_csv",
    "load_npz",
    "load_text",
    "make_cad",
    "make_cello",
    "make_paper_suite",
    "make_sitar",
    "make_snake",
    "make_trace",
    "save",
    "save_npz",
    "save_text",
]
