"""Importing externally captured traces.

Real block traces come in per-request records, not per-block streams; the
paper's model wants a stream of single-block references (Section 3: "an
application issues I/O requests as single block requests").  This module
converts the common formats:

* :func:`from_requests` - (offset, size) extents expanded to block streams;
* :func:`load_csv` - delimited files in the SPC-trace spirit
  (``timestamp, device, offset, size, opcode``), with configurable column
  positions, byte- or block-addressed offsets, and read/write filtering;
* :func:`from_arrays` - numpy offset/size arrays (fast path).

All produce :class:`~repro.traces.base.Trace` objects directly usable by
the simulator and the characterisation tools.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.traces.base import Trace

PathLike = Union[str, "os.PathLike[str]"]


@dataclass(frozen=True)
class CsvFormat:
    """Column layout of a delimited request trace.

    Column indices are 0-based.  ``opcode_col`` is optional; when present,
    only rows whose opcode (upper-cased, first character) is in
    ``read_opcodes`` are kept - the paper's model is read prefetching.
    """

    offset_col: int = 2
    size_col: int = 3
    opcode_col: Optional[int] = 4
    read_opcodes: str = "R"
    delimiter: str = ","
    offsets_in_bytes: bool = True
    sizes_in_bytes: bool = True
    skip_header_rows: int = 0

    def __post_init__(self) -> None:
        if self.offset_col < 0 or self.size_col < 0:
            raise ValueError("column indices must be >= 0")
        if self.skip_header_rows < 0:
            raise ValueError("skip_header_rows must be >= 0")


def from_requests(
    requests: Iterable[Tuple[int, int]],
    *,
    block_size: int = 8192,
    name: str = "imported",
    offsets_in_bytes: bool = True,
    sizes_in_bytes: bool = True,
) -> Trace:
    """Expand (offset, size) request extents into a block stream.

    A request covering bytes ``[offset, offset + size)`` touches every
    block its extent overlaps; zero-sized requests touch one block
    (metadata probes).
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size!r}")
    blocks: List[int] = []
    for offset, size in requests:
        if offset < 0 or size < 0:
            raise ValueError(f"bad request ({offset!r}, {size!r})")
        start = offset // block_size if offsets_in_bytes else offset
        if sizes_in_bytes:
            if size == 0:
                count = 1
            else:
                end_byte = (offset if offsets_in_bytes else offset * block_size) + size
                count = -(-(end_byte) // block_size) - start
                count = max(count, 1)
        else:
            count = max(size, 1)
        blocks.extend(range(start, start + count))
    return Trace(
        name=name,
        blocks=blocks,
        description="imported request trace",
        params={"block_size": block_size},
    )


def from_arrays(
    offsets: np.ndarray,
    sizes: np.ndarray,
    *,
    block_size: int = 8192,
    name: str = "imported",
) -> Trace:
    """Vectorised request expansion from byte-offset / byte-size arrays."""
    if offsets.shape != sizes.shape:
        raise ValueError("offsets and sizes must have matching shapes")
    starts = offsets // block_size
    ends = (offsets + np.maximum(sizes, 1) + block_size - 1) // block_size
    counts = np.maximum(ends - starts, 1)
    total = int(counts.sum())
    out = np.empty(total, dtype=np.int64)
    pos = 0
    for start, count in zip(starts.tolist(), counts.tolist()):
        out[pos : pos + count] = np.arange(start, start + count)
        pos += count
    return Trace(
        name=name,
        blocks=out,
        description="imported request trace",
        params={"block_size": block_size},
    )


def load_csv(
    path: PathLike,
    *,
    fmt: CsvFormat = CsvFormat(),
    block_size: int = 8192,
    name: Optional[str] = None,
    max_rows: Optional[int] = None,
) -> Trace:
    """Read a delimited request trace and expand it to a block stream."""
    requests: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.reader(fh, delimiter=fmt.delimiter)
        for i, row in enumerate(reader):
            if i < fmt.skip_header_rows:
                continue
            if max_rows is not None and len(requests) >= max_rows:
                break
            if not row or row[0].lstrip().startswith("#"):
                continue
            if fmt.opcode_col is not None:
                opcode = row[fmt.opcode_col].strip().upper()[:1]
                if opcode not in fmt.read_opcodes:
                    continue
            offset = int(float(row[fmt.offset_col]))
            size = int(float(row[fmt.size_col]))
            requests.append((offset, size))
    trace = from_requests(
        requests,
        block_size=block_size,
        name=name or os.path.splitext(os.path.basename(os.fspath(path)))[0],
        offsets_in_bytes=fmt.offsets_in_bytes,
        sizes_in_bytes=fmt.sizes_in_bytes,
    )
    return trace
