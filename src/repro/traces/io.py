"""Reading and writing traces.

Two formats:

* **text** (``.trace``): a human-greppable format with ``# key: value``
  header lines followed by one block id per line.  Round-trips all metadata.
* **npz** (``.npz``): compressed numpy archive for large traces; an order of
  magnitude smaller and faster to load.

Both are deliberately simple so externally captured traces (e.g. real block
traces converted by a one-line awk script) can be fed to the simulator.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.traces.base import Trace

PathLike = Union[str, "os.PathLike[str]"]

_HEADER_KEYS = ("name", "description", "l1_cache_blocks", "seed", "params")


class TraceFormatError(ValueError):
    """A trace file that cannot be parsed: ``path:line: what went wrong``.

    Subclasses :class:`ValueError` so existing ``except ValueError`` call
    sites (the CLI's workload loader) keep working; the message is a single
    human-readable line, never a raw traceback from the JSON or int parser.
    """


def save_text(trace: Trace, path: PathLike) -> None:
    """Write a trace in the text format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# name: {trace.name}\n")
        fh.write(f"# description: {trace.description}\n")
        fh.write(f"# l1_cache_blocks: {json.dumps(trace.l1_cache_blocks)}\n")
        fh.write(f"# seed: {json.dumps(trace.seed)}\n")
        fh.write(f"# params: {json.dumps(trace.params, sort_keys=True)}\n")
        for block in trace.blocks:
            fh.write(f"{int(block)}\n")


def load_text(path: PathLike) -> Trace:
    """Read a trace in the text format.

    Header lines are optional; a bare file of one integer per line loads as
    an anonymous trace named after the file.
    """
    meta = {
        "name": os.path.splitext(os.path.basename(os.fspath(path)))[0],
        "description": "",
        "l1_cache_blocks": None,
        "seed": None,
        "params": {},
    }
    blocks = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                key, sep, value = body.partition(":")
                key = key.strip()
                if sep and key in _HEADER_KEYS:
                    value = value.strip()
                    if key in ("l1_cache_blocks", "seed", "params"):
                        try:
                            meta[key] = json.loads(value) if value else None
                        except json.JSONDecodeError:
                            raise TraceFormatError(
                                f"{os.fspath(path)}:{lineno}: header "
                                f"{key!r} is not valid JSON: {value!r}"
                            ) from None
                    else:
                        meta[key] = value
                continue
            try:
                blocks.append(int(line))
            except ValueError:
                raise TraceFormatError(
                    f"{os.fspath(path)}:{lineno}: expected one integer "
                    f"block id per line, got {line!r}"
                ) from None
    return Trace(
        name=str(meta["name"]),
        blocks=blocks,
        description=str(meta["description"]),
        l1_cache_blocks=meta["l1_cache_blocks"],
        seed=meta["seed"],
        params=meta["params"] or {},
    )


def save_npz(trace: Trace, path: PathLike) -> None:
    """Write a trace as a compressed numpy archive."""
    np.savez_compressed(
        path,
        blocks=trace.as_array(),
        meta=np.array(
            json.dumps(
                {
                    "name": trace.name,
                    "description": trace.description,
                    "l1_cache_blocks": trace.l1_cache_blocks,
                    "seed": trace.seed,
                    "params": trace.params,
                },
                sort_keys=True,
            )
        ),
    )


def load_npz(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as archive:
        blocks = archive["blocks"]
        meta = json.loads(str(archive["meta"]))
    return Trace(
        name=meta["name"],
        blocks=blocks,
        description=meta["description"],
        l1_cache_blocks=meta["l1_cache_blocks"],
        seed=meta["seed"],
        params=meta["params"],
    )


def save(trace: Trace, path: PathLike) -> None:
    """Format-dispatching save: ``.npz`` -> numpy, anything else -> text."""
    if os.fspath(path).endswith(".npz"):
        save_npz(trace, path)
    else:
        save_text(trace, path)


def load(path: PathLike) -> Trace:
    """Format-dispatching load, by file extension."""
    if os.fspath(path).endswith(".npz"):
        return load_npz(path)
    return load_text(path)
