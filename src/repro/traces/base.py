"""Trace container used by the simulator and the workload generators.

A trace is an ordered sequence of integer block references plus the metadata
Table 1 reports for each workload: a name, a short description, the number
of references, and - for the disk-level traces - the size of the first-level
file buffer cache that the reference stream has already been filtered
through (cello: 30 MB, snake: 5 MB).  That L1 size matters when interpreting
results: the paper attributes cello's low predictability to its 30 MB L1
having absorbed most locality (Section 9.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np


@dataclass
class Trace:
    """An immutable-by-convention block reference stream with metadata."""

    name: str
    blocks: Sequence[int]
    description: str = ""
    l1_cache_blocks: Optional[int] = None
    """Size (in blocks) of the first-level cache the stream was filtered
    through, or ``None`` for complete (unfiltered) reference streams."""
    seed: Optional[int] = None
    params: Dict[str, object] = field(default_factory=dict)
    """Generator parameters, recorded for reproducibility."""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("trace name must be non-empty")
        if isinstance(self.blocks, np.ndarray):
            if self.blocks.ndim != 1:
                raise ValueError("block array must be one-dimensional")
            if not np.issubdtype(self.blocks.dtype, np.integer):
                raise ValueError(
                    f"block array must be integer-typed, got {self.blocks.dtype}"
                )

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[int]:
        return iter(self.blocks)

    def __getitem__(self, index):
        return self.blocks[index]

    @property
    def num_references(self) -> int:
        return len(self.blocks)

    @property
    def unique_blocks(self) -> int:
        return len(set(self.as_list()))

    def as_list(self) -> List[int]:
        """Blocks as a plain Python list of ints (the simulator's fast path)."""
        if isinstance(self.blocks, list):
            return self.blocks
        if isinstance(self.blocks, np.ndarray):
            return self.blocks.tolist()
        return list(self.blocks)

    def as_array(self) -> np.ndarray:
        if isinstance(self.blocks, np.ndarray):
            return self.blocks
        return np.asarray(self.blocks, dtype=np.int64)

    def head(self, n: int) -> "Trace":
        """A shortened copy with the first ``n`` references (quick tests)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n!r}")
        return Trace(
            name=self.name,
            blocks=self.as_list()[:n],
            description=self.description,
            l1_cache_blocks=self.l1_cache_blocks,
            seed=self.seed,
            params={**self.params, "head": n},
        )

    def sequentiality(self) -> float:
        """Fraction of references whose block is predecessor + 1.

        A one-number proxy for how much a one-block-lookahead scheme can
        help; sitar/snake score high, CAD near zero.
        """
        arr = self.as_array()
        if arr.size < 2:
            return 0.0
        return float(np.mean(arr[1:] == arr[:-1] + 1))

    def summary(self) -> Dict[str, object]:
        """Table 1-style row for this trace."""
        return {
            "trace": self.name,
            "references": self.num_references,
            "unique_blocks": self.unique_blocks,
            "l1_cache_blocks": self.l1_cache_blocks,
            "sequentiality": round(self.sequentiality(), 4),
            "description": self.description,
        }
