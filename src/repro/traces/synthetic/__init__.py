"""Synthetic stand-ins for the paper's four traces, plus building blocks.

The original traces (HP cello/snake, Duke CAD, Kentucky sitar) are not
redistributable; each ``make_*`` generator is calibrated to reproduce the
workload *properties* the paper's experiments depend on (see each module's
docstring and DESIGN.md Section 2).

:func:`make_trace` builds any of them by name; :data:`TRACE_NAMES` lists
them in the paper's presentation order (Table 1).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.traces.base import Trace
from repro.traces.synthetic.cad import make_cad
from repro.traces.synthetic.cello import CELLO_L1_BLOCKS, make_cello
from repro.traces.synthetic.markov import StickyWalk, random_object_graph, scatter_ids
from repro.traces.synthetic.mixer import interleave, iter_interleaved
from repro.traces.synthetic.sequential import FileSpace, random_file_sizes
from repro.traces.synthetic.sitar import make_sitar
from repro.traces.synthetic.snake import SNAKE_L1_BLOCKS, make_snake
from repro.traces.synthetic.zipf import ZipfSampler

_GENERATORS: Dict[str, Callable[..., Trace]] = {
    "cello": make_cello,
    "snake": make_snake,
    "cad": make_cad,
    "sitar": make_sitar,
}

#: Table 1 order.
TRACE_NAMES: List[str] = list(_GENERATORS)


def make_trace(name: str, num_references: int | None = None, seed: int = 1999, **kwargs) -> Trace:
    """Build one of the four paper workloads by name."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        known = ", ".join(TRACE_NAMES)
        raise ValueError(f"unknown trace {name!r}; known traces: {known}")
    if num_references is None:
        return generator(seed=seed, **kwargs)
    return generator(num_references, seed=seed, **kwargs)


def make_paper_suite(num_references: int = 120_000, seed: int = 1999) -> Dict[str, Trace]:
    """All four workloads at a common length, keyed by name."""
    return {
        name: make_trace(name, num_references=num_references, seed=seed)
        for name in TRACE_NAMES
    }


__all__ = [
    "CELLO_L1_BLOCKS",
    "FileSpace",
    "SNAKE_L1_BLOCKS",
    "StickyWalk",
    "TRACE_NAMES",
    "ZipfSampler",
    "interleave",
    "iter_interleaved",
    "make_cad",
    "make_cello",
    "make_paper_suite",
    "make_sitar",
    "make_snake",
    "make_trace",
    "random_file_sizes",
    "random_object_graph",
    "scatter_ids",
]
