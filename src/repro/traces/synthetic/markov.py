"""Sticky weighted random walks over object graphs.

The CAD workload is object references produced by a tool repeatedly walking
a design database (a netlist-like object graph).  Two properties of such
reference streams matter for the paper's results:

* successive traversals mostly repeat the previous path (Table 3 measures
  ~69% last-visited-child repeats for CAD), with occasional divergence onto
  a sibling branch; and
* object identifiers carry no sequential structure (one-block lookahead is
  useless, Figure 6's CAD panel).

:class:`StickyWalk` models this directly: each node has a set of successors
with static preference weights, and the walker re-takes the node's
previously chosen successor with probability ``stickiness``, otherwise
re-samples from the weights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


class StickyWalk:
    """A weighted random walk that tends to repeat its previous choices."""

    def __init__(
        self,
        successors: Dict[int, Sequence[int]],
        rng: np.random.Generator,
        *,
        stickiness: float = 0.7,
        weight_alpha: float = 1.0,
    ) -> None:
        """``successors`` maps node -> candidate next nodes (non-empty lists).

        ``weight_alpha`` shapes the static preference over successors
        (higher = more skew towards the first successors); ``stickiness`` is
        the probability of repeating the previously taken edge.
        """
        if not (0.0 <= stickiness <= 1.0):
            raise ValueError(f"stickiness must be in [0, 1], got {stickiness!r}")
        self._rng = rng
        self.stickiness = stickiness
        self._successors: Dict[int, np.ndarray] = {}
        self._weights: Dict[int, np.ndarray] = {}
        self._last_choice: Dict[int, int] = {}
        for node, succ in successors.items():
            if len(succ) == 0:
                raise ValueError(f"node {node!r} has no successors")
            arr = np.asarray(list(succ), dtype=np.int64)
            ranks = np.arange(1, len(arr) + 1, dtype=np.float64)
            weights = 1.0 / np.power(ranks, weight_alpha)
            weights /= weights.sum()
            self._successors[node] = arr
            self._weights[node] = weights

    def has_node(self, node: int) -> bool:
        return node in self._successors

    def step(self, node: int) -> int:
        """Choose the next node from ``node``."""
        succ = self._successors.get(node)
        if succ is None:
            raise KeyError(f"node {node!r} has no successor table")
        last = self._last_choice.get(node)
        if last is not None and self._rng.random() < self.stickiness:
            return last
        idx = int(self._rng.choice(len(succ), p=self._weights[node]))
        choice = int(succ[idx])
        self._last_choice[node] = choice
        return choice

    def walk(self, start: int, length: int) -> List[int]:
        """A walk of ``length`` nodes starting at (and including) ``start``.

        Stops early if it reaches a node without successors.
        """
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length!r}")
        path = [start]
        node = start
        for _ in range(length - 1):
            if node not in self._successors:
                break
            node = self.step(node)
            path.append(node)
        return path


def random_object_graph(
    rng: np.random.Generator,
    n_nodes: int,
    *,
    out_degree_low: int = 2,
    out_degree_high: int = 5,
    locality: float = 0.8,
) -> Dict[int, List[int]]:
    """A random graph resembling a design hierarchy.

    Each node gets 2-5 successors; with probability ``locality`` a successor
    is drawn from a nearby id window (sub-module cohesion), otherwise
    uniformly (cross-hierarchy references).  Node ids are *logical*; callers
    scatter them into block numbers to destroy sequential adjacency.
    """
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be >= 2, got {n_nodes!r}")
    if not (0.0 <= locality <= 1.0):
        raise ValueError(f"locality must be in [0, 1], got {locality!r}")
    graph: Dict[int, List[int]] = {}
    window = max(4, n_nodes // 64)
    for node in range(n_nodes):
        degree = int(rng.integers(out_degree_low, out_degree_high + 1))
        succ: List[int] = []
        for _ in range(degree):
            if rng.random() < locality:
                lo = max(0, node - window)
                hi = min(n_nodes, node + window + 1)
                cand = int(rng.integers(lo, hi))
            else:
                cand = int(rng.integers(0, n_nodes))
            if cand != node and cand not in succ:
                succ.append(cand)
        if not succ:
            succ.append((node + 1) % n_nodes)
        graph[node] = succ
    return graph


def scatter_ids(
    rng: np.random.Generator, n_nodes: int, *, span_factor: int = 16
) -> np.ndarray:
    """Map logical ids to scattered block numbers with no +1 adjacency.

    Draws ``n_nodes`` distinct blocks from a span ``span_factor`` times
    larger and shuffles, so consecutive logical ids land far apart.
    """
    if span_factor < 2:
        raise ValueError(f"span_factor must be >= 2, got {span_factor!r}")
    span = n_nodes * span_factor
    blocks = rng.choice(span, size=n_nodes, replace=False)
    return blocks.astype(np.int64)
