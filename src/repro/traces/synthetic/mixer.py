"""Interleaving multiple per-process reference streams.

Timesharing and file-server traces are the superposition of many concurrent
activities; the interleaving is what destroys much of the per-process
sequentiality at the disk.  The scheduler model: pick a stream by weight,
let it run for a geometrically distributed burst of references, switch -
bursts preserve short sequential runs while still mixing the streams.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List, Sequence

import numpy as np


def iter_interleaved(
    rng: np.random.Generator,
    streams: Sequence[Iterator[int]],
    *,
    weights: Sequence[float] | None = None,
    mean_burst: float = 4.0,
) -> Iterator[int]:
    """Lazily merge ``streams``; ends only when every stream is exhausted.

    Infinite input streams give an infinite merged stream - cap with
    ``itertools.islice`` or :func:`interleave`.
    """
    if mean_burst < 1.0:
        raise ValueError(f"mean_burst must be >= 1, got {mean_burst!r}")
    live: List[Iterator[int]] = list(streams)
    if weights is None:
        w = np.ones(len(live), dtype=np.float64)
    else:
        if len(weights) != len(live):
            raise ValueError("weights must match streams")
        w = np.asarray(weights, dtype=np.float64)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and not all zero")

    p_switch = 1.0 / mean_burst
    while live:
        probs = w / w.sum()
        idx = int(rng.choice(len(live), p=probs))
        stream = live[idx]
        while True:
            try:
                yield next(stream)
            except StopIteration:
                live.pop(idx)
                w = np.delete(w, idx)
                break
            if rng.random() < p_switch:
                break


def interleave(
    rng: np.random.Generator,
    streams: Sequence[Iterator[int]],
    total: int,
    *,
    weights: Sequence[float] | None = None,
    mean_burst: float = 4.0,
) -> List[int]:
    """Merge ``streams`` into one trace of at most ``total`` references."""
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total!r}")
    merged = iter_interleaved(rng, streams, weights=weights, mean_burst=mean_burst)
    return list(islice(merged, total))
