"""Synthetic cello workload: disk-block trace of a timesharing system.

Stands in for the HP "cello" trace (Table 1: 3,530,115 disk-block
references captured below a 30 MB file buffer cache).  Paper signatures
this generator is calibrated against:

* the 30 MB L1 "captures most of the locality in the trace", leaving the
  residual disk stream hard to predict - prediction accuracy is the lowest
  of all traces at 35.8% (Table 2, Section 9.4), and the tree scheme gains
  comparatively little;
* moderate sequentiality survives the L1 (next-limit reduces misses by up
  to ~32%, Figure 6) because long sequential runs blow through the L1;
* the last-visited-child repeat rate is the lowest of the four, 24.4%
  (Table 3);
* high absolute miss rates (the best scheme in Table 4 still misses ~77%).

The stream is a residual-stream mixture (see
:mod:`repro.traces.synthetic.components`): batch-like sequential file
(re-)scans, a Zipf point-read band wider than the simulated caches, and a
large cold component - a timesharing disk stream is mostly traffic the
upstream cache could not hold.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List

import numpy as np

from repro.traces.base import Trace
from repro.traces.synthetic.components import (
    chain_stream,
    cold_scan_stream,
    cold_stream,
    point_stream,
    scan_stream,
)
from repro.traces.synthetic.mixer import iter_interleaved
from repro.traces.synthetic.sequential import FileSpace, random_file_sizes
from repro.traces.synthetic.zipf import ZipfSampler

#: 30 MB at 8 KB blocks (Table 1) - recorded as trace metadata.
CELLO_L1_BLOCKS = 3840


def make_cello(
    num_references: int = 120_000,
    seed: int = 1999,
    *,
    n_scan_files: int = 600,
    median_file_blocks: int = 12,
    scan_alpha: float = 0.80,
    n_chains: int = 500,
    chain_length: int = 16,
    chain_alpha: float = 0.90,
    chain_noise: float = 0.05,
    point_blocks: int = 9000,
    point_alpha: float = 0.70,
    scan_weight: float = 0.22,
    chain_weight: float = 0.20,
    cold_scan_weight: float = 0.17,
    cold_scan_run: float = 10.0,
    point_weight: float = 0.25,
    cold_weight: float = 0.16,
    mean_burst: float = 8.0,
) -> Trace:
    """Generate the cello-like residual disk-block trace."""
    if num_references < 1:
        raise ValueError(f"num_references must be >= 1, got {num_references!r}")
    rng = np.random.default_rng(seed)

    sizes = random_file_sizes(
        rng, n_scan_files, median_blocks=median_file_blocks, sigma=1.0, max_blocks=128
    )
    space = FileSpace(sizes)
    chain_base = space.total_span + 4096
    # chain_stream occupies [base, base + span) for chain blocks and another
    # span above it for noise blocks (span_factor=4 by default).
    chain_span = 2 * (n_chains * chain_length * 4) + 8192
    point_base = chain_base + chain_span + 4096
    cold_base = point_base + point_blocks + 4096
    cold_scan_base = cold_base + 50_000_000

    streams: List[Iterator[int]] = [
        scan_stream(
            rng, space, ZipfSampler(n_scan_files, scan_alpha, rng, shuffle=True)
        ),
        chain_stream(
            rng,
            chain_base,
            n_chains=n_chains,
            chain_length=chain_length,
            alpha=chain_alpha,
            noise=chain_noise,
        ),
        cold_scan_stream(rng, cold_scan_base, mean_run=cold_scan_run),
        point_stream(rng, point_base, point_blocks, point_alpha),
        cold_stream(cold_base),
    ]
    weights = [
        scan_weight,
        chain_weight,
        cold_scan_weight,
        point_weight,
        cold_weight,
    ]

    merged = iter_interleaved(rng, streams, weights=weights, mean_burst=mean_burst)
    refs = list(islice(merged, num_references))

    return Trace(
        name="cello",
        blocks=refs,
        description="Disk block traces from a timesharing system "
        "(synthetic residual-stream stand-in)",
        l1_cache_blocks=CELLO_L1_BLOCKS,
        seed=seed,
        params={
            "n_scan_files": n_scan_files,
            "median_file_blocks": median_file_blocks,
            "scan_alpha": scan_alpha,
            "n_chains": n_chains,
            "chain_length": chain_length,
            "chain_alpha": chain_alpha,
            "chain_noise": chain_noise,
            "point_blocks": point_blocks,
            "point_alpha": point_alpha,
            "weights": weights,
            "cold_scan_run": cold_scan_run,
            "extents": space.extents(),
            "mean_burst": mean_burst,
        },
    )
