"""Synthetic snake workload: disk-block trace of a file server.

Stands in for the HP "snake" trace (Table 1: 3,867,475 disk-block
references captured below a 5 MB file buffer cache).  Paper signatures the
generator is calibrated against:

* substantial sequentiality (next-limit cuts misses by ~30%, Figure 6) from
  clients reading files sequentially;
* prediction accuracy ~61.5% (Table 2) and a moderate last-visited-child
  repeat rate of ~38.5% (Table 3): the request mix repeats, but client
  interleaving breaks paths more often than in sitar/CAD;
* aggressive tree prefetching at small caches (around 2 blocks per access
  period, a ~180% traffic increase, Section 9.2.1);
* strong miss-rate improvement with cache size (best Table 4 miss ~31.5%).

Residual-stream mixture (see :mod:`repro.traces.synthetic.components`):
dominated by file (re-)scans with skewed popularity - a file server's disk
traffic is mostly file bodies, whose re-reads both recur (cacheable) and
re-traverse known paths (predictable) - plus a metadata point-read band and
a small cold component.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List

import numpy as np

from repro.traces.base import Trace
from repro.traces.synthetic.components import (
    chain_stream,
    cold_scan_stream,
    cold_stream,
    point_stream,
    scan_stream,
)
from repro.traces.synthetic.mixer import iter_interleaved
from repro.traces.synthetic.sequential import FileSpace, random_file_sizes
from repro.traces.synthetic.zipf import ZipfSampler

#: 5 MB at 8 KB blocks (Table 1) - recorded as trace metadata.
SNAKE_L1_BLOCKS = 640


def make_snake(
    num_references: int = 120_000,
    seed: int = 1999,
    *,
    n_files: int = 200,
    median_file_blocks: int = 14,
    file_alpha: float = 0.95,
    n_clients: int = 3,
    n_chains: int = 200,
    chain_length: int = 20,
    chain_alpha: float = 0.90,
    chain_noise: float = 0.03,
    point_blocks: int = 5000,
    point_alpha: float = 0.90,
    scan_weight: float = 0.28,
    chain_weight: float = 0.42,
    cold_scan_weight: float = 0.10,
    cold_scan_run: float = 12.0,
    point_weight: float = 0.10,
    cold_weight: float = 0.10,
    mean_burst: float = 12.0,
) -> Trace:
    """Generate the snake-like residual disk-block trace."""
    if num_references < 1:
        raise ValueError(f"num_references must be >= 1, got {num_references!r}")
    rng = np.random.default_rng(seed)
    sizes = random_file_sizes(
        rng, n_files, median_blocks=median_file_blocks, sigma=1.1, max_blocks=192
    )
    space = FileSpace(sizes)
    chain_base = space.total_span + 4096
    chain_span = 2 * (n_chains * chain_length * 4) + 8192
    point_base = chain_base + chain_span + 4096
    cold_base = point_base + point_blocks + 4096
    cold_scan_base = cold_base + 50_000_000

    streams: List[Iterator[int]] = []
    weights: List[float] = []
    for _ in range(n_clients):
        picker = ZipfSampler(n_files, file_alpha, rng, shuffle=True)
        streams.append(scan_stream(rng, space, picker))
        weights.append(scan_weight / n_clients)
    streams.append(
        chain_stream(
            rng,
            chain_base,
            n_chains=n_chains,
            chain_length=chain_length,
            alpha=chain_alpha,
            noise=chain_noise,
        )
    )
    weights.append(chain_weight)
    streams.append(cold_scan_stream(rng, cold_scan_base, mean_run=cold_scan_run))
    weights.append(cold_scan_weight)
    streams.append(point_stream(rng, point_base, point_blocks, point_alpha))
    weights.append(point_weight)
    streams.append(cold_stream(cold_base))
    weights.append(cold_weight)

    merged = iter_interleaved(rng, streams, weights=weights, mean_burst=mean_burst)
    refs = list(islice(merged, num_references))

    return Trace(
        name="snake",
        blocks=refs,
        description="Disk block traces from a file server "
        "(synthetic residual-stream stand-in)",
        l1_cache_blocks=SNAKE_L1_BLOCKS,
        seed=seed,
        params={
            "n_files": n_files,
            "median_file_blocks": median_file_blocks,
            "file_alpha": file_alpha,
            "n_clients": n_clients,
            "n_chains": n_chains,
            "chain_length": chain_length,
            "chain_alpha": chain_alpha,
            "chain_noise": chain_noise,
            "point_blocks": point_blocks,
            "point_alpha": point_alpha,
            "weights": [
                scan_weight,
                chain_weight,
                cold_scan_weight,
                point_weight,
                cold_weight,
            ],
            "extents": space.extents(),
            "cold_scan_run": cold_scan_run,
            "mean_burst": mean_burst,
        },
    )
