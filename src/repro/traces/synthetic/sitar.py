"""Synthetic sitar workload: file-block traces of students' daily usage.

Stands in for the Kentucky "sitar" trace (Table 1: 664,867 file-block
references of normal daily usage; file-level, so no L1 filtering).  Paper
signatures this generator is calibrated against:

* one-block-lookahead cuts the miss rate by up to 73% (Figure 6): the
  stream is dominated by whole-file sequential reads, and the misses that
  remain under LRU are mostly run interiors and run heads;
* the basic tree scheme is roughly no better than no-prefetch: its
  predictions are mostly blocks that are already cached (Figure 14 shows
  only ~15% of predictable blocks uncached);
* prediction accuracy is high, 71.4% (Table 2), and the last-visited-child
  repeat rate is the highest of all traces, 73.6% (Table 3) - students
  rerun the same workflows over the same files;
* absolute miss rates are the lowest of the four traces (best Table 4 miss
  ~15.4%): daily usage has a compact working set.

Model: a small population of home-directory files read whole and re-read
constantly (edit/compile cycles), a popularity-skewed metadata band, and a
slow stream of brand-new files (downloads, build artifacts) providing
compulsory misses.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List

import numpy as np

from repro.traces.base import Trace
from repro.traces.synthetic.components import (
    cold_scan_stream,
    cold_stream,
    point_stream,
    scan_stream,
)
from repro.traces.synthetic.mixer import iter_interleaved
from repro.traces.synthetic.sequential import FileSpace, random_file_sizes
from repro.traces.synthetic.zipf import ZipfSampler


def make_sitar(
    num_references: int = 120_000,
    seed: int = 1999,
    *,
    n_files: int = 140,
    median_file_blocks: int = 10,
    file_alpha: float = 1.2,
    n_users: int = 2,
    point_blocks: int = 600,
    point_alpha: float = 1.0,
    scan_weight: float = 0.75,
    cold_scan_weight: float = 0.15,
    cold_scan_run: float = 24.0,
    point_weight: float = 0.05,
    cold_weight: float = 0.05,
    mean_burst: float = 48.0,
) -> Trace:
    """Generate the sitar-like file-block trace."""
    if num_references < 1:
        raise ValueError(f"num_references must be >= 1, got {num_references!r}")
    rng = np.random.default_rng(seed)
    sizes = random_file_sizes(
        rng, n_files, median_blocks=median_file_blocks, sigma=1.0, max_blocks=256
    )
    space = FileSpace(sizes)
    point_base = space.total_span + 4096
    cold_base = point_base + point_blocks + 4096
    cold_scan_base = cold_base + 50_000_000

    streams: List[Iterator[int]] = []
    weights: List[float] = []
    for _ in range(n_users):
        picker = ZipfSampler(n_files, file_alpha, rng, shuffle=True)
        streams.append(scan_stream(rng, space, picker, partial_fraction=0.1))
        weights.append(scan_weight / n_users)
    streams.append(cold_scan_stream(rng, cold_scan_base, mean_run=cold_scan_run))
    weights.append(cold_scan_weight)
    streams.append(point_stream(rng, point_base, point_blocks, point_alpha))
    weights.append(point_weight)
    streams.append(cold_stream(cold_base))
    weights.append(cold_weight)

    merged = iter_interleaved(rng, streams, weights=weights, mean_burst=mean_burst)
    refs = list(islice(merged, num_references))

    return Trace(
        name="sitar",
        blocks=refs,
        description="File block traces of normal daily usage of students "
        "(synthetic stand-in)",
        l1_cache_blocks=None,
        seed=seed,
        params={
            "n_files": n_files,
            "median_file_blocks": median_file_blocks,
            "file_alpha": file_alpha,
            "n_users": n_users,
            "point_blocks": point_blocks,
            "point_alpha": point_alpha,
            "weights": [scan_weight, cold_scan_weight, point_weight, cold_weight],
            "extents": space.extents(),
            "cold_scan_run": cold_scan_run,
            "mean_burst": mean_burst,
        },
    )
