"""Synthetic CAD workload: object references from a design-tool session.

Stands in for the Duke CAD trace (Table 1: 147,345 object references; no
L1 filter, object sizes unknown).  The properties the paper's experiments
depend on, and how this generator produces them:

* **No sequential structure** - one-block lookahead must not help
  (Figure 6, CAD panel: next-limit == no-prefetch).  Object ids are
  scattered over a block space 16x larger, so ``block + 1`` is almost never
  the next reference.
* **Highly repetitive traversals** - the tool re-walks the same design
  hierarchy with small variations.  A sticky weighted walk over a fixed
  object graph repeats the previously taken edge ~75% of the time, which
  lands the last-visited-child repeat rate near the paper's 68.6%
  (Table 3) and prediction accuracy near 59.9% (Table 2).
* **Working set larger than small caches** - miss rates stay substantial
  (~50%+) and the tree's predictions are worth real misses (the ~36% miss
  reduction of Section 9.1).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.traces.base import Trace
from repro.traces.synthetic.markov import StickyWalk, random_object_graph, scatter_ids
from repro.traces.synthetic.zipf import ZipfSampler


def make_cad(
    num_references: int = 147_000,
    seed: int = 1999,
    *,
    n_objects: int = 12288,
    n_roots: int = 64,
    root_alpha: float = 0.9,
    stickiness: float = 0.95,
    walk_mean: int = 120,
    span_factor: int = 16,
) -> Trace:
    """Generate the CAD-like object reference trace."""
    if num_references < 1:
        raise ValueError(f"num_references must be >= 1, got {num_references!r}")
    rng = np.random.default_rng(seed)
    graph = random_object_graph(rng, n_objects)
    walker = StickyWalk(graph, rng, stickiness=stickiness)
    id_to_block = scatter_ids(rng, n_objects, span_factor=span_factor)
    roots = rng.choice(n_objects, size=n_roots, replace=False)
    root_picker = ZipfSampler(n_roots, root_alpha, rng)

    refs: List[int] = []
    while len(refs) < num_references:
        root = int(roots[root_picker.sample_one()])
        length = max(2, int(rng.geometric(1.0 / walk_mean)))
        path = walker.walk(root, length)
        refs.extend(int(id_to_block[node]) for node in path)
    refs = refs[:num_references]

    return Trace(
        name="cad",
        blocks=refs,
        description="Object references from a CAD tool (synthetic stand-in)",
        l1_cache_blocks=None,
        seed=seed,
        params={
            "n_objects": n_objects,
            "n_roots": n_roots,
            "root_alpha": root_alpha,
            "stickiness": stickiness,
            "walk_mean": walk_mean,
            "span_factor": span_factor,
        },
    )
