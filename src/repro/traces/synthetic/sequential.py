"""Sequential-run primitives: a file extent map and run emission.

The file-server (snake) and student-usage (sitar) workloads are dominated by
whole-file sequential reads.  :class:`FileSpace` lays out a population of
files as contiguous block extents - with guard gaps so that the last block
of one file is *not* adjacent to the first block of the next, keeping
cross-file accesses non-sequential - and exposes per-file sequential run
generation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: Blocks of dead space between consecutive file extents.
GUARD_GAP = 8


class FileSpace:
    """A population of files laid out as disjoint contiguous block extents."""

    def __init__(
        self,
        file_sizes: Sequence[int],
        *,
        base_block: int = 0,
        guard_gap: int = GUARD_GAP,
    ) -> None:
        if guard_gap < 1:
            raise ValueError(f"guard_gap must be >= 1, got {guard_gap!r}")
        starts: List[int] = []
        cursor = base_block
        for size in file_sizes:
            if size < 1:
                raise ValueError(f"file sizes must be >= 1, got {size!r}")
            starts.append(cursor)
            cursor += size + guard_gap
        self._starts = starts
        self._sizes = list(file_sizes)
        self.total_span = cursor - base_block

    def __len__(self) -> int:
        return len(self._sizes)

    def size_of(self, file_id: int) -> int:
        return self._sizes[file_id]

    def extent(self, file_id: int) -> range:
        """Block range of the whole file."""
        start = self._starts[file_id]
        return range(start, start + self._sizes[file_id])

    def extents(self) -> List[List[int]]:
        """All files as ``[start, length]`` pairs (JSON-friendly).

        Exported into generated traces' ``params["extents"]`` so file-level
        policies (whole-file prefetching) can map blocks back to files.
        """
        return [
            [start, size] for start, size in zip(self._starts, self._sizes)
        ]

    def read_run(self, file_id: int, offset: int = 0, length: int | None = None) -> List[int]:
        """Sequential blocks of reading ``length`` blocks from ``offset``.

        Runs are clamped to the file end (short final reads, like a real
        ``read`` loop hitting EOF).
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset!r}")
        size = self._sizes[file_id]
        if offset >= size:
            return []
        if length is None:
            length = size - offset
        end = min(offset + length, size)
        start = self._starts[file_id] + offset
        return list(range(start, start + (end - offset)))


def random_file_sizes(
    rng: np.random.Generator,
    n_files: int,
    *,
    median_blocks: int = 8,
    sigma: float = 1.0,
    max_blocks: int = 512,
) -> List[int]:
    """Log-normal file-size population (most files small, a heavy tail).

    Real file-size distributions are approximately log-normal; the median
    and ``sigma`` control the body, ``max_blocks`` truncates the tail so a
    single enormous file cannot dominate a short trace.
    """
    if n_files < 1:
        raise ValueError(f"n_files must be >= 1, got {n_files!r}")
    if median_blocks < 1:
        raise ValueError(f"median_blocks must be >= 1, got {median_blocks!r}")
    raw = rng.lognormal(mean=np.log(median_blocks), sigma=sigma, size=n_files)
    return [int(min(max(1, round(x)), max_blocks)) for x in raw]
