"""Zipf-distributed sampling over a bounded item universe.

File and block popularity in real systems is heavy-tailed; the timesharing
(cello) and file-server (snake) generators draw file/block choices from a
bounded Zipf distribution.  Unlike ``numpy.random.zipf`` (unbounded support)
this sampler is restricted to ``n_items`` ranks, which is what a finite
volume of files requires, and supports optional rank shuffling so that
popularity is not correlated with block address.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ZipfSampler:
    """Inverse-CDF sampler over ranks ``0..n_items-1`` with ``p(r) ~ 1/(r+1)^alpha``."""

    def __init__(
        self,
        n_items: int,
        alpha: float,
        rng: np.random.Generator,
        *,
        shuffle: bool = False,
    ) -> None:
        if n_items < 1:
            raise ValueError(f"n_items must be >= 1, got {n_items!r}")
        if alpha < 0.0:
            raise ValueError(f"alpha must be >= 0, got {alpha!r}")
        self.n_items = n_items
        self.alpha = alpha
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n_items + 1, dtype=np.float64), alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._perm: Optional[np.ndarray] = None
        if shuffle:
            self._perm = rng.permutation(n_items)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` item indices."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size!r}")
        u = self._rng.random(size)
        ranks = np.searchsorted(self._cdf, u, side="right")
        if self._perm is not None:
            return self._perm[ranks]
        return ranks

    def sample_one(self) -> int:
        return int(self.sample(1)[0])

    def probability_of_rank(self, rank: int) -> float:
        """Selection probability of the given popularity rank."""
        if not (0 <= rank < self.n_items):
            raise ValueError(f"rank out of range: {rank!r}")
        if rank == 0:
            return float(self._cdf[0])
        return float(self._cdf[rank] - self._cdf[rank - 1])
