"""Residual-stream components for the disk-level workload generators.

The cello and snake traces were captured *below* large file buffer caches,
so they are residual streams: the easy, short-distance locality is gone.
Rather than emulating the exact victim stream of a perfect LRU filter
(which leaves an unrealistically thin reuse band - a perfect filter maps a
raw reuse distance ``D`` to a residual distance of roughly ``D - L1``),
the disk-level generators compose the residual stream directly from three
components whose mixture is calibrated against the paper's measurements:

* **scan** - sequential (re-)reads of files with skewed popularity.  Re-read
  runs are what the LZ tree learns (predictability) and what one-block
  lookahead converts to hits; first reads are compulsory misses.
* **point** - popularity-skewed single-block reads over a region a few
  times larger than the simulated caches.  These give the miss-rate-vs-
  cache-size slope but are unpredictable for the tree.
* **cold** - never-before-seen blocks (pure compulsory misses), untouched
  by any prefetching scheme.

The component weights are the per-trace calibration knobs; see
``make_cello`` / ``make_snake`` and DESIGN.md Section 2.
"""

from __future__ import annotations

from itertools import count
from typing import Iterator

import numpy as np

from repro.traces.synthetic.sequential import FileSpace
from repro.traces.synthetic.zipf import ZipfSampler


def scan_stream(
    rng: np.random.Generator,
    space: FileSpace,
    picker: ZipfSampler,
    *,
    partial_fraction: float = 0.2,
) -> Iterator[int]:
    """Sequential whole-file reads, with occasional partial reads.

    File choice comes from ``picker`` (Zipf over the file population), so
    popular files are re-read repeatedly - re-reads are exactly the
    tree-predictable, lookahead-friendly part of the stream.
    """
    if not (0.0 <= partial_fraction <= 1.0):
        raise ValueError(
            f"partial_fraction must be in [0, 1], got {partial_fraction!r}"
        )
    while True:
        file_id = picker.sample_one()
        size = space.size_of(file_id)
        if size > 4 and rng.random() < partial_fraction:
            offset = int(rng.integers(0, size // 2))
            length = int(rng.integers(1, size - offset + 1))
            yield from space.read_run(file_id, offset, length)
        else:
            yield from space.read_run(file_id)


def point_stream(
    rng: np.random.Generator,
    base: int,
    n_blocks: int,
    alpha: float,
) -> Iterator[int]:
    """Zipf point reads over ``n_blocks`` starting at ``base``.

    Popularity ranks are shuffled over the address range so recurrence
    carries no sequential structure.
    """
    picker = ZipfSampler(n_blocks, alpha, rng, shuffle=True)
    while True:
        yield base + picker.sample_one()


def chain_stream(
    rng: np.random.Generator,
    base: int,
    *,
    n_chains: int,
    chain_length: int,
    alpha: float = 0.8,
    noise: float = 0.05,
    span_factor: int = 4,
) -> Iterator[int]:
    """Replayed fixed sequences of non-adjacent blocks.

    Models recurring access *patterns* that are not sequential on disk:
    application startup reads, library/loader sequences, query plans,
    design-tool traversals.  Each chain is a fixed random block sequence;
    replays pick a chain by Zipf popularity and follow it, substituting a
    random block with probability ``noise`` per step (pattern drift).

    This is the traffic class the prefetch *tree* exploits and one-block
    lookahead cannot: replays are predictable from past accesses, but the
    blocks are scattered (no ``+1`` adjacency).
    """
    if n_chains < 1 or chain_length < 2:
        raise ValueError("need n_chains >= 1 and chain_length >= 2")
    if not (0.0 <= noise <= 1.0):
        raise ValueError(f"noise must be in [0, 1], got {noise!r}")
    span = n_chains * chain_length * span_factor
    blocks = rng.choice(span, size=n_chains * chain_length, replace=False)
    chains = blocks.reshape(n_chains, chain_length) + base
    picker = ZipfSampler(n_chains, alpha, rng)
    noise_base = base + span + 4096
    while True:
        chain = chains[picker.sample_one()]
        for block in chain:
            if noise > 0.0 and rng.random() < noise:
                yield noise_base + int(rng.integers(0, span))
            else:
                yield int(block)


def cold_stream(base: int) -> Iterator[int]:
    """An endless supply of never-repeating blocks (compulsory misses).

    Blocks ascend from ``base`` with a stride of 2 so they are never
    mutually sequential - a cold miss untouched by *any* prefetching
    scheme, unlike a cold scan interior.
    """
    return (base + 2 * i for i in count())


def cold_scan_stream(
    rng: np.random.Generator,
    base: int,
    *,
    mean_run: float = 16.0,
    gap: int = 4,
) -> Iterator[int]:
    """Sequential first reads of ever-new files.

    Each burst is a fresh contiguous run (geometric length), separated from
    the next by a guard gap.  This is the traffic class where one-block
    lookahead shines and the prefetch tree is helpless: every block is a
    compulsory miss under plain LRU, the run interior is rescued by
    sequential lookahead, but nothing recurs for the tree to learn.
    Dominates sitar (students reading new files, build outputs) per the
    paper's "up to 73%" next-limit reduction.
    """
    if mean_run < 1.0:
        raise ValueError(f"mean_run must be >= 1, got {mean_run!r}")
    if gap < 1:
        raise ValueError(f"gap must be >= 1, got {gap!r}")
    cursor = base
    while True:
        length = int(rng.geometric(1.0 / mean_run))
        for block in range(cursor, cursor + length):
            yield block
        cursor += length + gap
