"""Tree node for the LZ78-style prefetch tree.

Each node corresponds to one parse substring (equivalently, to the disk block
that ended that substring) and carries:

* ``block``  -- the disk block id this node represents (``None`` for the root),
* ``weight`` -- the number of times the node has been traversed during the
  parse; edge probability is ``child.weight / parent.weight`` (Section 2),
* ``children`` -- outgoing edges keyed by block id,
* ``last_visited_child`` -- the block of the child traversed on the most
  recent visit (Section 9.6's *last visited child*),
* intrusive LRU-list links (``lru_prev`` / ``lru_next``) used when the tree's
  node budget is capped (Section 9.3 / Figure 13).

The paper reports 40 bytes per node in its C simulator; the Python node is
larger, but the *node count* is what Figure 13 sweeps, so we cap on count and
convert to the paper's bytes-per-node when reporting.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class TreeNode:
    """A single prefetch-tree node.  Mutable, identity-based."""

    __slots__ = (
        "block",
        "weight",
        "children",
        "parent",
        "last_visited_child",
        "lru_prev",
        "lru_next",
        "heavy",
        "heavy_rebuild_at",
        "base",
    )

    def __init__(self, block: Optional[int], parent: Optional["TreeNode"]) -> None:
        self.block = block
        self.weight = 1
        self.children: Dict[int, "TreeNode"] = {}
        self.parent = parent
        self.last_visited_child: Optional[int] = None
        self.lru_prev: Optional["TreeNode"] = None
        self.lru_next: Optional["TreeNode"] = None
        # Lazily built index of children above the relevance floor; see
        # PrefetchTree.iter_relevant_children.  None = scan children directly.
        self.heavy: Optional[Dict[int, "TreeNode"]] = None
        self.heavy_rebuild_at: int = 0
        # Multi-tenant overlays (repro.tenancy.overlay): the read-only base
        # node this node shadows, or None for private/base/overlay-new nodes.
        self.base: Optional["TreeNode"] = None

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.has_children()

    def has_children(self) -> bool:
        """True when the node has outgoing edges, base edges included.

        Overlay nodes (``base`` set) own only the copy-on-write children
        they have materialised; the unmodified rest live on the shadowed
        base node, so emptiness checks must consult both maps.
        """
        if self.children:
            return True
        return self.base is not None and bool(self.base.children)

    def child_probability(self, block: int) -> float:
        """Probability that ``block`` is accessed next from this node.

        ``weight(child) / weight(self)`` per Section 2; 0.0 if no such edge.
        Falls through to the shadowed base node for children an overlay has
        not materialised.
        """
        child = self.children.get(block)
        if child is None and self.base is not None:
            child = self.base.children.get(block)
        if child is None:
            return 0.0
        return child.weight / self.weight

    def iter_descendants(self) -> Iterator["TreeNode"]:
        """Yield every node in this subtree (excluding ``self``), depth-first."""
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def subtree_size(self) -> int:
        """Number of nodes in this subtree including ``self``."""
        return 1 + sum(1 for _ in self.iter_descendants())

    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        d = 0
        node = self
        while node.parent is not None:
            node = node.parent
            d += 1
        return d

    def path_blocks(self) -> list:
        """Blocks along the root-to-self path (root excluded)."""
        blocks = []
        node = self
        while node.parent is not None:
            blocks.append(node.block)
            node = node.parent
        blocks.reverse()
        return blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = "ROOT" if self.is_root else repr(self.block)
        return f"<TreeNode {label} w={self.weight} children={len(self.children)}>"
