"""The LZ78-style prefetch tree (Section 2).

The tree is built online from the stream of block accesses.  The access
stream is parsed into *substrings*, each consisting of a previously seen
substring plus one new access (the classic LZ78 parse of Vitter & Krishnan
[19] as used by Curewitz et al. [5]).

Parsing maintains a *current node* pointer:

* start at the root; the root's weight is incremented once per substring;
* on an access ``b``: if the current node has a child for ``b``, traverse the
  edge and increment the child's weight; otherwise create a new child with
  weight 1 (this completes a substring) and reset the pointer to the root.

Edge probability is ``weight(child)/weight(parent)``; the probability of a
candidate several levels below the current node is the product of the edge
probabilities along the path, and its *distance* ``d_b`` is the path length
(Figure 1).

Optional node budget (Section 9.3): nodes live on an intrusive LRU list,
touched whenever traversed; when the budget is exceeded the least recently
used node (with its - necessarily even older or equally old - subtree) is
discarded.  The root is never evicted.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.core.node import TreeNode

Block = Hashable


@dataclass(frozen=True)
class AccessOutcome:
    """What happened in the tree when one access was recorded.

    Captures the per-access signals that the paper's Section 9 metrics are
    built from, *measured against the tree state before the update*.
    """

    block: Block
    predictable: bool
    """The accessed block was a child of the current node (Section 9.4)."""
    probability: float
    """Edge probability of the accessed block from the current node
    (0.0 when unpredictable)."""
    lvc_available: bool
    """The current node had a last-visited-child recorded."""
    lvc_repeat: bool
    """The access repeated the current node's last-visited child (Table 3)."""
    at_root: bool
    """The access was processed at the root (start of a substring).  Root
    opportunities almost never repeat their last visited child, so Table 3
    is reported both over all nodes and over non-root nodes."""
    created_node: bool
    """A new node was created, i.e. a substring boundary was crossed."""


@dataclass
class TreeStats:
    """Running counters over all recorded accesses."""

    accesses: int = 0
    predictable: int = 0
    lvc_opportunities: int = 0
    lvc_repeats: int = 0
    lvc_opportunities_nonroot: int = 0
    lvc_repeats_nonroot: int = 0
    nodes_created: int = 0
    nodes_evicted: int = 0
    substrings: int = 0

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of accesses that were predictable (Table 2)."""
        if self.accesses == 0:
            return 0.0
        return self.predictable / self.accesses

    @property
    def lvc_repeat_rate(self) -> float:
        """Fraction of visits that repeated the last visited child (Table 3)."""
        if self.lvc_opportunities == 0:
            return 0.0
        return self.lvc_repeats / self.lvc_opportunities

    @property
    def lvc_repeat_rate_nonroot(self) -> float:
        """Table 3's rate restricted to non-root nodes.

        On traces much shorter than the paper's, parse restarts make root
        visits a large share of opportunities and the root's last child is
        essentially never repeated; the non-root rate recovers the mature
        per-node behaviour.
        """
        if self.lvc_opportunities_nonroot == 0:
            return 0.0
        return self.lvc_repeats_nonroot / self.lvc_opportunities_nonroot


#: Children at probability below ~1/HEAVY_CHILD_DIVISOR are never worth
#: prefetching (the depth-1 profitability floor with the paper's constants
#: is ~0.037, and the lowest Table 4 threshold is 0.001); nodes with many
#: children keep an index of the ones above this floor so candidate
#: enumeration does not scan thousands of cold edges at hub nodes.
HEAVY_CHILD_DIVISOR = 1024
#: Nodes with at most this many children are scanned directly.
HEAVY_ACTIVATION = 64

#: Paper's storage estimate per tree node, bytes (Section 9.3, Figure 13).
PAPER_NODE_BYTES = 40
#: Paper's compacted storage estimate (pointers replaced by short ints).
PAPER_NODE_BYTES_COMPACT = 26


class PrefetchTree:
    """Online LZ78 prefetch tree with optional LRU-bounded node budget.

    Parameters
    ----------
    max_nodes:
        Maximum number of non-root nodes to retain, or ``None`` for an
        unbounded tree.  When the budget would be exceeded, least recently
        traversed nodes are evicted (Section 9.3).
    """

    def __init__(self, max_nodes: Optional[int] = None) -> None:
        if max_nodes is not None and max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes!r}")
        self.max_nodes = max_nodes
        self.root = TreeNode(block=None, parent=None)
        self.root.weight = 0  # incremented once per substring
        self.current: TreeNode = self.root
        self.stats = TreeStats()
        self._node_count = 0  # non-root nodes
        # Intrusive LRU list sentinels: head = most recent, tail = least.
        self._lru_head = TreeNode(block=None, parent=None)
        self._lru_tail = TreeNode(block=None, parent=None)
        self._lru_head.lru_next = self._lru_tail
        self._lru_tail.lru_prev = self._lru_head

    # ------------------------------------------------------------------ LRU

    def _lru_unlink(self, node: TreeNode) -> None:
        prev, nxt = node.lru_prev, node.lru_next
        if prev is not None:
            prev.lru_next = nxt
        if nxt is not None:
            nxt.lru_prev = prev
        node.lru_prev = node.lru_next = None

    def _lru_push_front(self, node: TreeNode) -> None:
        first = self._lru_head.lru_next
        node.lru_prev = self._lru_head
        node.lru_next = first
        self._lru_head.lru_next = node
        assert first is not None
        first.lru_prev = node

    def _lru_touch(self, node: TreeNode) -> None:
        self._lru_unlink(node)
        self._lru_push_front(node)

    def _evict_lru(self) -> int:
        """Discard the least recently traversed node (and its subtree).

        Returns the number of nodes removed.  Subtree removal is required for
        structural integrity; a node's descendants were last traversed no
        later than one traversal after the node itself, so the collateral
        evictions are themselves stale.
        """
        victim = self._lru_tail.lru_prev
        if victim is None or victim is self._lru_head:
            return 0
        removed = 0
        # Unlink the whole subtree from the LRU list first.
        for node in victim.iter_descendants():
            self._lru_unlink(node)
            removed += 1
        self._lru_unlink(victim)
        removed += 1
        parent = victim.parent
        assert parent is not None  # root is never on the LRU list
        del parent.children[victim.block]
        if parent.heavy is not None:
            parent.heavy.pop(victim.block, None)
        if parent.last_visited_child == victim.block:
            parent.last_visited_child = None
        victim.parent = None
        # If the parse pointer sat inside the removed subtree, restart at root.
        node = self.current
        while node is not None:
            if node is victim:
                # Pointer reset; the next access will open a fresh substring.
                self.current = self.root
                break
            node = node.parent
        self._node_count -= removed
        self.stats.nodes_evicted += removed
        return removed

    def _enforce_budget(self) -> None:
        if self.max_nodes is None:
            return
        while self._node_count > self.max_nodes:
            if self._evict_lru() == 0:
                break

    # ------------------------------------------------------------ recording

    def record_access(self, block: Block) -> AccessOutcome:
        """Advance the LZ parse by one access and update all counters.

        Returns an :class:`AccessOutcome` describing the tree's view of the
        access *before* the structural update, which is what the paper's
        predictability and last-visited-child statistics measure.
        """
        cur = self.current
        stats = self.stats
        stats.accesses += 1

        child = cur.children.get(block)
        at_root = cur is self.root
        predictable = child is not None
        probability = child.weight / cur.weight if (predictable and cur.weight > 0) else 0.0
        lvc_available = cur.last_visited_child is not None
        lvc_repeat = lvc_available and cur.last_visited_child == block
        if predictable:
            stats.predictable += 1
        if lvc_available:
            stats.lvc_opportunities += 1
            if lvc_repeat:
                stats.lvc_repeats += 1
            if not at_root:
                stats.lvc_opportunities_nonroot += 1
                if lvc_repeat:
                    stats.lvc_repeats_nonroot += 1

        if cur is self.root:
            # Each substring begins with one (implicit) visit to the root.
            self.root.weight += 1
            stats.substrings += 1

        created = False
        if child is not None:
            child.weight += 1
            heavy = cur.heavy
            if (
                heavy is not None
                and block not in heavy
                and child.weight * HEAVY_CHILD_DIVISOR >= cur.weight
            ):
                heavy[block] = child
            cur.last_visited_child = block
            self._lru_touch(child)
            self.current = child
        else:
            node = TreeNode(block=block, parent=cur)
            cur.children[block] = node
            if cur.heavy is not None and HEAVY_CHILD_DIVISOR >= cur.weight:
                cur.heavy[block] = node
            cur.last_visited_child = block
            self._node_count += 1
            stats.nodes_created += 1
            self._lru_push_front(node)
            self.current = self.root
            created = True
            self._enforce_budget()

        return AccessOutcome(
            block=block,
            predictable=predictable,
            probability=probability,
            lvc_available=lvc_available,
            lvc_repeat=lvc_repeat,
            at_root=at_root,
            created_node=created,
        )

    def record_all(self, blocks: Iterable[Block]) -> None:
        """Feed an entire access sequence through the parse."""
        for block in blocks:
            self.record_access(block)

    # ------------------------------------------------------------- queries

    @property
    def node_count(self) -> int:
        """Number of non-root nodes currently in the tree."""
        return self._node_count

    def memory_bytes(self, bytes_per_node: int = PAPER_NODE_BYTES) -> int:
        """Estimated tree memory using the paper's bytes-per-node figure."""
        return self._node_count * bytes_per_node

    def iter_relevant_children(self, node: TreeNode):
        """Children of ``node`` worth considering as prefetch candidates.

        Returns an iterable of ``(block, child)`` pairs guaranteed to cover
        every child whose edge probability is at least
        ``1 / HEAVY_CHILD_DIVISOR`` (it may include some below the floor).
        Small nodes are scanned directly; hub nodes (notably the root, which
        collects a child per distinct substring-starting block) maintain the
        lazily rebuilt ``heavy`` index so enumeration does not touch
        thousands of cold edges.  Rebuilds are amortised against weight
        doubling, and a node's child count never exceeds its weight.
        """
        children = node.children
        heavy = node.heavy
        if heavy is None:
            if len(children) <= HEAVY_ACTIVATION:
                return children.items()
        elif node.weight < node.heavy_rebuild_at:
            return heavy.items()
        rebuilt = {
            b: c
            for b, c in children.items()
            if c.weight * HEAVY_CHILD_DIVISOR >= node.weight
        }
        node.heavy = rebuilt
        node.heavy_rebuild_at = max(2 * node.weight, 2)
        return rebuilt.items()

    def next_probabilities(self) -> List[Tuple[Block, float]]:
        """Children of the current node with their access probabilities.

        These are the depth-1 prefetch candidates; sorted most probable
        first.  Enumerates via the relevant-children index, so hub nodes
        (the root can hold tens of thousands of cold edges) cost only their
        above-floor children; edges below ~1/1024 probability are omitted -
        no caller (top-k selection, cost-gated candidates) can use them.
        """
        cur = self.current
        if cur.weight <= 0:
            return []
        items = [
            (b, n.weight / cur.weight)
            for b, n in self.iter_relevant_children(cur)
        ]
        items.sort(key=lambda item: (-item[1], str(item[0])))
        return items

    def is_predictable(self, block: Block) -> bool:
        """Would ``block`` be a predictable next access (Section 9.4)?"""
        return block in self.current.children

    def last_visited_child(self) -> Optional[Block]:
        """The current node's last visited child, if any (Section 9.6)."""
        return self.current.last_visited_child

    def iter_nodes(self) -> Iterator[TreeNode]:
        """All non-root nodes, depth-first."""
        return self.root.iter_descendants()

    def path_probability(self, blocks: List[Block]) -> float:
        """Cumulative probability of following ``blocks`` from the current node.

        Product of edge probabilities along the path (Section 2's
        ``5/6 * 1/5`` example); 0.0 if the path leaves the tree.
        """
        node = self.current
        prob = 1.0
        for block in blocks:
            child = node.children.get(block)
            if child is None or node.weight <= 0:
                return 0.0
            prob *= child.weight / node.weight
            node = child
        return prob

    # ----------------------------------------------------------- snapshots

    #: Snapshot body kind (see :mod:`repro.store`).
    snapshot_kind = "tree"

    def memory_items(self) -> int:
        """Model size in retained items; mirrors ``Predictor.memory_items``."""
        return self._node_count

    def snapshot_state(self) -> Tuple[Dict[str, Any], List[Any]]:
        """Serialize the tree to JSON-able ``(meta, items)``.

        Items are node records ``[id, parent_id, block, weight,
        last_visited_child, heavy_keys_or_null, heavy_rebuild_at]`` in
        preorder, with sibling order equal to child-map insertion order —
        the order every traversal in this module observes, so a restored
        tree is behaviourally *identical* to the original, not merely
        isomorphic.  The lazily built ``heavy`` index and its rebuild
        threshold are captured verbatim for the same reason: letting the
        restored tree re-derive them would change candidate enumeration
        order relative to a run that never snapshotted.
        """
        ids: Dict[int, int] = {id(self.root): 0}
        records: List[Any] = []
        stack = list(reversed(list(self.root.children.values())))
        next_id = 1
        while stack:
            node = stack.pop()
            nid = next_id
            next_id += 1
            ids[id(node)] = nid
            assert node.parent is not None
            records.append([
                nid,
                ids[id(node.parent)],
                node.block,
                node.weight,
                node.last_visited_child,
                None if node.heavy is None else list(node.heavy.keys()),
                node.heavy_rebuild_at,
            ])
            stack.extend(reversed(list(node.children.values())))
        lru: List[int] = []
        walker = self._lru_head.lru_next
        while walker is not self._lru_tail:
            assert walker is not None
            lru.append(ids[id(walker)])
            walker = walker.lru_next
        meta = {
            "max_nodes": self.max_nodes,
            "root": {
                "weight": self.root.weight,
                "lvc": self.root.last_visited_child,
                "heavy": (None if self.root.heavy is None
                          else list(self.root.heavy.keys())),
                "rebuild_at": self.root.heavy_rebuild_at,
            },
            "current": ids[id(self.current)],
            "lru": lru,
            "stats": asdict(self.stats),
        }
        return meta, records

    def restore_state(self, meta: Dict[str, Any], items: List[Any]) -> None:
        """Rebuild the tree from :meth:`snapshot_state` output in place."""
        self.max_nodes = meta["max_nodes"]
        root_meta = meta["root"]
        self.root = TreeNode(block=None, parent=None)
        self.root.weight = root_meta["weight"]
        self.root.last_visited_child = root_meta["lvc"]
        self.root.heavy_rebuild_at = root_meta["rebuild_at"]
        nodes: Dict[int, TreeNode] = {0: self.root}
        for nid, parent_id, block, weight, lvc, _heavy, rebuild_at in items:
            parent = nodes[parent_id]
            node = TreeNode(block=block, parent=parent)
            node.weight = weight
            node.last_visited_child = lvc
            node.heavy_rebuild_at = rebuild_at
            parent.children[block] = node
            nodes[nid] = node
        # Heavy indexes need the children maps complete, so a second pass.
        for nid, _parent_id, _block, _weight, _lvc, heavy, _rebuild in items:
            if heavy is not None:
                node = nodes[nid]
                node.heavy = {b: node.children[b] for b in heavy}
        if root_meta["heavy"] is not None:
            self.root.heavy = {
                b: self.root.children[b] for b in root_meta["heavy"]
            }
        self._node_count = len(items)
        self.current = nodes[meta["current"]]
        self.stats = TreeStats(**meta["stats"])
        self._lru_head = TreeNode(block=None, parent=None)
        self._lru_tail = TreeNode(block=None, parent=None)
        prev = self._lru_head
        for nid in meta["lru"]:
            node = nodes[nid]
            prev.lru_next = node
            node.lru_prev = prev
            prev = node
        prev.lru_next = self._lru_tail
        self._lru_tail.lru_prev = prev

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if structural invariants are violated.

        Used by the property-based tests:

        * every non-root node's weight is >= 1 and <= its parent's weight;
        * the LRU list contains exactly the non-root nodes;
        * child maps and parent pointers agree.
        """
        seen = 0
        for node in self.root.iter_descendants():
            seen += 1
            assert node.parent is not None
            assert node.parent.children.get(node.block) is node
            assert 1 <= node.weight <= node.parent.weight, (
                f"weight inversion at {node!r}"
            )
        assert seen == self._node_count, (seen, self._node_count)
        on_list = 0
        node = self._lru_head.lru_next
        while node is not self._lru_tail:
            assert node is not None
            on_list += 1
            node = node.lru_next
        assert on_list == self._node_count, (on_list, self._node_count)
        if self.max_nodes is not None:
            assert self._node_count <= self.max_nodes
