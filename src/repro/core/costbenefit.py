"""The paper's cost-benefit equations (Sections 5-7).

All functions are pure and expressed in the paper's units (milliseconds and
"bufferage" = buffer-seconds per access period), so they can be unit-tested
directly against hand computations and used unchanged by every policy.

Summary of the model:

* ``t_stall(d)`` (Eq. 6) -- expected CPU stall per block when a prefetch is
  issued ``d`` access periods ahead, given the per-period computation
  ``T_cpu + T_hit + s*T_driver``.
* ``delta_t_pf(d)`` (Eq. 2) -- time saved vs a demand fetch; 0 at depth 0.
* ``benefit(...)`` (Eq. 1) -- value of dedicating one buffer to prefetching
  one access deeper: ``p_b*dT(d_b) - p_x*dT(d_b - 1)``.
* ``cost_prefetch_eviction(...)`` (Eq. 11) -- cost of ejecting a
  not-yet-referenced block from the prefetch cache.
* ``cost_demand_eviction(...)`` (Eq. 13) -- cost of shrinking the LRU demand
  cache by one buffer, driven by the marginal hit rate ``H(n) - H(n-1)``.
* ``prefetch_overhead(...)`` (Eq. 14) -- driver time wasted on blocks that
  will never be referenced.
* ``prefetch_horizon(...)`` -- Patterson's distance beyond which a prefetch
  is fully overlapped (``t_stall == 0``); used for the re-prefetch distance
  ``x`` in Eq. 11, which the paper leaves open (see DESIGN.md Section 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.params import SystemParams

#: Cost returned for eviction candidates that must not be evicted (e.g. a
#: prefetched block that is due within the re-prefetch distance).
INFINITE_COST = math.inf


def per_period_compute(params: SystemParams, s: float) -> float:
    """CPU time per access period with ``s`` prefetches issued (Eq. 3 term)."""
    return params.access_period_compute(s)


def t_stall(params: SystemParams, depth: int, s: float) -> float:
    """Expected stall time for a block prefetched ``depth`` periods ahead.

    Eq. 6: ``max(T_disk/d - (T_hit + T_cpu + s*T_driver), 0)`` for ``d > 0``;
    a depth of 0 is a demand fetch and stalls for the full ``T_disk``.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth!r}")
    if depth == 0:
        return params.t_disk
    return max(params.t_disk / depth - per_period_compute(params, s), 0.0)


def delta_t_pf(params: SystemParams, depth: int, s: float) -> float:
    """Time saved by prefetching at ``depth`` vs demand fetching (Eq. 2).

    ``T_disk - T_stall(d)``; 0 at depth 0 by definition.
    """
    if depth == 0:
        return 0.0
    return params.t_disk - t_stall(params, depth, s)


def benefit(
    params: SystemParams,
    p_b: float,
    p_x: float,
    depth: int,
    s: float,
) -> float:
    """Benefit of allocating one buffer to prefetch one access deeper (Eq. 1).

    ``B(b) = p_b * dT_pf(b, d_b) - p_x * dT_pf(x, d_b - 1)`` where ``x`` is
    the path parent of ``b``.  Bufferage is 1 (one buffer for one period), so
    the division by bufferage is a no-op.
    """
    _validate_probs(p_b, p_x)
    if depth < 1:
        raise ValueError(f"depth must be >= 1 for a prefetch, got {depth!r}")
    return p_b * delta_t_pf(params, depth, s) - p_x * delta_t_pf(params, depth - 1, s)


def prefetch_overhead(params: SystemParams, p_b: float, p_x: float) -> float:
    """Driver overhead attributable to mispredicted prefetches (Eq. 14).

    ``T_oh = (1 - p_b/p_x) * T_driver``: the probability that the parent is
    reached but ``b`` is not, times the cost of having issued the request.
    """
    _validate_probs(p_b, p_x)
    if p_x <= 0.0:
        return params.t_driver
    ratio = min(p_b / p_x, 1.0)
    return (1.0 - ratio) * params.t_driver


def prefetch_horizon(params: SystemParams, s: float) -> int:
    """Smallest depth at which a prefetch is fully overlapped.

    The depth ``d`` where ``T_disk / d <= T_hit + T_cpu + s*T_driver``, i.e.
    ``t_stall(d) == 0`` (Patterson's prefetch horizon).  Always >= 1.
    """
    compute = per_period_compute(params, s)
    if compute <= 0.0:
        # Degenerate all-I/O workload: no overlap is ever free.
        return max(1, math.ceil(params.t_disk / max(params.t_hit, 1e-9)))
    return max(1, math.ceil(params.t_disk / compute))


def cost_prefetch_eviction(
    params: SystemParams,
    p_b: float,
    depth: int,
    s: float,
    refetch_distance: int | None = None,
) -> float:
    """Cost of ejecting block ``b`` from the prefetch cache (Eq. 11).

    ``C_pr(b) = p_b * (T_driver + T_stall(x)) / (d_b - x)`` where ``d_b`` is
    the block's current distance in the tree and ``x`` the distance at which
    it would be re-prefetched.  We take ``x = min(d_b - 1, horizon)`` unless
    given; when ``d_b <= x`` there is no bufferage to recover, so eviction is
    vetoed with :data:`INFINITE_COST`.
    """
    if not (0.0 <= p_b <= 1.0 + 1e-12):
        raise ValueError(f"p_b out of range: {p_b!r}")
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth!r}")
    if refetch_distance is None:
        refetch_distance = min(depth - 1, prefetch_horizon(params, s))
    if refetch_distance < 0:
        refetch_distance = 0
    bufferage = depth - refetch_distance
    if bufferage <= 0:
        return INFINITE_COST
    # t_stall(0) == t_disk: a re-fetch at distance 0 is a full demand stall.
    refetch_penalty = params.t_driver + t_stall(params, refetch_distance, s)
    return p_b * refetch_penalty / bufferage


def cost_demand_eviction(params: SystemParams, marginal_hit_rate: float) -> float:
    """Cost of shrinking the demand cache by one buffer (Eq. 13).

    ``C_dc(n) = (H(n) - H(n-1)) * (T_driver + T_disk)``; the marginal hit
    rate is estimated online from LRU stack distances
    (:class:`repro.core.estimators.MarginalHitRateEstimator`).
    """
    if marginal_hit_rate < 0.0:
        raise ValueError(
            f"marginal_hit_rate must be >= 0, got {marginal_hit_rate!r}"
        )
    return marginal_hit_rate * (params.t_driver + params.t_disk)


def min_profitable_probability(params: SystemParams, s: float) -> float:
    """Smallest depth-1 probability with non-negative net benefit.

    At depth 1 the net benefit is ``p*dT_pf(1) - (1-p)*T_driver``; solving
    for zero gives ``p = T_driver / (dT_pf(1) + T_driver)``.  Candidates
    below this probability can be pruned before any cost comparison.
    Returns > 1 when prefetching one ahead saves nothing at all.
    """
    saved = delta_t_pf(params, 1, s)
    if saved <= 0.0:
        return 1.0 + 1e-9
    return params.t_driver / (saved + params.t_driver)


@dataclass(frozen=True)
class Decision:
    """Outcome of one cost-benefit comparison (Section 7, step 3)."""

    prefetch: bool
    benefit: float
    overhead: float
    cost: float

    @property
    def net_benefit(self) -> float:
        return self.benefit - self.overhead


def decide(
    params: SystemParams,
    *,
    p_b: float,
    p_x: float,
    depth: int,
    s: float,
    eviction_cost: float,
) -> Decision:
    """Apply Section 7's rule: prefetch iff ``B(b) - T_oh >= C``."""
    b = benefit(params, p_b, p_x, depth, s)
    oh = prefetch_overhead(params, p_b, p_x)
    return Decision(
        prefetch=(b - oh >= eviction_cost),
        benefit=b,
        overhead=oh,
        cost=eviction_cost,
    )


def _validate_probs(p_b: float, p_x: float) -> None:
    if not (0.0 <= p_b <= 1.0 + 1e-12):
        raise ValueError(f"p_b out of range: {p_b!r}")
    if not (0.0 <= p_x <= 1.0 + 1e-12):
        raise ValueError(f"p_x out of range: {p_x!r}")
    if p_b > p_x + 1e-12:
        raise ValueError(
            f"p_b ({p_b!r}) cannot exceed p_x ({p_x!r}): a path's probability "
            "is non-increasing with depth"
        )
