"""Core algorithms: the prefetch tree and the cost-benefit model."""

from repro.core.candidates import Candidate, best_candidates, iter_candidates
from repro.core.costbenefit import (
    INFINITE_COST,
    Decision,
    benefit,
    cost_demand_eviction,
    cost_prefetch_eviction,
    decide,
    delta_t_pf,
    prefetch_horizon,
    prefetch_overhead,
    t_stall,
)
from repro.core.estimators import (
    EwmaRate,
    PrefetchHitRatioEstimator,
    PrefetchRateEstimator,
    WindowedRate,
)
from repro.core.node import TreeNode
from repro.core.tree import (
    PAPER_NODE_BYTES,
    PAPER_NODE_BYTES_COMPACT,
    AccessOutcome,
    PrefetchTree,
    TreeStats,
)

__all__ = [
    "AccessOutcome",
    "Candidate",
    "Decision",
    "EwmaRate",
    "INFINITE_COST",
    "PAPER_NODE_BYTES",
    "PAPER_NODE_BYTES_COMPACT",
    "PrefetchHitRatioEstimator",
    "PrefetchRateEstimator",
    "PrefetchTree",
    "TreeNode",
    "TreeStats",
    "WindowedRate",
    "benefit",
    "best_candidates",
    "cost_demand_eviction",
    "cost_prefetch_eviction",
    "decide",
    "delta_t_pf",
    "iter_candidates",
    "prefetch_horizon",
    "prefetch_overhead",
    "t_stall",
]
