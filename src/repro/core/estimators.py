"""Online estimators for the dynamically calculated model inputs.

Figure 4 lists the dynamic inputs of the prefetching scheme:

* ``s`` -- the average number of prefetches issued per access period.  Both
  the stall model (Eq. 3/6) and the prefetch horizon depend on it, and it in
  turn depends on how much the scheme decides to prefetch, so it is tracked
  as an exponentially weighted moving average over access periods.
* ``h`` -- the prefetch hit ratio, the fraction of prefetched blocks that are
  eventually referenced.  The paper reports it (Figures 9 and 12) and notes
  that ``s`` and ``h`` trade off against each other.
* ``H(n) - H(n-1)`` -- the marginal LRU hit rate used by Eq. 13; estimated by
  the stack-distance profiler in :mod:`repro.cache.ghost` and smoothed here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class EwmaRate:
    """Exponentially weighted moving average of a per-period quantity.

    ``alpha`` is the weight of the newest observation.  Until the first
    observation, :attr:`value` reports ``initial``.
    """

    alpha: float = 0.05
    initial: float = 0.0
    value: float = field(init=False)
    observations: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha!r}")
        self.value = self.initial

    def observe(self, sample: float) -> float:
        """Fold one per-period sample into the average and return it."""
        if self.observations == 0:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        self.observations += 1
        return self.value


class PrefetchRateEstimator:
    """Tracks ``s``, the average prefetches issued per access period.

    The simulator calls :meth:`end_period` once per application I/O with the
    number of prefetches issued during that period.  A lifetime mean is kept
    alongside the EWMA because Figures 8 and 11 report the whole-run average.
    """

    def __init__(self, alpha: float = 0.05, initial: float = 1.0) -> None:
        self._ewma = EwmaRate(alpha=alpha, initial=initial)
        self._total_prefetches = 0
        self._periods = 0

    def end_period(self, prefetches_issued: int) -> None:
        if prefetches_issued < 0:
            raise ValueError(
                f"prefetches_issued must be >= 0, got {prefetches_issued!r}"
            )
        self._ewma.observe(float(prefetches_issued))
        self._total_prefetches += prefetches_issued
        self._periods += 1

    @property
    def s(self) -> float:
        """Smoothed prefetches-per-period, the ``s`` of Eqs. 3 and 6."""
        return self._ewma.value

    @property
    def lifetime_mean(self) -> float:
        """Whole-run average prefetches per period (Figures 8 and 11)."""
        if self._periods == 0:
            return 0.0
        return self._total_prefetches / self._periods

    @property
    def periods(self) -> int:
        return self._periods


class PrefetchHitRatioEstimator:
    """Tracks ``h``, the fraction of prefetched blocks that get referenced.

    A prefetched block resolves either as a *hit* (referenced while still in
    the prefetch cache) or a *miss* (evicted unreferenced, or still resident
    at end of run).  The ratio over resolved blocks is the paper's prefetch
    cache hit rate (Figures 9 and 12).
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    @property
    def resolved(self) -> int:
        return self.hits + self.misses

    @property
    def h(self) -> float:
        """Hit ratio over resolved prefetches; 0.0 before any resolve."""
        if self.resolved == 0:
            return 0.0
        return self.hits / self.resolved


class WindowedRate(object):
    """Fraction of true events over a sliding window of observations.

    Used for diagnostics where a recent-history rate is more informative
    than a lifetime one (e.g. recent predictability in reports).
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self._window = window
        self._events: deque = deque(maxlen=window)
        self._true_count = 0

    def observe(self, flag: bool) -> None:
        if len(self._events) == self._events.maxlen:
            oldest = self._events[0]
            if oldest:
                self._true_count -= 1
        self._events.append(bool(flag))
        if flag:
            self._true_count += 1

    @property
    def rate(self) -> float:
        if not self._events:
            return 0.0
        return self._true_count / len(self._events)

    def __len__(self) -> int:
        return len(self._events)
