"""Prefetch-candidate enumeration from the prefetch tree.

A *candidate* is a block reachable from the tree's current node along a path
of tree edges.  Its probability ``p_b`` is the product of the edge
probabilities along the path, its *distance* ``d_b`` is the number of edges,
and ``p_x`` is the cumulative probability of its parent on that path
(Sections 2 and 5).  The cost-benefit loop (Section 7) consumes candidates in
decreasing-benefit order; because ``B(b)`` is monotone in ``p_b`` at a fixed
depth, a best-first expansion by cumulative probability lets the loop stop
early without scanning the whole subtree.

The same block can be reachable along several paths (it may appear at many
places in the tree); we keep only the highest-probability occurrence, which
is the one the cost-benefit comparison would select anyway.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional

from repro.core.node import TreeNode
from repro.core.tree import PrefetchTree

Block = Hashable


@dataclass(frozen=True)
class Candidate:
    """One prefetchable block proposed by the tree."""

    block: Block
    probability: float
    """Cumulative probability ``p_b`` from the current node (Section 2)."""
    depth: int
    """Distance ``d_b`` in access periods (edges from the current node)."""
    parent_probability: float
    """Cumulative probability ``p_x`` of the path parent (depth ``d_b - 1``);
    1.0 for depth-1 candidates (the parent is the current position itself)."""
    parent_block: Optional[Block]
    """Block id of the path parent, or ``None`` for depth-1 candidates."""

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0 + 1e-12):
            raise ValueError(f"probability out of range: {self.probability!r}")
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth!r}")
        if self.probability > self.parent_probability + 1e-12:
            raise ValueError(
                "candidate probability cannot exceed its parent's "
                f"({self.probability!r} > {self.parent_probability!r})"
            )


def iter_candidates(
    tree: PrefetchTree,
    *,
    max_depth: int = 8,
    min_probability: float = 1e-4,
    start: Optional[TreeNode] = None,
) -> Iterator[Candidate]:
    """Yield candidates best-first by cumulative probability.

    Parameters
    ----------
    tree:
        The prefetch tree; expansion starts at ``tree.current`` unless
        ``start`` is given.
    max_depth:
        Deepest path explored.  Depths beyond the prefetch horizon add no
        benefit (Eq. 6 saturates), so a small bound loses nothing.
    min_probability:
        Paths whose cumulative probability falls below this are pruned; with
        probabilities multiplying along a path this bounds the frontier.
        Enumeration consults each node's relevant-children index, so edges
        with probability below ``1 / HEAVY_CHILD_DIVISOR`` (~0.001) at hub
        nodes may be skipped even if ``min_probability`` is lower.
    start:
        Expand from this node instead of the parse pointer (used by the
        perfect-selector oracle and by tests).
    """
    if max_depth < 1:
        raise ValueError(f"max_depth must be >= 1, got {max_depth!r}")
    if min_probability <= 0.0:
        raise ValueError(f"min_probability must be > 0, got {min_probability!r}")

    origin = tree.current if start is None else start
    if origin.weight <= 0 or not origin.has_children():
        return

    counter = itertools.count()  # tie-breaker: FIFO among equal probabilities
    # Heap entries: (-cumulative_prob, tiebreak, node, depth, parent_prob, parent_block)
    heap: List = []
    for block, child in tree.iter_relevant_children(origin):
        p = child.weight / origin.weight
        if p >= min_probability:
            heapq.heappush(heap, (-p, next(counter), child, 1, 1.0, None))

    while heap:
        neg_p, _, node, depth, parent_prob, parent_block = heapq.heappop(heap)
        p = -neg_p
        yield Candidate(
            block=node.block,
            probability=p,
            depth=depth,
            parent_probability=parent_prob,
            parent_block=parent_block,
        )
        if depth < max_depth and node.weight > 0 and node.has_children():
            for block, child in tree.iter_relevant_children(node):
                cp = p * (child.weight / node.weight)
                if cp >= min_probability:
                    heapq.heappush(
                        heap, (-cp, next(counter), child, depth + 1, p, node.block)
                    )


def best_candidates(
    tree: PrefetchTree,
    *,
    max_depth: int = 8,
    max_candidates: int = 64,
    min_probability: float = 1e-4,
    start: Optional[TreeNode] = None,
) -> List[Candidate]:
    """Top candidates, deduplicated by block (highest probability kept).

    Returns at most ``max_candidates`` candidates ordered by decreasing
    probability.  Because :func:`iter_candidates` is best-first, the first
    occurrence of each block is its best one.
    """
    if max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates!r}")
    chosen: Dict[Block, Candidate] = {}
    for cand in iter_candidates(
        tree, max_depth=max_depth, min_probability=min_probability, start=start
    ):
        if cand.block not in chosen:
            chosen[cand.block] = cand
            if len(chosen) >= max_candidates:
                break
    return list(chosen.values())
