"""Consistent-hash ring: stable session-id -> worker placement.

The gateway pins every session to one worker so the worker's in-memory
model state (prefetch tree, cost-benefit estimator) stays hot for that
session's whole life.  A consistent-hash ring gives that pinning two
properties a modulo hash cannot:

* **stability** — adding or removing one worker moves only ~1/N of the
  keyspace, so a restarted fleet re-routes almost nothing;
* **automatic succession** — removing a dead node makes ``owner(key)``
  yield the next node clockwise, which is exactly the worker the gateway
  should resume the dead worker's sessions on.

Virtual nodes smooth the distribution: each worker owns ``vnodes``
pseudo-random points on the ring, so two workers split the keyspace
nearly evenly instead of at the mercy of two hash values.  Hashing is
``blake2b`` (stdlib, seeded by content only), so placement is identical
across processes and Python runs — no ``PYTHONHASHSEED`` dependence.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Set, Tuple

#: Points per node.  64 keeps the max/min keyspace share within ~2x for
#: small fleets while the ring stays tiny (N*64 ints).
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """Position of ``label`` on the ring: first 8 bytes of blake2b."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping string keys to member node names."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        *,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes!r}")
        self.vnodes = vnodes
        self._nodes: Set[str] = set()
        #: Sorted (point, node) pairs; bisect on the point finds the
        #: first vnode clockwise of a key's hash.
        self._ring: List[Tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    # ----------------------------------------------------------- membership

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            bisect.insort(self._ring, (_point(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [entry for entry in self._ring if entry[1] != node]

    # -------------------------------------------------------------- routing

    def owner(
        self, key: str, *, exclude: Iterable[str] = ()
    ) -> Optional[str]:
        """The node owning ``key``: first vnode clockwise of its hash.

        ``exclude`` skips nodes known-dead before the ring has been told;
        the walk continues clockwise, which is the same succession order
        ``remove`` would produce.  ``None`` when no eligible node exists.
        """
        preference = self.preference(key, exclude=exclude)
        return preference[0] if preference else None

    def preference(
        self, key: str, *, exclude: Iterable[str] = ()
    ) -> List[str]:
        """All eligible nodes in succession (clockwise-first) order.

        The failover walk: ``preference(sid)[0]`` is the owner, ``[1]``
        the successor to resume on if the owner is down, and so on.
        """
        excluded = set(exclude)
        if not self._ring:
            return []
        start = bisect.bisect_left(self._ring, (_point(key), ""))
        ordered: List[str] = []
        seen: Set[str] = set()
        for offset in range(len(self._ring)):
            _, node = self._ring[(start + offset) % len(self._ring)]
            if node in seen or node in excluded:
                continue
            seen.add(node)
            ordered.append(node)
        return ordered

    def spread(self, keys: Iterable[str]) -> dict:
        """Key count per node for ``keys`` — balance introspection."""
        counts: dict = {node: 0 for node in self._nodes}
        for key in keys:
            node = self.owner(key)
            if node is not None:
                counts[node] += 1
        return counts
