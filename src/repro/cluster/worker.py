"""Worker fleet management: spawn, probe, restart, drain.

Two ``WorkerDirectory`` implementations back the gateway:

* :class:`WorkerSupervisor` — the production path: spawns N
  ``python -m repro serve`` subprocesses on ephemeral ports, watches
  each with both ``proc.wait()`` and periodic server-level STATS probes,
  restarts crashed workers with bounded exponential backoff, and fans
  SIGTERM out on :meth:`stop` so every worker drains its sessions to the
  shared checkpoint directory.
* :class:`StaticWorkerDirectory` — a hand-wired map for tests: register
  in-process :class:`~repro.service.server.BackgroundServer` workers (or
  a :class:`~repro.service.faults.ChaosProxy` standing in front of one)
  and flip them up/down explicitly.

A directory's job is only *membership*: who the workers are, where they
listen, and a callback stream of up/down transitions.  Routing (the
ring) and failover (resume-on-successor) live in the gateway, which
subscribes via :meth:`add_listener`.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.service import protocol
from repro.service.client import AsyncServiceClient
from repro.service.server import wait_port_ready

#: An up/down transition: ``callback(worker_id, up)``.
Listener = Callable[[str, bool], None]


class WorkerDirectory:
    """Membership interface the gateway consumes (see module docstring)."""

    def __init__(self) -> None:
        self._listeners: List[Listener] = []

    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        """Live workers: ``{worker_id: (host, port)}``."""
        raise NotImplementedError

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def _notify(self, worker_id: str, up: bool) -> None:
        for listener in list(self._listeners):
            listener(worker_id, up)


class StaticWorkerDirectory(WorkerDirectory):
    """Manual membership for tests; nothing is spawned or probed."""

    def __init__(self) -> None:
        super().__init__()
        self._endpoints: Dict[str, Tuple[str, int]] = {}

    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        return dict(self._endpoints)

    def register(self, worker_id: str, host: str, port: int) -> None:
        self._endpoints[worker_id] = (host, port)
        self._notify(worker_id, True)

    def mark_down(self, worker_id: str) -> None:
        if self._endpoints.pop(worker_id, None) is not None:
            self._notify(worker_id, False)

    def mark_up(self, worker_id: str, host: str, port: int) -> None:
        self.register(worker_id, host, port)


class WorkerStartupError(RuntimeError):
    """A spawned worker never reported a listening port."""


class _Worker:
    """One supervised subprocess slot (survives restarts of its process)."""

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.port: Optional[int] = None
        self.up = False
        self.restarts = 0
        self.task: Optional[asyncio.Task] = None


class WorkerSupervisor(WorkerDirectory):
    """Spawn and babysit N advisory-server subprocesses.

    ::

        supervisor = WorkerSupervisor(3, checkpoint_dir="ckpt")
        await supervisor.start()
        gateway = AdvisoryGateway(supervisor)
        ...
        await supervisor.stop()   # SIGTERM fan-out: workers drain to ckpt

    Liveness is judged two ways: ``proc.wait()`` catches crashes
    instantly, and a periodic server-level STATS probe catches a process
    that is alive but wedged (accepting nothing).  Either takes the
    worker through down -> backoff -> respawn -> up; listeners see both
    transitions, so a gateway can fail sessions over while the
    replacement boots and re-admit the worker when it is back.
    """

    def __init__(
        self,
        count: int,
        *,
        host: str = "127.0.0.1",
        checkpoint_dir: Optional[str] = None,
        checkpoint_every_s: Optional[float] = None,
        store: Optional[str] = None,
        model: Optional[str] = None,
        tenant_config: Optional[str] = None,
        memory_budget_mb: Optional[int] = None,
        max_sessions: int = 1024,
        max_inflight: Optional[int] = None,
        brownout: bool = False,
        trace_dir: Optional[str] = None,
        trace_sample: Optional[float] = None,
        trace_seed: Optional[int] = None,
        probe_interval_s: float = 1.0,
        probe_timeout_s: float = 5.0,
        restart_backoff_s: float = 0.1,
        restart_backoff_max_s: float = 5.0,
        startup_timeout_s: float = 30.0,
        python: Optional[str] = None,
        echo: Optional[Callable[[str], None]] = None,
    ) -> None:
        super().__init__()
        if count < 1:
            raise ValueError(f"need at least one worker, got {count!r}")
        self.host = host
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every_s = checkpoint_every_s
        self.store = store
        self.model = model
        self.tenant_config = tenant_config
        self.memory_budget_mb = memory_budget_mb
        self.max_sessions = max_sessions
        self.max_inflight = max_inflight
        self.brownout = brownout
        #: Tracing flags forwarded to every worker's serve argv; workers
        #: write per-component NDJSON span files into ``trace_dir`` (the
        #: gateway, sharing the directory, is the head-based sampler).
        self.trace_dir = trace_dir
        self.trace_sample = trace_sample
        self.trace_seed = trace_seed
        self.probe_interval_s = probe_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.restart_backoff_s = restart_backoff_s
        self.restart_backoff_max_s = restart_backoff_max_s
        self.startup_timeout_s = startup_timeout_s
        self.python = python if python is not None else sys.executable
        self.echo = echo
        self.workers: Dict[str, _Worker] = {
            f"w{i}": _Worker(f"w{i}") for i in range(count)
        }
        self.workers_restarted = 0
        self._stopping = False

    # ------------------------------------------------------------ directory

    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        return {
            worker.worker_id: (self.host, worker.port)
            for worker in self.workers.values()
            if worker.up and worker.port is not None
        }

    # ------------------------------------------------------------ lifecycle

    def _say(self, message: str) -> None:
        if self.echo is not None:
            self.echo(message)

    def _command(self, worker_id: str) -> List[str]:
        argv = [
            self.python, "-m", "repro", "serve",
            "--host", self.host, "--port", "0",
            "--worker-id", worker_id,
            "--max-sessions", str(self.max_sessions),
        ]
        if self.checkpoint_dir is not None:
            argv += ["--checkpoint-dir", self.checkpoint_dir]
            if self.checkpoint_every_s is not None:
                argv += ["--checkpoint-every-s", str(self.checkpoint_every_s)]
        if self.store is not None:
            argv += ["--store", self.store]
        if self.model is not None:
            argv += ["--model", self.model]
        if self.tenant_config is not None:
            argv += ["--tenant-config", self.tenant_config]
        if self.memory_budget_mb is not None:
            argv += ["--memory-budget-mb", str(self.memory_budget_mb)]
        if self.max_inflight is not None:
            argv += ["--max-inflight", str(self.max_inflight)]
        if self.brownout:
            argv += ["--brownout"]
        if self.trace_dir is not None:
            argv += ["--trace-dir", self.trace_dir]
            if self.trace_sample is not None:
                argv += ["--trace-sample", str(self.trace_sample)]
            if self.trace_seed is not None:
                argv += ["--trace-seed", str(self.trace_seed)]
        return argv

    async def _spawn(self, worker: _Worker) -> None:
        """Start one subprocess and wait until its port accepts."""
        proc = await asyncio.create_subprocess_exec(
            *self._command(worker.worker_id),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
        )
        worker.proc = proc
        worker.port = None
        # The serve banner ("... listening on HOST:PORT ...") is the only
        # way to learn an ephemeral port; read lines until it shows up.
        deadline = (
            asyncio.get_running_loop().time() + self.startup_timeout_s
        )
        while worker.port is None:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0 or proc.stdout is None:
                raise WorkerStartupError(
                    f"{worker.worker_id}: no listening banner within "
                    f"{self.startup_timeout_s}s"
                )
            try:
                raw = await asyncio.wait_for(
                    proc.stdout.readline(), remaining
                )
            except (asyncio.TimeoutError, TimeoutError):
                raise WorkerStartupError(
                    f"{worker.worker_id}: no listening banner within "
                    f"{self.startup_timeout_s}s"
                ) from None
            if not raw:
                raise WorkerStartupError(
                    f"{worker.worker_id}: exited before listening "
                    f"(rc={proc.returncode})"
                )
            line = raw.decode("utf-8", "replace").rstrip()
            self._say(f"[{worker.worker_id}] {line}")
            if " listening on " in line:
                try:
                    worker.port = int(
                        line.split(" listening on ", 1)[1]
                        .split()[0].rsplit(":", 1)[1]
                    )
                except (IndexError, ValueError):
                    raise WorkerStartupError(
                        f"{worker.worker_id}: unparseable banner {line!r}"
                    ) from None
        await asyncio.to_thread(
            wait_port_ready, self.host, worker.port,
            timeout=self.startup_timeout_s,
        )
        worker.up = True
        self._say(
            f"fleet: worker {worker.worker_id} pid={proc.pid} "
            f"port={worker.port} up"
        )
        self._notify(worker.worker_id, True)

    async def _drain_stdout(self, worker: _Worker) -> None:
        """Keep the pipe moving so a chatty worker never blocks on it."""
        proc = worker.proc
        if proc is None or proc.stdout is None:
            return
        while True:
            raw = await proc.stdout.readline()
            if not raw:
                return
            self._say(
                f"[{worker.worker_id}] "
                f"{raw.decode('utf-8', 'replace').rstrip()}"
            )

    async def _probe(self, worker: _Worker) -> None:
        """One server-level STATS round trip; raises when unhealthy."""
        client = await asyncio.wait_for(
            AsyncServiceClient.connect(self.host, worker.port),
            self.probe_timeout_s,
        )
        try:
            stats = await asyncio.wait_for(
                client.server_stats(), self.probe_timeout_s
            )
            if stats.get("worker") != worker.worker_id:
                raise ConnectionError(
                    f"probe answered by {stats.get('worker')!r}, "
                    f"expected {worker.worker_id!r}"
                )
        finally:
            await client.aclose()

    async def _watch(self, worker: _Worker) -> None:
        """Run one worker slot forever: monitor, restart on death."""
        while not self._stopping:
            proc = worker.proc
            assert proc is not None
            drainer = asyncio.ensure_future(self._drain_stdout(worker))
            waiter = asyncio.ensure_future(proc.wait())
            try:
                while not self._stopping:
                    done, _ = await asyncio.wait(
                        {waiter}, timeout=self.probe_interval_s
                    )
                    if waiter in done:
                        break  # process died
                    try:
                        await self._probe(worker)
                    except (OSError, ConnectionError, TimeoutError,
                            asyncio.TimeoutError, protocol.ProtocolError):
                        # Alive but not serving: treat as dead.
                        proc.kill()
                        await waiter
                        break
            finally:
                if not waiter.done():
                    waiter.cancel()
                drainer.cancel()
                await asyncio.gather(
                    drainer, return_exceptions=True
                )
            if self._stopping:
                return
            worker.up = False
            self._say(
                f"fleet: worker {worker.worker_id} died "
                f"(rc={proc.returncode}); restarting"
            )
            self._notify(worker.worker_id, False)
            backoff = min(
                self.restart_backoff_max_s,
                self.restart_backoff_s * (2 ** min(worker.restarts, 10)),
            )
            await asyncio.sleep(backoff)
            if self._stopping:
                return
            worker.restarts += 1
            self.workers_restarted += 1
            try:
                await self._spawn(worker)
            except (WorkerStartupError, OSError) as exc:
                self._say(
                    f"fleet: worker {worker.worker_id} respawn failed: "
                    f"{exc}"
                )
                # Loop again: backoff grows with worker.restarts.
                worker.up = False
                if worker.proc is not None and worker.proc.returncode is None:
                    worker.proc.kill()
                    await worker.proc.wait()
                continue

    def kill_worker(self, worker_id: str) -> bool:
        """SIGKILL one worker's process — the chaos hook campaigns use.

        The watch loop sees the death like any crash: listeners get the
        down event (gateway fails sessions over), the slot restarts with
        backoff, and ``workers_restarted`` counts it.  Returns True when
        a live process was actually killed.
        """
        worker = self.workers.get(worker_id)
        if worker is None:
            raise KeyError(f"unknown worker {worker_id!r}")
        proc = worker.proc
        if proc is None or proc.returncode is not None:
            return False
        try:
            proc.kill()
        except ProcessLookupError:
            return False
        return True

    async def start(self) -> "WorkerSupervisor":
        """Spawn every worker and wait until all accept connections."""
        try:
            await asyncio.gather(*(
                self._spawn(worker) for worker in self.workers.values()
            ))
        except BaseException:
            await self.stop()
            raise
        for worker in self.workers.values():
            worker.task = asyncio.ensure_future(self._watch(worker))
        return self

    async def stop(self, *, drain_timeout_s: float = 15.0) -> None:
        """SIGTERM fan-out: every worker drains, then we reap them all."""
        self._stopping = True
        for worker in self.workers.values():
            if worker.task is not None:
                worker.task.cancel()
        tasks = [w.task for w in self.workers.values() if w.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        procs = [
            worker.proc for worker in self.workers.values()
            if worker.proc is not None and worker.proc.returncode is None
        ]
        for proc in procs:
            try:
                proc.send_signal(signal.SIGTERM)
            except ProcessLookupError:
                pass
        if procs:
            done, pending = await asyncio.wait(
                [asyncio.ensure_future(p.wait()) for p in procs],
                timeout=drain_timeout_s,
            )
            if pending:
                for proc in procs:
                    if proc.returncode is None:
                        proc.kill()
                await asyncio.gather(*pending, return_exceptions=True)
        for worker in self.workers.values():
            worker.up = False

    async def __aenter__(self) -> "WorkerSupervisor":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()
