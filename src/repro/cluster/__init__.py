"""Horizontal scale-out for the advisory service: the fleet layer.

One advisory server is one core and one failure domain; production
prefetching systems (MITHRIL at CDN scale, the PPE engine tier) shard
prediction across a fleet.  This package is that layer, built on PR 4's
resilience substrate (checkpoints, ``OPEN resume``, seq-tagged folds):

* :mod:`~repro.cluster.ring`    — consistent-hash ring with virtual
  nodes; stable session-id -> worker placement with automatic
  succession when a node is removed;
* :mod:`~repro.cluster.worker`  — :class:`WorkerSupervisor` (spawn N
  ``repro serve`` subprocesses, probe with server-level STATS, restart
  with bounded backoff, SIGTERM fan-out drain) and
  :class:`StaticWorkerDirectory` for in-process wiring in tests;
* :mod:`~repro.cluster.gateway` — :class:`AdvisoryGateway`, a protocol-
  v3 server that proxies sessions to their ring owner, relays worker
  reply bytes verbatim (exact advice parity with a bare server), and on
  worker death resumes sessions on the ring successor from the shared
  checkpoint directory, replaying its per-session journal tail;
* :mod:`~repro.cluster.fleet`   — :func:`start_fleet` / :class:`Fleet`
  (the programmatic embedding the campaign engine drives) and
  :func:`serve_fleet`, the ``python -m repro fleet`` core wiring all
  three together.

Clients need no changes: a replay or chaos run pointed at the gateway's
port behaves exactly as against a single server.
"""

from repro.cluster.fleet import Fleet, serve_fleet, start_fleet
from repro.cluster.gateway import AdvisoryGateway, GatewayStats, SessionLost
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.worker import (
    StaticWorkerDirectory,
    WorkerDirectory,
    WorkerStartupError,
    WorkerSupervisor,
)

__all__ = [
    "AdvisoryGateway",
    "DEFAULT_VNODES",
    "Fleet",
    "GatewayStats",
    "HashRing",
    "SessionLost",
    "StaticWorkerDirectory",
    "WorkerDirectory",
    "WorkerStartupError",
    "WorkerSupervisor",
    "serve_fleet",
    "start_fleet",
]
