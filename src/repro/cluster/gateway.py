"""Protocol-v3 gateway: one client-facing endpoint, N workers behind it.

Clients speak the ordinary advisory protocol to the gateway — same
OPEN/OBSERVE/STATS/CLOSE lines, same replies — and never learn the fleet
exists.  Per request the gateway:

* assigns every OPEN a globally unique session id (``g1``, ``g2``, ...)
  and pins it to the worker owning that id on the consistent-hash
  :class:`~repro.cluster.ring.HashRing`;
* forwards the request down a pipelined per-worker link, injecting the
  session id into OPEN (so worker session == checkpoint file == the id
  the client sees) and a ``seq`` tag into OBSERVE (so a replayed or
  retried fold is detected worker-side), and relays the worker's reply
  line to the client verbatim — advice bytes are untouched, which is
  what makes gateway-vs-bare-server parity exact;
* journals every acknowledged OBSERVE per session.

The journal is what buys transparent failover for *plain* clients, not
just :class:`~repro.service.client.ResilientAsyncClient`: when a worker
dies, each of its sessions is re-opened on the ring successor with
``OPEN resume=<id>`` against the shared checkpoint directory, the
journal tail past the checkpoint is replayed with ``seq`` tags (the
worker's duplicate detection absorbs an observation that was folded
right before the crash), and only if no checkpoint exists does the
session degrade to a fresh no-prefetch session rebuilt from the full
journal.  A session is *lost* — surfaced as an error on its next use —
only when even that is impossible.  Journals grow with session length
(one int per observation); bounded-memory operation comes from clients
closing sessions, same as the worker's own session table.

Ordering and backpressure mirror the worker: one request at a time per
client connection, every reply drained before the next read, per-session
locks serializing cross-connection access and failover.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Tracer
    from repro.tenancy.config import TenancyConfig

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.worker import WorkerDirectory
from repro.service import protocol
from repro.service.metrics import _COUNTER_FIELDS, ServiceMetrics
from repro.service.overload import (
    AdmissionGuard,
    BreakerPolicy,
    CircuitBreaker,
    OverloadPolicy,
)
from repro.service.protocol import (
    CloseReply,
    ErrorReply,
    HelloReply,
    ObserveReply,
    ObserveRequest,
    OpenReply,
    OpenRequest,
    ProtocolError,
    Reply,
    Request,
    StatsReply,
    StatsRequest,
)
from repro.store.codec import SnapshotError, read_snapshot


class SessionLost(Exception):
    """Failover exhausted every option; the session state is gone."""


@dataclass
class GatewayStats:
    """What the gateway did, for the fleet summary and fleet STATS."""

    connections_opened: int = 0
    connections_closed: int = 0
    sessions_opened: int = 0
    sessions_resumed: int = 0
    sessions_reattached: int = 0
    sessions_closed: int = 0
    sessions_orphaned: int = 0
    failovers_resumed: int = 0
    failovers_degraded: int = 0
    sessions_lost: int = 0
    tenants_rejected: int = 0
    errors: int = 0
    overload_rejections: int = 0
    breakers_opened: int = 0
    breakers_closed: int = 0
    journal_compactions: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "sessions_opened": self.sessions_opened,
            "sessions_resumed": self.sessions_resumed,
            "sessions_reattached": self.sessions_reattached,
            "sessions_closed": self.sessions_closed,
            "sessions_orphaned": self.sessions_orphaned,
            "failovers_resumed": self.failovers_resumed,
            "failovers_degraded": self.failovers_degraded,
            "sessions_lost": self.sessions_lost,
            "tenants_rejected": self.tenants_rejected,
            "errors": self.errors,
            "overload_rejections": self.overload_rejections,
            "breakers_opened": self.breakers_opened,
            "breakers_closed": self.breakers_closed,
            "journal_compactions": self.journal_compactions,
        }


class _Conn:
    """One live upstream socket with its FIFO of reply futures."""

    __slots__ = ("reader", "writer", "pending", "task")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.pending: Deque[asyncio.Future] = deque()
        self.task: Optional[asyncio.Task] = None


class _WorkerLink:
    """Pipelined request/reply multiplexer over one worker connection.

    Requests from many client connections share one upstream socket;
    because the worker answers strictly in order, replies are matched to
    requests FIFO.  That invariant is also the fragility: a reply that
    times out or fails to decode means the stream can no longer be
    trusted to line up, so the *connection is torn down* — never skipped
    past — and every in-flight request fails with ``ConnectionError``,
    which the gateway turns into failover.
    """

    def __init__(
        self,
        worker_id: str,
        resolve,
        *,
        timeout_s: float = 30.0,
        limit: int = protocol.MAX_LINE_BYTES,
    ) -> None:
        self.worker_id = worker_id
        self._resolve = resolve
        self._timeout_s = timeout_s
        self._limit = limit
        self._conn: Optional[_Conn] = None
        self._lock = asyncio.Lock()

    async def _connect(self) -> _Conn:
        endpoint = self._resolve()
        if endpoint is None:
            raise ConnectionError(f"worker {self.worker_id} is down")
        host, port = endpoint
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=self._limit),
            self._timeout_s,
        )
        banner = await asyncio.wait_for(reader.readline(), self._timeout_s)
        if not banner:
            writer.close()
            raise ConnectionError(
                f"worker {self.worker_id} closed during HELLO"
            )
        conn = _Conn(reader, writer)
        conn.task = asyncio.ensure_future(self._read_loop(conn))
        return conn

    async def _read_loop(self, conn: _Conn) -> None:
        try:
            while True:
                line = await conn.reader.readline()
                if not line:
                    break
                if not conn.pending:
                    break  # unsolicited reply: FIFO broken, bail out
                future = conn.pending.popleft()
                if not future.done():
                    future.set_result(line)
        except (OSError, asyncio.LimitOverrunError, ValueError):
            pass
        except asyncio.CancelledError:
            return  # teardown cancelled us; it also fails the pending
        finally:
            self._teardown(conn)

    def _teardown(self, conn: Optional[_Conn]) -> None:
        if conn is None:
            return
        if self._conn is conn:
            self._conn = None
        while conn.pending:
            future = conn.pending.popleft()
            if not future.done():
                future.set_exception(ConnectionError(
                    f"worker {self.worker_id} connection lost"
                ))
        if conn.task is not None and not conn.task.done():
            conn.task.cancel()
        transport = conn.writer.transport
        if transport is not None:
            transport.abort()

    def invalidate(self) -> None:
        """Drop the cached connection (worker restarted or went down)."""
        self._teardown(self._conn)

    async def request(self, line: bytes) -> bytes:
        """Send one NDJSON line; return the matching reply line."""
        async with self._lock:
            # The lock covers connect + enqueue + write, so the pending
            # FIFO order is exactly the on-wire order.  Awaiting the
            # reply happens outside it: requests pipeline.
            conn = self._conn
            if conn is None:
                conn = self._conn = await self._connect()
            future = asyncio.get_running_loop().create_future()
            conn.pending.append(future)
            try:
                conn.writer.write(line)
                await asyncio.wait_for(
                    conn.writer.drain(), self._timeout_s
                )
            except (OSError, asyncio.TimeoutError, TimeoutError):
                self._teardown(conn)
                raise ConnectionError(
                    f"worker {self.worker_id} write failed"
                ) from None
        try:
            return await asyncio.wait_for(future, self._timeout_s)
        except (asyncio.TimeoutError, TimeoutError):
            # A late reply would be matched to the wrong request; the
            # only safe recovery is a fresh connection.
            self._teardown(conn)
            raise ConnectionError(
                f"worker {self.worker_id} timed out"
            ) from None

    async def aclose(self) -> None:
        self.invalidate()


class _GatewaySession:
    """Gateway-side record of one routed session."""

    __slots__ = (
        "sid", "worker_id", "open_request", "policy_name", "cache_size",
        "journal", "journal_offset", "degraded", "orphaned", "closed",
        "lock", "tenant", "trace",
    )

    def __init__(
        self,
        sid: str,
        worker_id: str,
        open_request: OpenRequest,
        policy_name: str,
        cache_size: int,
        journal_offset: int,
    ) -> None:
        self.sid = sid
        self.worker_id = worker_id
        self.open_request = open_request
        self.policy_name = policy_name
        self.cache_size = cache_size
        self.tenant = open_request.tenant
        #: ``journal[i]`` is the block folded at seq ``journal_offset+i``.
        #: ``journal_offset`` is the session period when the gateway
        #: first saw it (0 unless resumed from an earlier life).
        self.journal: List[int] = []
        self.journal_offset = journal_offset
        self.degraded = False
        self.orphaned = False
        self.closed = False
        #: Trace id riding the session's OPEN (None when unsampled); the
        #: failover resume reuses ``open_request`` verbatim, so lineage
        #: survives worker moves for free.
        self.trace: Optional[str] = open_request.trace
        self.lock = asyncio.Lock()

    @property
    def next_seq(self) -> int:
        return self.journal_offset + len(self.journal)


class AdvisoryGateway:
    """The fleet's client-facing server (see module docstring).

    ::

        directory = StaticWorkerDirectory()           # or WorkerSupervisor
        directory.register("w0", "127.0.0.1", port0)
        gateway = AdvisoryGateway(directory)
        server = await gateway.start(port=0)
        ...
        await gateway.aclose()
    """

    def __init__(
        self,
        directory: WorkerDirectory,
        *,
        vnodes: int = DEFAULT_VNODES,
        request_timeout_s: float = 30.0,
        idle_timeout_s: Optional[float] = 300.0,
        max_line_bytes: int = protocol.MAX_LINE_BYTES,
        max_orphaned: int = 64,
        on_route=None,
        tenant_config: Optional["TenancyConfig"] = None,
        tenant_poll_interval_s: float = 5.0,
        overload: Optional[OverloadPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        breaker_clock=time.monotonic,
        checkpoint_dir: Optional[str] = None,
        journal_compact_after: int = 4096,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.directory = directory
        self.ring = HashRing(directory.endpoints(), vnodes=vnodes)
        self.stats = GatewayStats()
        self.tracer = tracer
        """Span recorder for the gateway stages (admission, ring lookup,
        journal append, worker RPC, reply relay).  The gateway is the
        head-based sampler: it mints a deterministic trace id per OPEN,
        keeps it iff sampled, and injects it into the forwarded OPEN so
        the worker's spans join the same trace.  ``None`` = one falsy
        check per request."""
        self.started_at = time.monotonic()
        self.tenant_config = tenant_config
        """Fleet-wide tenant quotas; the same config's per-tenant limits are
        also enforced per worker, but the gateway sees the whole fleet and
        rejects before placement (see :meth:`_admit_tenant`)."""
        self.tenant_poll_interval_s = tenant_poll_interval_s
        #: TTL cache of summed per-tenant model-byte gauges from worker
        #: STATS, so byte quotas don't cost a fleet poll per OPEN.
        self._tenant_bytes_cache: Tuple[float, Dict[str, int]] = (
            float("-inf"), {},
        )
        self.overload = AdmissionGuard(overload)
        """Fleet-front admission: the gateway sheds new OPENs before they
        reach any worker, so a flood costs one gateway-side refusal rather
        than a placement round trip (see :meth:`_shed_reply`)."""
        self.breaker_policy = breaker or BreakerPolicy()
        self._breaker_clock = breaker_clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.checkpoint_dir = checkpoint_dir
        """Shared checkpoint directory, when known.  Lets the gateway read
        snapshot provenance and drop journal entries a durable checkpoint
        already covers (see :meth:`_compact_journal`)."""
        self.journal_compact_after = journal_compact_after
        self.request_timeout_s = request_timeout_s
        self.idle_timeout_s = idle_timeout_s
        self.max_line_bytes = max_line_bytes
        self.max_orphaned = max_orphaned
        self.on_route = on_route
        self.sessions: Dict[str, _GatewaySession] = {}
        self._orphans: "OrderedDict[str, None]" = OrderedDict()
        self._links: Dict[str, _WorkerLink] = {}
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._background: Set[asyncio.Task] = set()
        directory.add_listener(self._on_membership)

    # -------------------------------------------------------------- wiring

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("gateway is not started")
        return self._server.sockets[0].getsockname()[1]

    def _link(self, worker_id: str) -> _WorkerLink:
        link = self._links.get(worker_id)
        if link is None:
            link = self._links[worker_id] = _WorkerLink(
                worker_id,
                lambda wid=worker_id: self.directory.endpoints().get(wid),
                timeout_s=self.request_timeout_s,
                limit=self.max_line_bytes,
            )
        return link

    def _breaker(self, worker_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(worker_id)
        if breaker is None:
            breaker = self._breakers[worker_id] = CircuitBreaker(
                self.breaker_policy, clock=self._breaker_clock,
            )
        return breaker

    def _tripped(self) -> Set[str]:
        """Workers whose breaker is open and still cooling down.

        Used to keep *placement* (new OPENs, unknown-sid resumes) off a
        worker that just proved sick; existing traffic still reaches the
        half-open probe path through :meth:`_worker_call`.
        """
        return {
            worker_id
            for worker_id, breaker in self._breakers.items()
            if breaker.blocked
        }

    def _record_breaker_failure(
        self, breaker: CircuitBreaker, worker_id: str
    ) -> None:
        if not breaker.record_failure():
            return
        self.stats.breakers_opened += 1
        # The breaker just tripped: every session pinned to this worker
        # would now fail fast, so move them to ring successors eagerly —
        # the same treatment a directory down-event gets.
        for session in list(self.sessions.values()):
            if session.worker_id == worker_id and not session.closed:
                self._spawn(self._failover_task(session, worker_id))

    async def _worker_call(
        self, worker_id: str, request: Request
    ) -> Tuple[bytes, Reply]:
        """One breaker-guarded typed round trip to ``worker_id``.

        Every gateway-to-worker RPC funnels through here: the breaker
        fails fast while open, counts connect/timeout/garbage failures,
        and closes again on the first healthy reply.  Failures surface as
        ``ConnectionError`` so existing failover paths apply unchanged.
        """
        breaker = self._breaker(worker_id)
        if not breaker.allow():
            raise ConnectionError(
                f"worker {worker_id}: circuit open (cooling down)"
            )
        link = self._link(worker_id)
        try:
            raw = await link.request(protocol.encode_request(request))
        except (ConnectionError, OSError):
            self._record_breaker_failure(breaker, worker_id)
            raise
        try:
            reply = protocol.decode_reply(raw)
        except ProtocolError:
            link.invalidate()
            self._record_breaker_failure(breaker, worker_id)
            raise ConnectionError(
                f"worker {worker_id} sent an undecodable reply"
            ) from None
        if breaker.record_success():
            self.stats.breakers_closed += 1
        return raw, reply

    def _spawn(self, coro) -> None:
        task = asyncio.ensure_future(coro)
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    def _on_membership(self, worker_id: str, up: bool) -> None:
        link = self._links.get(worker_id)
        if link is not None:
            link.invalidate()  # old socket points at the old process
        if up:
            self.ring.add(worker_id)
            return
        self.ring.remove(worker_id)
        # Eager failover: don't wait for the next client request to
        # discover the death — move the dead worker's sessions now.
        for session in list(self.sessions.values()):
            if session.worker_id == worker_id and not session.closed:
                self._spawn(self._failover_task(session, worker_id))

    async def _failover_task(
        self, session: _GatewaySession, dead_worker: str
    ) -> None:
        async with session.lock:
            if session.worker_id != dead_worker or session.closed:
                return  # an inline failover beat us to it
            try:
                await self._failover(session, exclude={dead_worker})
            except SessionLost:
                pass  # already accounted; surfaces on next client use

    # ------------------------------------------------------------ lifecycle

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        self._server = await asyncio.start_server(
            self.handle_connection, host, port, limit=self.max_line_bytes,
        )
        return self._server

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._background):
            task.cancel()
        if self._background:
            await asyncio.gather(*self._background, return_exceptions=True)
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionResetError, BrokenPipeError):
                pass
        for link in self._links.values():
            await link.aclose()
        self._links.clear()
        if self.tracer is not None:
            self.tracer.close()

    # ------------------------------------------------------------ upstream

    async def _rpc(self, link: _WorkerLink, request: Request) -> Reply:
        """Typed round trip on a link; garbage replies kill the link."""
        _, reply = await self._worker_call(link.worker_id, request)
        return reply

    async def _forward(
        self, session: _GatewaySession, request: Request
    ) -> Tuple[bytes, Reply]:
        """Forward on the session's worker, failing over once if it died."""
        try:
            raw, reply = await self._forward_once(session, request)
        except (ConnectionError, OSError):
            failed = session.worker_id
            await self._failover(session, exclude={failed})
            return await self._forward_once(session, request)
        if (
            isinstance(reply, ErrorReply)
            and reply.error == protocol.E_UNKNOWN_SESSION
        ):
            # The worker no longer has it: a link reset detached the
            # session worker-side, or the worker restarted.  Its state
            # is in the worker's detached table or the shared checkpoint
            # dir, so failover (NOT excluding the current worker) can
            # resume it in place.
            await self._failover(session, exclude=set())
            return await self._forward_once(session, request)
        return raw, reply

    async def _forward_once(
        self, session: _GatewaySession, request: Request
    ) -> Tuple[bytes, Reply]:
        return await self._worker_call(session.worker_id, request)

    async def _failover(
        self, session: _GatewaySession, *, exclude: Set[str]
    ) -> None:
        """Move ``session`` to a live worker; caller holds its lock.

        Tries each remaining ring node in succession order: first
        ``OPEN resume`` (checkpoint / detached state, decision-identical),
        replaying the journal tail past the restored period; when no
        checkpoint exists anywhere (shared directory, so one worker's
        answer speaks for all), a degraded no-prefetch session is rebuilt
        from the full journal.  Raises :class:`SessionLost` when neither
        is possible; the session is then removed and counted.
        """
        sid = session.sid
        prior_worker = session.worker_id
        started_s = time.perf_counter()
        resume = replace(
            session.open_request, id=0, resume=sid, session_id=sid,
        )
        for worker_id in self.ring.preference(sid, exclude=exclude):
            link = self._link(worker_id)
            try:
                reply = await self._rpc(link, resume)
                if (
                    isinstance(reply, ErrorReply)
                    and reply.error == protocol.E_SESSION_ERROR
                    and "already exists" in reply.message
                ):
                    # The session is live on this worker but our link
                    # reset hasn't detached it yet; give the worker a
                    # beat to notice, then retry once.
                    await asyncio.sleep(0.05)
                    reply = await self._rpc(link, resume)
            except (ConnectionError, OSError):
                continue  # this candidate is down too: keep walking
            if isinstance(reply, OpenReply):
                period = reply.period
                if period < session.journal_offset:
                    break  # checkpoint predates our journal: gap
                if period > session.next_seq + 1:
                    break  # checkpoint from a future we never saw
                if await self._replay_tail(link, session, period):
                    session.worker_id = worker_id
                    self.stats.failovers_resumed += 1
                    self._trace_failover(session, started_s, prior_worker)
                    # Note the resume period is NOT compaction evidence:
                    # it may come from a worker's in-memory detached
                    # table, not a durable checkpoint, and truncating to
                    # it would leave a journal gap on the next failover.
                    # Only _compact_journal (which reads the snapshot
                    # file itself) may advance journal_offset.
                    return
                break
            if (
                isinstance(reply, ErrorReply)
                and reply.error == protocol.E_UNKNOWN_SESSION
                and session.journal_offset == 0
            ):
                # No detached state here and no checkpoint file — and
                # the checkpoint dir is shared, so no other worker would
                # find one either.  Rebuild from the gateway journal.
                resumed_clean = len(session.journal) == 0
                if await self._reopen_degraded(link, session):
                    session.worker_id = worker_id
                    if resumed_clean:
                        self.stats.failovers_resumed += 1
                    else:
                        self.stats.failovers_degraded += 1
                    self._trace_failover(session, started_s, prior_worker)
                    return
                break
            continue  # worker-specific refusal (limits): try the next
        self.stats.sessions_lost += 1
        session.closed = True
        self.sessions.pop(sid, None)
        self._orphans.pop(sid, None)
        raise SessionLost(f"session {sid} lost: no resumable state")

    def _trace_failover(
        self, session: _GatewaySession, started_s: float, prior: str
    ) -> None:
        """Record that a sampled session survived a worker move.

        ``failover=1`` lets trace tooling count lineage breaks; the span
        rides the session's original trace id, which the resume carried
        over in ``open_request``."""
        if self.tracer is None or session.trace is None:
            return
        self.tracer.record(
            session.trace, "gateway.failover",
            started_s, time.perf_counter() - started_s,
            session=session.sid, failover=1,
            from_worker=prior, to_worker=session.worker_id,
        )

    async def _replay_tail(
        self, link: _WorkerLink, session: _GatewaySession, period: int
    ) -> bool:
        """Re-fold journal entries past ``period``; False on any miss."""
        start = period - session.journal_offset
        for i in range(max(0, start), len(session.journal)):
            seq = session.journal_offset + i
            try:
                reply = await self._rpc(link, ObserveRequest(
                    id=0, session=session.sid,
                    block=session.journal[i], seq=seq,
                ))
            except (ConnectionError, OSError):
                return False
            if not isinstance(reply, ObserveReply):
                return False
        return True

    def _truncate_journal(
        self, session: _GatewaySession, period: int
    ) -> None:
        """Drop journal entries below ``period``; caller proved that a
        checkpoint at ``period`` is durable on the shared directory."""
        if not session.journal_offset < period <= session.next_seq:
            return
        del session.journal[: period - session.journal_offset]
        session.journal_offset = period
        self.stats.journal_compactions += 1

    async def _compact_journal(self, session: _GatewaySession) -> None:
        """Bound journal memory against the worker's own checkpoints.

        The failover contract is that entries at or below the latest
        *durably written* checkpoint period are never replayed (resume
        restores them from the snapshot), so once the shared checkpoint
        file reports period P the prefix below P is dead weight.  Reading
        the snapshot header is file I/O, hence ``to_thread``; a missing,
        stale, or corrupt snapshot simply means no compaction yet.
        Caller holds the session lock, so the offset cannot race a
        failover replay.
        """
        if self.checkpoint_dir is None:
            return
        path = os.path.join(self.checkpoint_dir, f"{session.sid}.snap")

        def _checkpoint_period() -> Optional[int]:
            try:
                provenance = read_snapshot(path).provenance
            except (OSError, SnapshotError):
                return None
            period = provenance.get("period")
            return int(period) if period is not None else None

        period = await asyncio.to_thread(_checkpoint_period)
        if period is not None:
            self._truncate_journal(session, period)

    async def _reopen_degraded(
        self, link: _WorkerLink, session: _GatewaySession
    ) -> bool:
        """No checkpoint anywhere: rebuild the session from the journal.

        With an empty journal nothing was ever folded, so re-running the
        original OPEN is a *clean* reopen — same policy, zero loss.  With
        folded history the model state is unrecoverable; a no-prefetch
        session replayed from the journal keeps the session's cache view
        coherent (blocks, seqs) while honestly issuing no advice.
        """
        if session.journal:
            reopen = OpenRequest(
                id=0, policy="no-prefetch",
                cache_size=session.cache_size, session_id=session.sid,
            )
        else:
            reopen = replace(
                session.open_request, id=0, resume=None,
                session_id=session.sid,
            )
        try:
            reply = await self._rpc(link, reopen)
        except (ConnectionError, OSError):
            return False
        if not isinstance(reply, OpenReply):
            return False
        if not await self._replay_tail(link, session, 0):
            return False
        if session.journal:
            session.degraded = True
            session.policy_name = "no-prefetch"
        return True

    # ------------------------------------------------------------- handlers

    async def _admit_tenant(
        self, request: OpenRequest
    ) -> Optional[ErrorReply]:
        """Fleet-wide tenant admission; ``None`` means admitted.

        Session quotas count this gateway's live sessions per tenant;
        byte quotas sum the per-tenant model-byte gauges from worker
        STATS (TTL-cached, see :meth:`_tenant_bytes`).  Workers enforce
        the same limits per worker, so a client talking straight to a
        worker is still bounded — the gateway check is the one that sees
        the whole fleet.
        """
        spec = self.tenant_config.spec(request.tenant)
        if spec is None:
            known = ", ".join(sorted(self.tenant_config.tenants)) or "(none)"
            return ErrorReply(
                request.id, protocol.E_BAD_REQUEST,
                f"unknown tenant {request.tenant!r} (configured: {known})",
            )
        if spec.max_sessions is not None:
            live = sum(
                1 for s in self.sessions.values()
                if s.tenant == request.tenant and not s.closed
            )
            if live >= spec.max_sessions:
                self.stats.tenants_rejected += 1
                return ErrorReply(
                    request.id, protocol.E_QUOTA,
                    f"tenant {request.tenant!r}: fleet session quota "
                    f"reached ({spec.max_sessions})",
                    retry_after_s=spec.retry_after_s,
                )
        if spec.max_model_bytes is not None:
            used = (await self._tenant_bytes()).get(request.tenant, 0)
            if used >= spec.max_model_bytes:
                self.stats.tenants_rejected += 1
                return ErrorReply(
                    request.id, protocol.E_QUOTA,
                    f"tenant {request.tenant!r}: model-byte quota reached "
                    f"({used} >= {spec.max_model_bytes})",
                    retry_after_s=spec.retry_after_s,
                )
        return None

    async def _tenant_bytes(self) -> Dict[str, int]:
        """Fleet-summed per-tenant model bytes, ``tenant_poll_interval_s``
        stale at worst — quota enforcement tolerates that lag in exchange
        for not polling every worker on every OPEN."""
        now = time.monotonic()
        stamp, cached = self._tenant_bytes_cache
        if now - stamp < self.tenant_poll_interval_s:
            return cached
        totals: Dict[str, int] = {}
        for worker_id in sorted(self.directory.endpoints()):
            try:
                reply = await self._rpc(
                    self._link(worker_id), StatsRequest(id=0, session=None)
                )
            except (ConnectionError, OSError):
                continue
            if not isinstance(reply, StatsReply):
                continue
            for name, gauge in dict(reply.stats.get("tenants") or {}).items():
                totals[name] = (
                    totals.get(name, 0) + int(gauge.get("model_bytes", 0))
                )
        self._tenant_bytes_cache = (now, totals)
        return totals

    def _trace_for_open(
        self, request: OpenRequest, sid: str
    ) -> Optional[str]:
        """Trace id for the session named ``sid``, or ``None`` (unsampled).

        A client-supplied id is adopted verbatim — the client already made
        the sampling decision.  Otherwise the gateway mints a deterministic
        id from the session id it just assigned, so a resume of the same
        session re-derives the same id and failover lineage is free.
        """
        if self.tracer is None:
            return None
        if request.trace is not None:
            return request.trace
        trace_id = self.tracer.new_trace_id(sid)
        return trace_id if self.tracer.sampled(trace_id) else None

    async def _handle_open(
        self, request: OpenRequest, owned: Set[str]
    ) -> Tuple[Optional[bytes], Reply]:
        if request.tenant is not None and self.tenant_config is not None:
            rejection = await self._admit_tenant(request)
            if rejection is not None:
                return None, rejection
        if request.resume is not None:
            return await self._handle_resume(request, owned)
        if request.session_id is not None:
            # Fleet-internal field: the gateway names sessions, clients
            # don't.  Rejecting (rather than silently overriding) keeps
            # behavior aligned with a bare server, which validates it.
            return None, ErrorReply(
                request.id, protocol.E_BAD_REQUEST,
                "session_id is reserved for gateway-to-worker use",
            )
        sid = f"g{next(self._ids)}"
        trace_id = self._trace_for_open(request, sid)
        t0 = time.perf_counter() if trace_id is not None else 0.0
        worker_id = self.ring.owner(sid, exclude=self._tripped())
        if trace_id is not None:
            self.tracer.record(
                trace_id, "gateway.ring_lookup",
                t0, time.perf_counter() - t0,
                session=sid, worker=worker_id,
            )
        if worker_id is None:
            return None, ErrorReply(
                request.id, protocol.E_LIMIT, "no live workers"
            )
        forward = replace(request, session_id=sid, trace=trace_id)
        try:
            raw, reply = await self._forward_on(worker_id, forward)
        except (ConnectionError, OSError):
            # Worker died under the OPEN: no session state exists yet
            # anywhere, so just place it on the next node instead.
            worker_id = self.ring.owner(
                sid, exclude={worker_id} | self._tripped()
            )
            if worker_id is None:
                return None, ErrorReply(
                    request.id, protocol.E_LIMIT, "no live workers"
                )
            raw, reply = await self._forward_on(worker_id, forward)
        if isinstance(reply, OpenReply):
            session = _GatewaySession(
                sid, worker_id, forward,
                policy_name=reply.policy, cache_size=reply.cache_size,
                journal_offset=reply.period,
            )
            self.sessions[sid] = session
            owned.add(sid)
            self.stats.sessions_opened += 1
            if self.on_route is not None:
                self.on_route(sid, worker_id)
        return raw, reply

    async def _forward_on(
        self, worker_id: str, request: Request
    ) -> Tuple[bytes, Reply]:
        return await self._worker_call(worker_id, request)

    async def _handle_resume(
        self, request: OpenRequest, owned: Set[str]
    ) -> Tuple[Optional[bytes], Reply]:
        sid = request.resume
        session = self.sessions.get(sid)
        if session is not None:
            if not session.orphaned:
                return None, ErrorReply(
                    request.id, protocol.E_SESSION_ERROR,
                    f"session {sid!r} is already attached",
                )
            # Reattach: the session is alive and current on its worker;
            # no round trip needed, the gateway answers from its record.
            session.orphaned = False
            self._orphans.pop(sid, None)
            owned.add(sid)
            self.stats.sessions_reattached += 1
            return None, OpenReply(
                id=request.id, session=sid, policy=session.policy_name,
                cache_size=session.cache_size, period=session.next_seq,
                resumed=True, degraded=session.degraded,
            )
        # Unknown to this gateway: let the ring owner try its detached
        # table / the shared checkpoint directory.
        worker_id = self.ring.owner(sid)
        if worker_id is None:
            return None, ErrorReply(
                request.id, protocol.E_LIMIT, "no live workers"
            )
        # A resume re-derives the same deterministic trace id the session
        # was minted with, so its spans join the original trace.
        forward = replace(
            request, session_id=sid,
            trace=self._trace_for_open(request, sid),
        )
        raw, reply = await self._forward_on(worker_id, forward)
        if isinstance(reply, OpenReply):
            session = _GatewaySession(
                sid, worker_id, replace(forward, resume=None),
                policy_name=reply.policy, cache_size=reply.cache_size,
                journal_offset=reply.period,
            )
            self.sessions[sid] = session
            owned.add(sid)
            self.stats.sessions_resumed += 1
            if self.on_route is not None:
                self.on_route(sid, worker_id)
        return raw, reply

    async def _handle_observe(
        self, request: ObserveRequest
    ) -> Tuple[Optional[bytes], Reply]:
        session = self.sessions.get(request.session)
        if session is None or session.closed:
            return None, ErrorReply(
                request.id, protocol.E_UNKNOWN_SESSION,
                f"unknown session {request.session!r}",
            )
        async with session.lock:
            if session.closed:
                return None, ErrorReply(
                    request.id, protocol.E_UNKNOWN_SESSION,
                    f"unknown session {request.session!r}",
                )
            expected = session.next_seq
            if request.seq is None:
                # Tag the fold so a failover replay (or a worker that
                # already folded it before dying) is detected, not
                # double-counted.
                forward = replace(request, seq=expected)
            else:
                forward = request
            trace_id = session.trace if self.tracer is not None else None
            t0 = time.perf_counter() if trace_id is not None else 0.0
            raw, reply = await self._forward(session, forward)
            if trace_id is not None:
                self.tracer.record(
                    trace_id, "gateway.worker_rpc",
                    t0, time.perf_counter() - t0,
                    session=session.sid, worker=session.worker_id,
                )
            if isinstance(reply, ObserveReply) and forward.seq == expected:
                t1 = time.perf_counter() if trace_id is not None else 0.0
                session.journal.append(request.block)
                if len(session.journal) >= self.journal_compact_after:
                    await self._compact_journal(session)
                if trace_id is not None:
                    self.tracer.record(
                        trace_id, "gateway.journal_append",
                        t1, time.perf_counter() - t1,
                        session=session.sid,
                    )
            return raw, reply

    async def _handle_stats(
        self, request: StatsRequest
    ) -> Tuple[Optional[bytes], Reply]:
        if request.session is None:
            return None, await self._fleet_stats(request)
        session = self.sessions.get(request.session)
        if session is None or session.closed:
            return None, ErrorReply(
                request.id, protocol.E_UNKNOWN_SESSION,
                f"unknown session {request.session!r}",
            )
        async with session.lock:
            raw, reply = await self._forward(session, request)
            if session.degraded and isinstance(reply, StatsReply):
                # The worker sees an ordinary no-prefetch session; only
                # the gateway knows it is a failover fallback.
                reply = replace(
                    reply, stats=dict(reply.stats, degraded=True)
                )
                raw = None
            return raw, reply

    async def fleet_metrics(
        self,
    ) -> Tuple[ServiceMetrics, Dict[str, Any]]:
        """Merge every worker's metrics: ``(fleet totals, per-worker)``.

        Unreachable workers appear with ``None`` in the per-worker map.
        Public so the fleet runner can fold worker counters (evictions,
        tenant rejections) into its shutdown summary.
        """
        fleet, per_worker, _ = await self._collect_worker_stats()
        return fleet, per_worker

    async def _collect_worker_stats(
        self,
    ) -> Tuple[ServiceMetrics, Dict[str, Any], Dict[str, Any]]:
        """One STATS poll of every worker.

        Returns ``(merged fleet metrics, per-worker metric dicts, raw
        per-worker stats replies)``; the raw replies carry the gauges
        (brownout level, inflight, live sessions) that the Prometheus
        exposition labels per worker.
        """
        fleet = ServiceMetrics()
        per_worker: Dict[str, Any] = {}
        worker_stats: Dict[str, Any] = {}
        for worker_id in sorted(self.directory.endpoints()):
            try:
                reply = await self._rpc(
                    self._link(worker_id), StatsRequest(id=0, session=None)
                )
            except (ConnectionError, OSError):
                per_worker[worker_id] = None
                continue
            if not isinstance(reply, StatsReply):
                per_worker[worker_id] = None
                continue
            worker_stats[worker_id] = reply.stats
            per_worker[worker_id] = reply.stats.get("metrics")
            state = reply.stats.get("metrics_state")
            if state:
                fleet.merge(ServiceMetrics.from_state(state))
        return fleet, per_worker, worker_stats

    async def _fleet_stats(self, request: StatsRequest) -> Reply:
        """Aggregate every worker's metrics into fleet totals."""
        if request.format is not None and request.format != "prometheus":
            return ErrorReply(
                request.id, protocol.E_BAD_REQUEST,
                f"unknown stats format {request.format!r} "
                "(only 'prometheus' is defined)",
            )
        fleet, per_worker, worker_stats = await self._collect_worker_stats()
        stats: Dict[str, Any] = {
            "server": "repro.gateway",
            "protocol": protocol.PROTOCOL_VERSION,
            "proto_version": protocol.PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "pid": os.getpid(),
            "workers": len(per_worker),
            "fleet": fleet.as_dict(),
            "per_worker": per_worker,
            "gateway": self.stats.as_dict(),
        }
        if request.format == "prometheus":
            stats["exposition"] = self._render_exposition(
                fleet.to_state(), worker_stats
            )
        return StatsReply(id=request.id, session="", stats=stats)

    def _render_exposition(
        self, fleet_state: Dict[str, Any], worker_stats: Dict[str, Any]
    ) -> str:
        """Prometheus text format over the merged fleet state.

        Gateway counters that collide with worker counter names (both
        sides count ``sessions_opened``, ``overload_rejections``, ...)
        get a ``gateway_`` prefix so the fleet-summed family keeps its
        bare name; gateway-only counters such as ``breakers_opened``
        stay bare.
        """
        from repro.obs.prom import render_exposition

        reserved = set(_COUNTER_FIELDS)
        extra: Dict[str, int] = {}
        for name, value in self.stats.as_dict().items():
            key = f"gateway_{name}" if name in reserved else name
            extra[key] = value
        gauges: List[Tuple[str, Optional[Dict[str, str]], Any]] = [
            ("workers_live", None, len(self.directory.endpoints())),
            ("inflight", {"component": "gateway"}, self.overload.inflight),
            ("uptime_s", {"component": "gateway"},
             round(time.monotonic() - self.started_at, 3)),
        ]
        for worker_id, stats in sorted(worker_stats.items()):
            labels = {"worker": worker_id}
            for gauge in ("brownout_level", "inflight", "live_sessions"):
                value = stats.get(gauge)
                if value is not None:
                    gauges.append((gauge, labels, value))
        for worker_id, breaker in sorted(self._breakers.items()):
            gauges.append(
                ("breaker_open", {"worker": worker_id}, int(breaker.blocked))
            )
        return render_exposition(
            fleet_state, extra_counters=extra, gauges=gauges
        )

    async def _handle_close(
        self, request, owned: Set[str]
    ) -> Tuple[Optional[bytes], Reply]:
        session = self.sessions.get(request.session)
        if session is None or session.closed:
            return None, ErrorReply(
                request.id, protocol.E_UNKNOWN_SESSION,
                f"unknown session {request.session!r}",
            )
        async with session.lock:
            if session.closed:
                return None, ErrorReply(
                    request.id, protocol.E_UNKNOWN_SESSION,
                    f"unknown session {request.session!r}",
                )
            raw, reply = await self._forward(session, request)
            if isinstance(reply, CloseReply):
                session.closed = True
                self.sessions.pop(session.sid, None)
                self._orphans.pop(session.sid, None)
                owned.discard(session.sid)
                self.stats.sessions_closed += 1
            return raw, reply

    def _shed_reply(self, request: Request) -> Optional[ErrorReply]:
        """Admission check, mirroring the worker-side server's.

        Only brand-new OPENs are shed: resumes and in-flight sessions
        represent work (and journal/worker state) already paid for, so
        refusing them would waste more than it saves.  The reply carries
        ``retry_after_s`` so cooperative clients treat it as backpressure
        rather than a fault.
        """
        if not isinstance(request, OpenRequest) or request.resume is not None:
            return None
        if not self.overload.shed_open():
            return None
        self.stats.overload_rejections += 1
        retry_after = self.overload.policy.shed_retry_after_s
        return ErrorReply(
            request.id, protocol.E_OVERLOAD,
            f"gateway overloaded; retry in {retry_after:g}s",
            retry_after_s=retry_after,
        )

    async def _dispatch(
        self, request: Request, owned: Set[str]
    ) -> Tuple[Optional[bytes], Optional[Reply]]:
        try:
            if isinstance(request, OpenRequest):
                return await self._handle_open(request, owned)
            if isinstance(request, ObserveRequest):
                return await self._handle_observe(request)
            if isinstance(request, StatsRequest):
                return await self._handle_stats(request)
            return await self._handle_close(request, owned)
        except SessionLost as exc:
            self.stats.errors += 1
            return None, ErrorReply(
                request.id, protocol.E_SESSION_ERROR, str(exc)
            )
        except (ConnectionError, OSError) as exc:
            self.stats.errors += 1
            return None, ErrorReply(
                request.id, protocol.E_SESSION_ERROR,
                f"fleet unavailable: {exc}",
            )

    # ----------------------------------------------------------- connection

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.stats.connections_opened += 1
        owned: Set[str] = set()
        self._writers.add(writer)

        async def _drain() -> None:
            await asyncio.wait_for(writer.drain(), self.request_timeout_s)

        try:
            writer.write(protocol.encode_reply(
                HelloReply(id=0, server="repro.gateway")
            ))
            await _drain()
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), self.idle_timeout_s
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode_reply(ErrorReply(
                        0, protocol.E_BAD_REQUEST, "request line too long",
                    )))
                    await _drain()
                    self.stats.errors += 1
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    request = protocol.decode_request(stripped)
                except ProtocolError as exc:
                    self.stats.errors += 1
                    writer.write(protocol.encode_reply(
                        ErrorReply(0, exc.code, str(exc))
                    ))
                    await _drain()
                    continue
                t_admit = (
                    time.perf_counter() if self.tracer is not None else 0.0
                )
                shed = self._shed_reply(request)
                if shed is not None:
                    writer.write(protocol.encode_reply(shed))
                    await _drain()
                    continue
                self.overload.begin()
                try:
                    t_begin = (
                        time.perf_counter()
                        if self.tracer is not None else 0.0
                    )
                    raw, reply = await self._dispatch(request, owned)
                    # For an OPEN the trace id only exists after dispatch
                    # (the gateway mints it with the session id), so both
                    # connection-level spans resolve it here.
                    trace_id = self._request_trace(request, reply)
                    if trace_id is not None:
                        self.tracer.record(
                            trace_id, "gateway.admission",
                            t_admit, t_begin - t_admit,
                        )
                    t_relay = (
                        time.perf_counter() if trace_id is not None else 0.0
                    )
                    if raw is not None:
                        writer.write(raw)  # worker reply, byte-for-byte
                    else:
                        writer.write(protocol.encode_reply(reply))
                    await _drain()
                    if trace_id is not None:
                        self.tracer.record(
                            trace_id, "gateway.reply_relay",
                            t_relay, time.perf_counter() - t_relay,
                        )
                finally:
                    self.overload.end()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except (asyncio.TimeoutError, TimeoutError):
            pass
        except asyncio.CancelledError:
            pass  # teardown below still orphans this connection's sessions
        finally:
            self._writers.discard(writer)
            self._orphan_sessions(owned)
            self.stats.connections_closed += 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _request_trace(
        self, request: Request, reply: Optional[Reply]
    ) -> Optional[str]:
        """Resolve the trace id a finished request belongs to, if any."""
        if self.tracer is None:
            return None
        if isinstance(request, OpenRequest):
            sid = reply.session if isinstance(reply, OpenReply) else None
        else:
            sid = getattr(request, "session", None)
        if not sid:
            return None
        session = self.sessions.get(sid)
        return session.trace if session is not None else None

    def _orphan_sessions(self, owned: Set[str]) -> None:
        """Client vanished without CLOSE: keep its sessions resumable.

        The sessions stay live on their workers (the gateway's upstream
        links are shared, so nothing worker-side noticed the client go);
        the gateway marks them orphaned so a reconnecting client can
        ``OPEN resume=<id>`` and carry on.  The orphan table is LRU
        bounded: overflow is closed on the worker for real.
        """
        for sid in owned:
            session = self.sessions.get(sid)
            if session is None or session.closed:
                continue
            session.orphaned = True
            self._orphans[sid] = None
            self._orphans.move_to_end(sid)
            self.stats.sessions_orphaned += 1
        owned.clear()
        while len(self._orphans) > self.max_orphaned:
            evicted, _ = self._orphans.popitem(last=False)
            session = self.sessions.pop(evicted, None)
            if session is not None and not session.closed:
                self._spawn(self._close_evicted(session))

    async def _close_evicted(self, session: _GatewaySession) -> None:
        async with session.lock:
            if session.closed:
                return
            session.closed = True
            try:
                await self._rpc(
                    self._link(session.worker_id),
                    protocol.CloseRequest(id=0, session=session.sid),
                )
            except (ConnectionError, OSError):
                pass  # its worker will reap it on its own timeout

    # -------------------------------------------------------------- summary

    def summary(self) -> str:
        """One greppable line for CI and the fleet shutdown banner."""
        stats = self.stats
        return (
            f"sessions_opened={stats.sessions_opened} "
            f"sessions_closed={stats.sessions_closed} "
            f"failovers_resumed={stats.failovers_resumed} "
            f"failovers_degraded={stats.failovers_degraded} "
            f"sessions_lost={stats.sessions_lost} "
            f"tenants_rejected={stats.tenants_rejected} "
            f"overload_rejections={stats.overload_rejections} "
            f"breakers_opened={stats.breakers_opened} "
            f"journal_compactions={stats.journal_compactions}"
        )
